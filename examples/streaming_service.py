"""Streaming service: multi-tenant scheduling with open query arrivals.

The event-driven runtime lets one engine serve several *tenants* — independent
batch query sets sharing the connections, buffer pool and contention model —
while each tenant's queries stream in over time (Poisson arrivals here).  The
trained policy runs as a continuous scheduler: at every completion or arrival
event, every tenant that has an idle connection and an arrived pending query
submits its next choice.

Run with::

    PYTHONPATH=src python examples/streaming_service.py
"""

from __future__ import annotations

from repro import (
    BQSchedConfig,
    DatabaseEngine,
    DBMSProfile,
    PoissonArrivals,
    make_workload,
)
from repro.core import LSchedScheduler


def main() -> None:
    # 1. Build the workload and a small scheduler, and train it briefly on
    #    the classic closed-batch objective.
    workload = make_workload("tpch", scale_factor=1.0, seed=0)
    engine = DatabaseEngine(DBMSProfile.dbms_x(), seed=0)
    config = BQSchedConfig.small(seed=0)
    config.scheduler.num_connections = 8
    scheduler = LSchedScheduler(workload, engine, config)
    scheduler.train(num_updates=2)

    # 2. Closed multi-tenant serving: two copies of the batch share the engine.
    print("Two closed-batch tenants sharing one engine:")
    report = scheduler.serve(num_tenants=2, arrivals=None)
    print(report)

    # 3. Streaming serving: each tenant's queries arrive as a Poisson stream
    #    (about 3 queries/second), so the pending set grows mid-round and the
    #    scheduler decides at every completion *and* arrival event.
    print("\nSame tenants with Poisson arrivals (rate 3/s):")
    report = scheduler.serve(num_tenants=2, arrivals=PoissonArrivals(rate=3.0))
    print(report)

    # 4. The per-tenant logs are disjoint and complete: every tenant ran its
    #    whole batch, nothing leaked across tenants.
    for tenant in report.tenants:
        assert tenant.num_queries == len(scheduler.batch)
    print("\nAll tenants drained their full batch — per-tenant logs are complete.")


if __name__ == "__main__":
    main()
