"""Quickstart: schedule a TPC-H batch with heuristics and with BQSched.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BQSched, BQSchedConfig, DatabaseEngine, DBMSProfile, make_workload
from repro.core import FIFOScheduler, MCFScheduler, RandomScheduler

def main() -> None:
    # 1. Build a synthetic TPC-H workload (22 batch queries) and a DBMS.
    workload = make_workload("tpch", scale_factor=1.0, seed=0)
    engine = DatabaseEngine(DBMSProfile.dbms_x(), seed=0)
    config = BQSchedConfig.small(seed=0)
    config.scheduler.num_connections = 8

    # 2. Evaluate the heuristic baselines a pipeline tool would use.
    scheduler = BQSched(workload, engine, config)
    print("Heuristic baselines (mean makespan over 3 rounds):")
    for baseline in (RandomScheduler(seed=0), FIFOScheduler(), MCFScheduler()):
        evaluation = baseline.evaluate(scheduler.env, rounds=3)
        print(f"  {evaluation.strategy:<8} {evaluation.mean:6.2f} s  ± {evaluation.std:.2f}")

    # 3. Train BQSched: collect history, train the simulator, pre-train the
    #    policy against it, then fine-tune on the DBMS.
    scheduler.train(num_updates=6, pretrain_updates=6)
    evaluation = scheduler.evaluate_policy(rounds=3)
    print(f"  {'BQSched':<8} {evaluation.mean:6.2f} s  ± {evaluation.std:.2f}")

    # 4. Inspect the learned plan for one round.
    result = scheduler.schedule(round_id=0)
    print(f"\nLearned plan finishes {result.num_queries} queries in {result.makespan:.2f} s")
    first = sorted(result.round_log, key=lambda r: r.submit_time)[:5]
    print("First submissions:", [(r.query_name, str(r.parameters)) for r in first])


if __name__ == "__main__":
    main()
