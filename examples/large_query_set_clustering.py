"""Scaling to large query sets with scheduling-gain based clustering.

When the batch grows to hundreds of queries (here: a 2x TPC-DS query set,
198 queries) the scheduling space explodes.  This example shows how BQSched
extracts pairwise scheduling gains from historical logs, clusters the
queries, and schedules at cluster granularity — plus how the learned
simulator keeps most training off the DBMS.

Run with::

    python examples/large_query_set_clustering.py
"""

from __future__ import annotations

import numpy as np

from repro import BQSchedConfig, DatabaseEngine, DBMSProfile, make_workload
from repro.core import BQSched, FIFOScheduler, compute_scheduling_gains


def main() -> None:
    workload = make_workload("tpcds", scale_factor=1.0, query_scale=2.0, seed=0)
    engine = DatabaseEngine(DBMSProfile.dbms_x(), seed=0)
    config = BQSchedConfig.small(seed=0)
    config.scheduler.num_connections = 12
    config.clustering.enabled = True
    config.clustering.num_clusters = 25

    scheduler = BQSched(workload, engine, config)
    print(f"Batch of {workload.num_queries} queries -> clustering is "
          f"{'enabled' if scheduler.use_clustering else 'disabled'}")

    # Collect history and build the gain-based clusters.
    scheduler.prepare(history_rounds=3)
    gains, observed = compute_scheduling_gains(scheduler.history_log, scheduler.batch)
    print(f"Observed concurrent pairs in logs: {observed.sum() // 2} "
          f"(mean gain {gains[observed].mean():+.3f})")
    clusters = scheduler.clusters
    print(f"Clusters: {clusters.num_clusters}, sizes min/median/max = "
          f"{min(clusters.sizes())}/{int(np.median(clusters.sizes()))}/{max(clusters.sizes())}")
    print(f"Action space: {scheduler.env.action_dim} (vs "
          f"{len(scheduler.batch) * len(scheduler.config_space)} at query granularity)")

    # Train (pre-training happens on the learned simulator) and compare to FIFO.
    scheduler.train(num_updates=4, pretrain_updates=4)
    learned = scheduler.evaluate_policy(rounds=3)

    # FIFO needs a query-level environment; build one without clusters.
    from repro.core import SchedulingEnv, AdaptiveMask

    query_env = SchedulingEnv(
        batch=scheduler.batch,
        backend=engine,
        scheduler_config=config.scheduler,
        config_space=scheduler.config_space,
        knowledge=scheduler.knowledge,
        mask=AdaptiveMask.unmasked(len(scheduler.batch), len(scheduler.config_space)),
    )
    fifo = FIFOScheduler().evaluate(query_env, rounds=3)

    print(f"\nFIFO    : {fifo.mean:6.2f} s ± {fifo.std:.2f}")
    print(f"BQSched : {learned.mean:6.2f} s ± {learned.std:.2f} (cluster-level scheduling)")
    print(f"Training wall-clock: {scheduler.timings['train_total']:.1f} s "
          f"({scheduler.timings.get('pretrain', 0.0):.1f} s of which on the simulator)")


if __name__ == "__main__":
    main()
