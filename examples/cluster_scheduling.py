"""Joint query placement + ordering on a heterogeneous engine cluster.

Builds a mixed X/Y/Z fleet, compares the placement heuristics (round-robin,
least-outstanding-work, greedy expected-cost), trains a small RL policy whose
flat action space jointly picks (query, instance, configuration), and runs it
both as closed-batch rounds and as a two-tenant streaming service sharing
the fleet.

Run with::

    PYTHONPATH=src python examples/cluster_scheduling.py
"""

from __future__ import annotations

from repro import BQSchedConfig, Cluster, LSchedScheduler, make_workload
from repro.bench import cluster_env
from repro.core import (
    GreedyCostPlacementScheduler,
    LeastOutstandingWorkScheduler,
    RoundRobinPlacementScheduler,
)


def main() -> None:
    workload = make_workload("tpch", scale_factor=1.0, seed=0)
    config = BQSchedConfig.small(seed=0)
    config.scheduler.num_connections = 2  # per instance
    config.service.cluster_instances = ("x", "y", "z")

    fleet = Cluster.from_service_config(config.service, seed=0)
    print(f"fleet: {fleet}")
    print(f"relative speeds: {[round(s, 2) for s in fleet.speed_factors()]}")

    env = cluster_env(workload, fleet, config)
    print("\nPlacement heuristics (3 rounds each):")
    for scheduler in (
        RoundRobinPlacementScheduler(),
        LeastOutstandingWorkScheduler(),
        GreedyCostPlacementScheduler(),
    ):
        evaluation = scheduler.evaluate(env, rounds=3)
        print(f"  {scheduler.name:24s} makespan {evaluation.mean:6.2f} ± {evaluation.std:.2f} s")

    print("\nTraining LSched on the fleet (joint placement + ordering)...")
    scheduler = LSchedScheduler(workload, fleet, config)
    scheduler.train(num_updates=3, history_rounds=2)
    evaluation = scheduler.evaluate_policy(rounds=3)
    print(f"  {scheduler.name:24s} makespan {evaluation.mean:6.2f} ± {evaluation.std:.2f} s")

    print("\nServing two streaming tenants on the shared fleet:")
    report = scheduler.serve(num_tenants=2, arrivals="poisson")
    print(report)


if __name__ == "__main__":
    main()
