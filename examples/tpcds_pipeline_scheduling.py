"""Scheduling a nightly TPC-DS reporting pipeline (the paper's motivating case).

99 analytical queries arrive as one dependency-free batch every night; the
goal is to finish the batch as early as possible on a fixed-size DBMS.  The
example compares FIFO (what DBT does), MCF, and BQSched, then prints the
learned Gantt chart and the per-configuration choices BQSched made.

Run with::

    python examples/tpcds_pipeline_scheduling.py
"""

from __future__ import annotations

from collections import Counter

from repro import BQSched, BQSchedConfig, DatabaseEngine, DBMSProfile, make_workload
from repro.bench import render_gantt
from repro.core import FIFOScheduler, MCFScheduler


def main() -> None:
    workload = make_workload("tpcds", scale_factor=1.0, seed=0)
    engine = DatabaseEngine(DBMSProfile.dbms_x(), seed=0)
    config = BQSchedConfig.small(seed=0)
    config.scheduler.num_connections = 12

    scheduler = BQSched(workload, engine, config)
    print(f"Batch: {workload.num_queries} TPC-DS queries, "
          f"{config.scheduler.num_connections} connections, "
          f"{len(scheduler.config_space)} running-parameter configurations")
    print(f"Adaptive masking prunes {scheduler.mask.masked_fraction():.0%} of the action space")

    fifo = FIFOScheduler().evaluate(scheduler.env, rounds=3)
    mcf = MCFScheduler().evaluate(scheduler.env, rounds=3)

    scheduler.train(num_updates=6, pretrain_updates=6)
    learned = scheduler.evaluate_policy(rounds=3)

    print("\nNightly batch makespan (mean ± std over 3 rounds):")
    for evaluation in (fifo, mcf, learned):
        print(f"  {evaluation.strategy:<8} {evaluation.mean:6.2f} s ± {evaluation.std:.2f}")
    print(f"\nImprovement over FIFO: {1 - learned.mean / fifo.mean:.0%}")

    result = scheduler.schedule(round_id=0)
    print("\nLearned scheduling plan (query ids on connections):")
    print(render_gantt(result.connection_timeline(), width=90))

    configs = Counter(str(record.parameters) for record in result.round_log)
    print("\nRunning-parameter configurations chosen by the policy:")
    for params, count in configs.most_common():
        print(f"  {params:<10} x{count}")


if __name__ == "__main__":
    main()
