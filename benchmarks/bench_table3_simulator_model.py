"""Table III — ablation / sensitivity of the simulator's prediction model.

Variants: without the attention encoder, without multitask learning, and a
sweep of the regression-loss weight γ.  Metrics: earliest-finisher
classification accuracy and remaining-time regression MSE.
"""

from __future__ import annotations

import numpy as np
from repro.bench import Scenario, paper_values, print_table, write_json_report
from repro.config import SimulatorConfig
from repro.core import LearnedSimulator
from repro.core.knowledge import ExternalKnowledge
from repro.dbms import ConfigurationSpace
from repro.encoder import PlanEmbeddingCache, QueryFormer
from repro.plans import PlanFeaturizer


def _run(profile):
    benchmark_name = "tpch" if profile.name == "quick" else "tpcds"
    scenario = Scenario(benchmark=benchmark_name, dbms="x", profile=profile)
    workload, engine, config = scenario.build()
    batch = workload.batch_query_set()
    config_space = ConfigurationSpace(config.scheduler)
    knowledge = ExternalKnowledge.from_probes(engine, batch, config_space)
    rng = np.random.default_rng(0)
    queryformer = QueryFormer(PlanFeaturizer(workload.catalog), config.encoder, rng)
    plan_embeddings = PlanEmbeddingCache(queryformer).embeddings_for(batch)

    orders = []
    base = [q.query_id for q in batch]
    for seed in range(profile.history_rounds + 2):
        order = list(base)
        np.random.default_rng(seed).shuffle(order)
        orders.append(order)
    log = engine.collect_logs(batch, orders, config_space.default, num_connections=config.scheduler.num_connections)

    variants = {
        "w/o Att": SimulatorConfig(hidden_dim=24, epochs=6, use_attention=False),
        "w/o MTL": SimulatorConfig(hidden_dim=24, epochs=6, use_multitask=False),
        "gamma=0.01": SimulatorConfig(hidden_dim=24, epochs=6, gamma_regression=0.01),
        "gamma=0.1": SimulatorConfig(hidden_dim=24, epochs=6, gamma_regression=0.1),
        "gamma=1": SimulatorConfig(hidden_dim=24, epochs=6, gamma_regression=1.0),
    }
    rows, measured = [], {}
    for name, sim_config in variants.items():
        simulator = LearnedSimulator(batch, plan_embeddings, knowledge, config_space, sim_config, seed=0)
        metrics = simulator.train_from_log(log)
        measured[name] = metrics
        paper = paper_values.TABLE3_SIMULATOR[name]
        rows.append(
            [
                name,
                f"{metrics.accuracy:.1%}",
                f"{paper['accuracy']:.1%}",
                f"{metrics.mse:.3f}",
                f"{paper['mse']:.3f}",
            ]
        )
    print_table(
        ["variant", "measured Acc", "paper Acc", "measured MSE", "paper MSE"],
        rows,
        title="Table III — simulator prediction model",
    )
    write_json_report(
        "table3_simulator_model",
        {
            name: {"accuracy": m.accuracy, "mse": m.mse, "num_examples": m.num_examples}
            for name, m in measured.items()
        },
    )
    return measured


def test_table3_simulator_prediction_model(benchmark, profile):
    measured = benchmark.pedantic(lambda: _run(profile), rounds=1, iterations=1)
    # Shape checks: every variant learns something and metrics are finite.
    assert all(0.0 <= m.accuracy <= 1.0 and np.isfinite(m.mse) for m in measured.values())
    # The full multitask model should not be worse than dropping MTL by a lot.
    assert measured["gamma=0.1"].mse <= measured["w/o MTL"].mse * 2.0
