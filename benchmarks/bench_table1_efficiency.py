"""Table I — efficiency (mean makespan) and stability (std) of all strategies.

Paper: Random / FIFO / MCF / LSched / BQSched over TPC-DS, TPC-H and JOB on
DBMS-X, Y and Z.  The quick profile runs the RL schedulers on DBMS-X only and
evaluates the heuristics on all three DBMSs; the full profile covers the
whole grid.
"""

from __future__ import annotations

from repro.bench import Scenario, paper_values, print_table, run_strategy_comparison, write_json_report


def _run(profile, dbms_list, include_rl):
    rows = []
    ordering_ok = []
    for dbms in dbms_list:
        for benchmark in ("tpcds", "tpch", "job"):
            scenario = Scenario(benchmark=benchmark, dbms=dbms, profile=profile)
            results = run_strategy_comparison(scenario, include_rl=include_rl)
            paper = paper_values.TABLE1_MAKESPAN[f"DBMS-{dbms.upper()}"][benchmark]
            for strategy, evaluation in results.items():
                rows.append(
                    [
                        f"DBMS-{dbms.upper()}",
                        benchmark,
                        strategy,
                        f"{evaluation.mean:.2f} ± {evaluation.std:.2f}",
                        f"{paper[strategy]:.2f}",
                    ]
                )
            if include_rl and "BQSched" in results:
                fifo, bq = results["FIFO"].mean, results["BQSched"].mean
                ordering_ok.append(bq <= fifo * 1.05)
    print_table(
        ["DBMS", "benchmark", "strategy", "measured t_ov (s)", "paper t_ov (s)"],
        rows,
        title="Table I — efficiency and stability",
    )
    name = "table1_efficiency" if include_rl else "table1_heuristics"
    write_json_report(name, {"rows": rows, "ordering_ok": ordering_ok, "dbms": list(dbms_list)})
    return ordering_ok


def test_table1_efficiency_and_stability(benchmark, profile):
    dbms_list = ["x"] if profile.name == "quick" else ["x", "y", "z"]
    ordering_ok = benchmark.pedantic(lambda: _run(profile, dbms_list, include_rl=True), rounds=1, iterations=1)
    # Shape check: BQSched should not lose to FIFO on any cell it was trained for.
    assert ordering_ok and sum(ordering_ok) >= len(ordering_ok) - 1


def test_table1_heuristics_all_dbms(benchmark, profile):
    benchmark.pedantic(lambda: _run(profile, ["x", "y", "z"], include_rl=False), rounds=1, iterations=1)
