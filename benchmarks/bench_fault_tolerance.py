"""Fault tolerance — failure injection, retries and timeout kills in serving.

Not a paper experiment: this benchmark exercises the fault-recovery runtime
the way an unreliable fleet would stress it.  The TPC-H batch is served by
two tenants on one engine with an injected :class:`~repro.dbms.FailureProfile`
(transient errors, 12x stragglers, a mid-round outage window) under three
policies:

* ``no-retry`` — failures are terminal: queries are lost and stragglers run
  to completion, dominating makespan and p99;
* ``retry`` — exponential-backoff resubmission recovers every retryable
  query but still waits out stragglers;
* ``retry+timeout`` — straggler attempts are killed and requeued after a
  per-attempt timeout, recovering both the lost queries *and* the tail.

The acceptance bar: the retry-enabled runtime completes 100% of retryable
queries and beats the no-retry baseline on makespan and p99 latency.  A
second scenario runs a two-instance cluster through an instance outage with
*no* retry policy at all — outage kills are always requeued, so nothing is
lost and nothing deadlocks.
"""

from __future__ import annotations

from repro import (
    BQSchedConfig,
    Cluster,
    DatabaseEngine,
    DBMSProfile,
    FailureProfile,
    OutageWindow,
    RetryPolicy,
    make_workload,
)
from repro.bench import print_table, write_json_report
from repro.core import LSchedScheduler

#: Transient errors, heavy stragglers and a mid-round outage: the regime in
#: which retry + timeout-kill pays for itself.
FAULTS = FailureProfile(
    error_rate=0.06,
    error_work_fraction=0.4,
    hang_rate=0.25,
    hang_factor=12.0,
    outages=(OutageWindow(instance=0, start=6.0, duration=2.0),),
)

RETRY = RetryPolicy(max_attempts=5, backoff=0.25, backoff_factor=2.0)
RETRY_TIMEOUT = RetryPolicy(max_attempts=5, backoff=0.25, backoff_factor=2.0, timeout=6.0)


def _build_scheduler(engine):
    workload = make_workload("tpch", scale_factor=1.0, seed=0)
    # The policy runs greedily but untrained: the benchmark measures the
    # runtime's failure handling, not policy quality, and an untrained
    # network keeps the quick profile fast and fully deterministic.
    return LSchedScheduler(workload, engine, BQSchedConfig.small(seed=0))


def _serve_engine_scenarios():
    engine = DatabaseEngine(DBMSProfile.dbms_x(), seed=0)
    scheduler = _build_scheduler(engine)
    policies = [
        ("no-retry", None),
        ("retry", RETRY),
        ("retry+timeout", RETRY_TIMEOUT),
    ]
    reports = {}
    for label, retry in policies:
        report = scheduler.serve(
            num_tenants=2, arrivals=None, num_connections=8, faults=FAULTS, retry=retry
        )
        reports[label] = report
    return scheduler, reports


def _serve_cluster_outage():
    """A fleet loses one instance mid-round; outage requeue needs no policy."""
    cluster = Cluster.from_names(("x", "x"), seed=0)
    scheduler = _build_scheduler(cluster)
    faults = FailureProfile(outages=(OutageWindow(instance=1, start=4.0, duration=4.0),))
    return scheduler, scheduler.serve(
        num_tenants=2, arrivals=None, num_connections=4, faults=faults, retry=None
    )


def _run(profile):
    scheduler, reports = _serve_engine_scenarios()
    expected = 2 * len(scheduler.batch)
    rows = []
    payload = {}
    for label, report in reports.items():
        rows.append(
            [
                label,
                f"{report.total_completed}/{expected}",
                str(report.total_failed),
                str(report.total_failed_attempts),
                str(report.total_timeouts),
                f"{report.max_makespan:.2f}",
                f"{report.max_p99_latency:.2f}",
                f"{report.goodput:.3f}",
            ]
        )
        payload[label] = {
            "completed": report.total_completed,
            "failed": report.total_failed,
            "failed_attempts": report.total_failed_attempts,
            "retries": report.total_retries,
            "timeouts": report.total_timeouts,
            "makespan": report.max_makespan,
            "p99_latency": report.max_p99_latency,
            "goodput": report.goodput,
        }
    print_table(
        ["policy", "completed", "lost", "failed attempts", "timeouts", "makespan (s)", "p99 (s)", "goodput (q/s)"],
        rows,
        title="Fault tolerance — injected errors, stragglers and an outage (TPC-H, 2 tenants)",
    )

    cluster_scheduler, outage_report = _serve_cluster_outage()
    payload["cluster_outage"] = {
        "completed": outage_report.total_completed,
        "expected": 2 * len(cluster_scheduler.batch),
        "failed": outage_report.total_failed,
        "requeued": outage_report.total_failed_attempts,
        "makespan": outage_report.max_makespan,
    }
    print(
        f"cluster outage: {outage_report.total_completed}/{2 * len(cluster_scheduler.batch)} completed, "
        f"{outage_report.total_failed_attempts} in-flight queries requeued, no retry policy needed"
    )

    write_json_report("fault_tolerance", {"expected_per_engine": expected, **payload})
    return expected, reports, outage_report, payload


def test_fault_tolerance(benchmark, profile):
    expected, reports, outage_report, payload = benchmark.pedantic(
        lambda: _run(profile), rounds=1, iterations=1
    )
    no_retry = reports["no-retry"]
    retry = reports["retry"]
    timeout = reports["retry+timeout"]

    # Without retries, transient errors lose queries for good.
    assert no_retry.total_failed > 0
    assert no_retry.total_completed < expected

    # Retry-enabled runtimes complete 100% of retryable queries.
    assert retry.total_completed == expected and retry.total_failed == 0
    assert timeout.total_completed == expected and timeout.total_failed == 0

    # The acceptance bar: retry + timeout beats the no-retry baseline on
    # makespan AND p99 while completing strictly more work.
    assert timeout.max_makespan < no_retry.max_makespan
    assert timeout.max_p99_latency < no_retry.max_p99_latency
    assert timeout.goodput > no_retry.goodput
    # Killing stragglers beats waiting them out.
    assert timeout.max_makespan < retry.max_makespan
    assert timeout.total_timeouts > 0

    # Instance outage on a fleet strands nothing, even without a RetryPolicy.
    assert outage_report.total_completed == payload["cluster_outage"]["expected"]
    assert outage_report.total_failed == 0
    assert payload["cluster_outage"]["requeued"] > 0
