"""Training-step micro-benchmark: ms/update, tape vs fused analytic kernels.

Times one PPO optimizer update — minibatch forward, loss, backward, gradient
clip and Adam step — through both training paths: the define-by-run autograd
tape and the tape-free fused kernels of :mod:`repro.nn.fastgrad`, over a
``(minibatch_size, num_envs)`` grid at paper-default encoder sizes
(state_dim=48, two attention layers, 22 TPC-H-sized queries).

Minibatches are assembled outside the timed region from synthetic snapshot
streams (the same evolving-session generator as ``bench_nn_inference``) with
``old_log_probs`` taken from the policy itself, so the clipped-surrogate
ratios sit near 1 as they do early in real training.  Each timed pass is one
full update: ``zero_grad``, forward+backward, ``clip_grad_norm``,
``Adam.step``.  ``timeit`` repeats are interleaved across cells and paths,
with per-cell medians, to keep shared-host noise out of the ratios.

Run directly::

    PYTHONPATH=src python benchmarks/bench_training_step.py
    REPRO_BENCH_PROFILE=full PYTHONPATH=src python benchmarks/bench_training_step.py
"""

from __future__ import annotations

import argparse
import timeit

import numpy as np

from repro.bench import get_profile, print_table, write_json_report
from repro.config import EncoderConfig
from repro.core.policy import ActorCriticNetwork
from repro.encoder import RunStateFeaturizer, StateEncoder
from repro.nn import Adam, Tensor, clip_grad_norm, fastgrad, no_grad, where

from bench_nn_inference import _SyntheticSession

#: (minibatch_size, num_envs) cells per effort profile.  The minibatch is
#: drawn across the envs' decision steps, so num_envs controls snapshot
#: diversity (distinct running sets) at a fixed stacked-batch height.
GRID = {
    "quick": [(8, 8), (32, 8)],
    "full": [(8, 1), (8, 8), (32, 8), (32, 64), (64, 64)],
}

NUM_QUERIES = 22
NUM_CONFIGS = 3
PLAN_DIM = 32
CLIP_EPSILON = 0.2
VALUE_COEF = 0.5
ENTROPY_COEF = 0.01
MAX_GRAD_NORM = 0.5


def build_policy(seed: int):
    """A paper-default policy (state_dim=48, 2 attention layers) + embeddings."""
    rng = np.random.default_rng(seed)
    featurizer = RunStateFeaturizer(num_configs=NUM_CONFIGS)
    encoder = StateEncoder(PLAN_DIM, featurizer, EncoderConfig(), rng)
    policy = ActorCriticNetwork(encoder, NUM_CONFIGS, rng)
    plan = np.random.default_rng(seed + 1).normal(size=(NUM_QUERIES, PLAN_DIM))
    return policy, plan


def build_minibatch(policy, plan, minibatch_size: int, num_envs: int, seed: int):
    """A PPO minibatch sampled from evolving synthetic sessions.

    Snapshots come from ``num_envs`` independent sessions advanced a few
    decision steps each; actions are sampled from the masked policy and
    ``old_log_probs`` are the policy's own, so ratios start near 1.
    """
    rng = np.random.default_rng(seed)
    sessions = [_SyntheticSession(NUM_QUERIES, seed + 1 + index) for index in range(num_envs)]
    snapshots = []
    for index in range(minibatch_size):
        session = sessions[index % num_envs]
        session.step()
        snapshots.append(session.snapshot(NUM_CONFIGS))
    masks = np.ones((minibatch_size, NUM_QUERIES * NUM_CONFIGS), dtype=bool)
    actions = rng.integers(0, NUM_QUERIES * NUM_CONFIGS, size=minibatch_size, dtype=np.int64)
    with no_grad():
        log_probs, _, _, _ = policy.evaluate_actions_batch(plan, snapshots, actions, masks)
    return {
        "snapshots": snapshots,
        "actions": actions,
        "masks": masks,
        "old_log_probs": np.array(log_probs.data, copy=True),
        "advantages": rng.normal(size=minibatch_size),
        "value_targets": rng.normal(size=minibatch_size),
    }


def tape_update(policy, plan, batch, optimizer) -> None:
    """One tape-path update, the ``PPOTrainer._update_batched`` expressions."""
    optimizer.zero_grad()
    log_probs, entropies, values, _ = policy.evaluate_actions_batch(
        plan, batch["snapshots"], batch["actions"], batch["masks"]
    )
    ratio = (log_probs - Tensor(batch["old_log_probs"])).exp()
    advantages = Tensor(batch["advantages"])
    surrogate1 = ratio * advantages
    surrogate2 = ratio.clip(1.0 - CLIP_EPSILON, 1.0 + CLIP_EPSILON) * advantages
    clipped = where(surrogate1.data <= surrogate2.data, surrogate1, surrogate2)
    policy_loss = (clipped * -1.0).mean()
    value_error = values - Tensor(batch["value_targets"])
    value_loss = (value_error * value_error).mean() * 0.5
    loss = policy_loss + VALUE_COEF * value_loss - ENTROPY_COEF * entropies.mean()
    loss.backward()
    clip_grad_norm(policy.parameters(), MAX_GRAD_NORM)
    optimizer.step()


def fused_update(policy, plan, batch, optimizer, arena) -> None:
    """One fused-path update via :func:`fastgrad.ppo_minibatch_step`."""
    optimizer.zero_grad()
    fastgrad.ppo_minibatch_step(
        policy,
        plan,
        batch["snapshots"],
        batch["actions"],
        batch["masks"],
        old_log_probs=batch["old_log_probs"],
        advantages=batch["advantages"],
        value_targets=batch["value_targets"],
        clip_epsilon=CLIP_EPSILON,
        value_coef=VALUE_COEF,
        entropy_coef=ENTROPY_COEF,
        arena=arena,
    )
    clip_grad_norm(policy.parameters(), MAX_GRAD_NORM)
    optimizer.step()
    arena.reset()


def measure(repeats: int, seed: int):
    """Interleaved ``timeit`` over the grid; per-cell medians."""
    profile = get_profile()
    grid = GRID.get(profile.name, GRID["full"])
    cells: dict[str, dict] = {}
    for minibatch_size, num_envs in grid:
        policy, plan = build_policy(seed)
        reason = fastgrad.fused_training_reason(policy)
        if reason is not None:
            raise RuntimeError(f"fused path unsupported for the benchmark policy: {reason}")
        batch = build_minibatch(policy, plan, minibatch_size, num_envs, seed + 17)
        optimizer = Adam(policy.parameters(), lr=3e-4)
        arena = fastgrad.Arena()
        timers = {
            "tape": timeit.Timer(
                lambda p=policy, e=plan, b=batch, o=optimizer: tape_update(p, e, b, o)
            ),
            "fused": timeit.Timer(
                lambda p=policy, e=plan, b=batch, o=optimizer, a=arena: fused_update(
                    p, e, b, o, a
                )
            ),
        }
        for path, timer in timers.items():
            timer.timeit(number=1)  # warmup
            cells[f"{path}_mb{minibatch_size}_envs_{num_envs}"] = {
                "path": path,
                "minibatch_size": minibatch_size,
                "num_envs": num_envs,
                "_timer": timer,
                "_times": [],
            }
    for _ in range(repeats):
        for cell in cells.values():
            cell["_times"].append(cell["_timer"].timeit(number=1))
    for cell in cells.values():
        seconds = float(np.median(cell.pop("_times")))
        cell.pop("_timer")
        cell["ms_per_update"] = seconds * 1000.0
        cell["updates_per_sec"] = 1.0 / seconds
    return cells, grid


def main() -> int:
    profile = get_profile()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5 if profile.name == "quick" else 9,
                        help="interleaved timed passes per cell (median)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    cells, grid = measure(args.repeats, args.seed)

    rows = []
    speedups = {}
    for key, cell in cells.items():
        tape_key = f"tape_mb{cell['minibatch_size']}_envs_{cell['num_envs']}"
        speedup = cells[tape_key]["ms_per_update"] / cell["ms_per_update"]
        cell["speedup_vs_tape"] = speedup
        if cell["path"] == "fused":
            speedups[key] = speedup
        rows.append(
            [
                cell["path"],
                str(cell["minibatch_size"]),
                str(cell["num_envs"]),
                f"{cell['ms_per_update']:.3f}",
                f"{speedup:.2f}x",
            ]
        )
    print_table(
        ["path", "minibatch", "envs", "ms/update", "vs tape"],
        rows,
        title=(
            f"PPO update phase, tape vs fused (median of {args.repeats} interleaved "
            f"updates, profile={profile.name})"
        ),
    )
    if speedups:
        worst = min(speedups.values())
        best = max(speedups.values())
        print(f"\nfused speedup vs tape: min {worst:.2f}x, max {best:.2f}x "
              f"(target: >= 2x on the update phase)")

    write_json_report(
        "training_step",
        {
            "grid": [list(cell) for cell in grid],
            "num_queries": NUM_QUERIES,
            "num_configs": NUM_CONFIGS,
            "cells": cells,
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
