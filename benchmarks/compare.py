"""Diff ``run_all.py`` JSON summaries against committed baselines.

Every benchmark emits a machine-readable JSON result via
:func:`repro.bench.write_json_report`; ``benchmarks/baselines/`` commits a
snapshot of the fast subset so regressions show up as a diff instead of a
shrug.  This tool flattens the numeric leaves of each payload and compares
them with per-metric relative tolerances.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --only table3 --only cluster_sim \
        --results-dir /tmp/bench-results
    PYTHONPATH=src python benchmarks/compare.py --results /tmp/bench-results

Timing-like metrics (wall-clock seconds, throughput rates) are skipped —
they measure the machine, not the reproduction.  Exit code 1 means a metric
moved outside its tolerance or a baselined benchmark produced no result.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import math
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
BASELINE_DIR = BENCH_DIR / "baselines"

#: Relative tolerance applied when no per-metric override matches.
DEFAULT_REL_TOL = 0.35

#: Per-metric relative tolerances, first matching glob wins (keys are the
#: flattened ``benchmark:dotted.metric.path`` names).
TOLERANCE_OVERRIDES: dict[str, float] = {
    # Simulator fidelity moves with BLAS builds / python minor versions;
    # counts of training examples must not move at all.
    "*num_examples": 0.0,
    "*.accuracy": 0.5,
}

#: Flattened-key substrings that name machine-dependent measurements
#: (wall-clock rates) or RL-training outcomes whose discrete value can flip
#: on a tiny cross-platform float drift (episode counts, per-chunk eval
#: curves of variable length) — the benchmark's own assertions gate those.
SKIP_SUBSTRINGS = (
    "seconds",
    "steps_per_sec",
    "ms_per_step",
    "ms_per_update",
    "updates_per_sec",
    "throughput",
    "wall",
    "speedup",
    "time_total",
    "episodes_to_target",
    "eval_curve",
)


def flatten(value: object, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a JSON payload as ``dotted.path -> float``."""
    leaves: dict[str, float] = {}
    if isinstance(value, dict):
        for key, item in value.items():
            leaves.update(flatten(item, f"{prefix}.{key}" if prefix else str(key)))
    elif isinstance(value, list):
        for index, item in enumerate(value):
            leaves.update(flatten(item, f"{prefix}[{index}]"))
    elif isinstance(value, bool):
        pass  # bools are not metrics
    elif isinstance(value, (int, float)):
        leaves[prefix] = float(value)
    return leaves


def tolerance_for(key: str, default: float) -> float:
    for pattern, tol in TOLERANCE_OVERRIDES.items():
        if fnmatch.fnmatch(key, pattern):
            return tol
    return default


def is_skipped(key: str) -> bool:
    lowered = key.lower()
    return any(substring in lowered for substring in SKIP_SUBSTRINGS)


def within(baseline: float, measured: float, rel_tol: float) -> bool:
    if math.isclose(baseline, measured, rel_tol=rel_tol, abs_tol=1e-9):
        return True
    if rel_tol <= 0:
        # Zero-tolerance overrides (exact metrics like ``*num_examples``)
        # mean exactly that: no absolute escape hatch may soften them.
        return False
    # Small absolute scales (sub-second metrics) get an absolute escape
    # hatch so a 0.01 -> 0.02 MSE wobble does not fail a 35% gate.
    return abs(baseline - measured) <= max(0.05, rel_tol * max(abs(baseline), abs(measured)))


def load_payload(path: Path) -> dict[str, float]:
    with path.open(encoding="utf-8") as handle:
        document = json.load(handle)
    return flatten(document.get("payload", {}), prefix=document.get("benchmark", path.stem))


def compare_dir(
    baseline_dir: Path, results_dir: Path, rel_tol: float = DEFAULT_REL_TOL
) -> tuple[list[str], list[str]]:
    """Compare every baselined benchmark; returns (report_lines, failures)."""
    lines: list[str] = []
    failures: list[str] = []
    baseline_files = sorted(baseline_dir.glob("*.json"))
    if not baseline_files:
        failures.append(f"no baselines found under {baseline_dir}")
        return lines, failures
    for baseline_path in baseline_files:
        result_path = results_dir / baseline_path.name
        if not result_path.exists():
            failures.append(f"{baseline_path.name}: no result produced (expected {result_path})")
            continue
        baseline = load_payload(baseline_path)
        measured = load_payload(result_path)
        checked = drifted = 0
        for key, base_value in sorted(baseline.items()):
            if is_skipped(key):
                continue
            if key not in measured:
                failures.append(f"{key}: metric missing from results")
                continue
            checked += 1
            tol = tolerance_for(key, rel_tol)
            if not within(base_value, measured[key], tol):
                drifted += 1
                failures.append(
                    f"{key}: baseline {base_value:.6g} vs measured {measured[key]:.6g} "
                    f"(rel tol {tol:.0%})"
                )
        lines.append(
            f"{baseline_path.name:<40} {checked} metrics checked, {drifted} outside tolerance"
        )
    return lines, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default=str(BASELINE_DIR),
                        help="directory of committed baseline JSONs")
    parser.add_argument("--results", default=str(BENCH_DIR / "results"),
                        help="directory of freshly produced JSON results")
    parser.add_argument("--rel-tol", type=float, default=DEFAULT_REL_TOL,
                        help="default relative tolerance per metric")
    args = parser.parse_args()

    lines, failures = compare_dir(Path(args.baseline_dir), Path(args.results), rel_tol=args.rel_tol)
    for line in lines:
        print(line)
    if failures:
        print(f"\n{len(failures)} metric regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall baselined metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
