"""Overload serving — admission control and elastic fleets under a flash crowd.

Not a paper experiment: this benchmark stresses the serving control plane the
way a production overload does.  Four tenants (two ``interactive`` with a
latency SLO and priority, two best-effort ``batch``) submit the TPC-H batch
through a 100x flash-crowd arrival process: a steady trickle until the burst
window opens, then the arrival rate multiplies by 100 and the entire backlog
lands at once.  Two control regimes face the same crowd:

* ``uncontrolled`` — every query is admitted the moment it arrives; the
  connection pool saturates, interactive queries queue behind batch work and
  the interactive SLO collapses;
* ``controlled`` — an :class:`~repro.AdmissionPolicy` token bucket paces
  batch admissions and sheds the excess, while ``exempt_priority`` lets the
  interactive tier bypass the bucket entirely; interactive attainment stays
  near 100% at the cost of shed batch work.

A second pair exercises the elastic-fleet half of the control plane: the same
flash crowd against a fleet pinned at one instance versus a three-instance
fleet that starts with two instances parked and lets the
:class:`~repro.AutoscalePolicy` unpark them when the burst backlog builds.

The acceptance bar: controlled beats uncontrolled on interactive SLO
attainment AND interactive goodput while shedding only batch work, and the
elastic fleet completes everything the pinned fleet does, faster and with
higher attainment.
"""

from __future__ import annotations

from repro import (
    AdmissionPolicy,
    AutoscalePolicy,
    BQSchedConfig,
    Cluster,
    DatabaseEngine,
    DBMSProfile,
    FlashCrowdArrivals,
    TenantClass,
    make_workload,
)
from repro.bench import print_table, write_json_report
from repro.core import LSchedScheduler

#: Two interactive tenants with a hard latency SLO and two best-effort batch
#: tenants; ``serve`` assigns classes round-robin, so tenants 0/2 are
#: interactive and 1/3 are batch.
CLASSES = (
    TenantClass("interactive", priority=2.0, latency_slo=20.0, deadline=120.0),
    TenantClass("batch", priority=0.0, latency_slo=60.0),
)

#: A steady 0.8 q/s trickle until t=2, then a 100x flash crowd: the window
#: compresses every remaining arrival into ~1.5 simulated seconds.
ARRIVALS = FlashCrowdArrivals(rate=0.8, burst_factor=100.0, burst_start=2.0, burst_duration=1.5)

#: Batch admissions are paced at ~1 q/s with a small burst allowance; the
#: interactive tier (priority 2.0 >= exempt_priority) bypasses the bucket.
ADMISSION = AdmissionPolicy(rate=1.0, burst=3.0, exempt_priority=1.0)

#: The elastic fleet starts with one instance live and two parked, unparking
#: when the per-instance backlog passes ``target_backlog``.
AUTOSCALE = AutoscalePolicy(
    min_instances=1, target_backlog=6.0, low_water=1.0, cooldown=2.0, initial_instances=1
)

NUM_TENANTS = 4
NUM_CONNECTIONS = 4


def _build_scheduler(engine):
    workload = make_workload("tpch", scale_factor=1.0, seed=0)
    # The policy runs greedily but untrained: the benchmark measures the
    # control plane's overload behaviour, not policy quality, and an
    # untrained network keeps the quick profile fast and fully deterministic.
    return LSchedScheduler(workload, engine, BQSchedConfig.small(seed=0))


def _serve_engine(admission):
    engine = DatabaseEngine(DBMSProfile.dbms_x(), seed=0)
    scheduler = _build_scheduler(engine)
    report = scheduler.serve(
        num_tenants=NUM_TENANTS,
        arrivals=ARRIVALS,
        num_connections=NUM_CONNECTIONS,
        tenant_classes=CLASSES,
        admission=admission,
    )
    return scheduler, report


def _serve_fleet(names, autoscale):
    cluster = Cluster.from_names(names, seed=0)
    scheduler = _build_scheduler(cluster)
    report = scheduler.serve(
        num_tenants=NUM_TENANTS,
        arrivals=ARRIVALS,
        num_connections=NUM_CONNECTIONS,
        tenant_classes=CLASSES,
        autoscale=autoscale,
    )
    return scheduler, report


def _scenario_payload(report):
    interactive = report.class_report("interactive")
    batch = report.class_report("batch")
    return {
        "completed": report.total_completed,
        "failed": report.total_failed,
        "shed": report.total_shed,
        "goodput": report.goodput,
        "makespan": report.max_makespan,
        "interactive_slo_attainment": interactive.slo_attainment,
        "interactive_goodput": interactive.goodput,
        "interactive_p99_latency": interactive.worst_p99_latency,
        "batch_slo_attainment": batch.slo_attainment,
        "batch_shed": batch.num_shed,
        "interactive_shed": interactive.num_shed,
    }


def _run(profile):
    scheduler, uncontrolled = _serve_engine(admission=None)
    _, controlled = _serve_engine(admission=ADMISSION)
    _, pinned = _serve_fleet(("x",), autoscale=None)
    _, elastic = _serve_fleet(("x", "x", "x"), autoscale=AUTOSCALE)

    expected = NUM_TENANTS * len(scheduler.batch)
    scenarios = {
        "uncontrolled": uncontrolled,
        "controlled": controlled,
        "pinned_fleet": pinned,
        "elastic_fleet": elastic,
    }
    rows = []
    payload = {"expected_total": expected}
    for label, report in scenarios.items():
        entry = _scenario_payload(report)
        payload[label] = entry
        rows.append(
            [
                label,
                f"{entry['completed']}/{expected}",
                str(entry["shed"]),
                f"{entry['interactive_slo_attainment']:.2f}",
                f"{entry['interactive_p99_latency']:.2f}",
                f"{entry['interactive_goodput']:.3f}",
                f"{entry['batch_slo_attainment']:.2f}",
                f"{entry['goodput']:.3f}",
            ]
        )
    print_table(
        [
            "scenario",
            "completed",
            "shed",
            "int SLO att",
            "int p99 (s)",
            "int goodput",
            "batch SLO att",
            "goodput (q/s)",
        ],
        rows,
        title="Overload serving — 100x flash crowd (TPC-H, 2 interactive + 2 batch tenants)",
    )

    write_json_report("overload_serving", payload)
    return expected, scenarios, payload


def test_overload_serving(benchmark, profile):
    expected, scenarios, payload = benchmark.pedantic(lambda: _run(profile), rounds=1, iterations=1)
    uncontrolled = payload["uncontrolled"]
    controlled = payload["controlled"]
    pinned = payload["pinned_fleet"]
    elastic = payload["elastic_fleet"]

    # The uncontrolled service admits everything and the interactive SLO
    # collapses under the flash crowd.
    assert uncontrolled["completed"] == expected and uncontrolled["shed"] == 0
    assert uncontrolled["interactive_slo_attainment"] < 0.75

    # Admission control sheds only batch work and keeps the interactive tier
    # near-perfect on attainment — the headline acceptance bar.
    assert controlled["interactive_shed"] == 0
    assert controlled["batch_shed"] > 0
    assert controlled["interactive_slo_attainment"] >= 0.9
    assert (
        controlled["interactive_slo_attainment"]
        > uncontrolled["interactive_slo_attainment"] + 0.15
    )
    assert controlled["interactive_goodput"] > uncontrolled["interactive_goodput"]
    assert controlled["interactive_p99_latency"] < uncontrolled["interactive_p99_latency"]

    # Elastic fleet: autoscaling unparks capacity during the burst, so the
    # fleet matches the pinned instance on completions while finishing faster
    # and holding the interactive SLO.
    assert pinned["completed"] == expected and pinned["failed"] == 0
    assert elastic["completed"] == expected and elastic["failed"] == 0
    assert elastic["makespan"] < pinned["makespan"]
    assert elastic["goodput"] > pinned["goodput"]
    assert elastic["interactive_slo_attainment"] > pinned["interactive_slo_attainment"]
