"""Streaming service on a heterogeneous cluster (mixed X/Y/Z fleet).

The event-driven serving scenario of PR 2, scaled out: two tenants stream
Poisson arrivals into one shared *fleet* of mixed-profile engine instances
declared through ``ServiceConfig.cluster_instances``.  A briefly trained
policy serves placements and orderings jointly; a round-robin placement
service over the same fleet provides the reference point.  Reported per
tenant: makespan and latency percentiles (what a shared-cluster operator
answers for).
"""

from __future__ import annotations

from repro import BQSchedConfig, Cluster, LSchedScheduler, make_workload
from repro.bench import cluster_env, print_table, write_json_report
from repro.core import RoundRobinPlacementScheduler
from repro.core.env import drive_service
from repro.runtime import ExecutionRuntime, ServiceReport
from repro.workloads import PoissonArrivals

_NUM_TENANTS = 2
_ARRIVAL_RATE = 3.0


def _baseline_service(workload, config, seed: int) -> ServiceReport:
    """Round-robin placement service over the declared fleet."""
    cluster = Cluster.from_service_config(config.service, seed=seed)
    template = cluster_env(workload, cluster, config)
    runtime = ExecutionRuntime(cluster)
    envs = []
    for index in range(_NUM_TENANTS):
        tenant = runtime.register(f"tenant-{index}", template.batch, arrivals=PoissonArrivals(_ARRIVAL_RATE))
        envs.append(
            type(template)(
                batch=template.batch,
                backend=tenant,
                scheduler_config=config.scheduler,
                config_space=template.config_space,
                knowledge=template.knowledge,
                mask=template.mask,
                strategy_name="rr-service",
            )
        )
    for env in envs:
        env.reset(round_id=config.service.base_round_id)
    schedulers = {id(env): RoundRobinPlacementScheduler() for env in envs}
    drive_service(
        runtime, envs, lambda env: schedulers[id(env)].select_action(env, env.snapshot())
    )
    return ServiceReport.from_runtime(runtime, strategy="RR-placement")


def _run(profile):
    seed = 0
    workload = make_workload("tpch", scale_factor=1.0, seed=0)
    config = BQSchedConfig.small(seed=seed)
    config.scheduler.num_connections = 2
    config.service.cluster_instances = ("x", "y", "z")
    config.service.arrival_process = "poisson"
    config.service.arrival_rate = _ARRIVAL_RATE

    fleet = Cluster.from_service_config(config.service, seed=seed)
    scheduler = LSchedScheduler(workload, fleet, config)
    scheduler.train(num_updates=max(2, profile.train_updates // 2), history_rounds=profile.history_rounds)
    policy_report = scheduler.serve(num_tenants=_NUM_TENANTS)
    baseline_report = _baseline_service(workload, config, seed)

    rows = []
    for report in (policy_report, baseline_report):
        for tenant in report.tenants:
            rows.append(
                [
                    report.strategy,
                    tenant.tenant,
                    f"{tenant.makespan:.2f}",
                    f"{tenant.p50_latency:.2f}",
                    f"{tenant.p90_latency:.2f}",
                    f"{tenant.p99_latency:.2f}",
                ]
            )
    print_table(
        ["strategy", "tenant", "makespan (s)", "p50 (s)", "p90 (s)", "p99 (s)"],
        rows,
        title=f"Streaming service on fleet {config.service.cluster_instances} — Poisson {_ARRIVAL_RATE}/s",
    )
    write_json_report(
        "cluster_streaming",
        {
            "fleet": list(config.service.cluster_instances),
            "arrival_rate": _ARRIVAL_RATE,
            "num_tenants": _NUM_TENANTS,
            "policy": policy_report.as_dict(),
            "round_robin": baseline_report.as_dict(),
        },
    )
    return policy_report, baseline_report


def test_cluster_streaming_service(benchmark, profile):
    policy_report, baseline_report = benchmark.pedantic(lambda: _run(profile), rounds=1, iterations=1)
    for report in (policy_report, baseline_report):
        assert len(report.tenants) == _NUM_TENANTS
        for tenant in report.tenants:
            assert tenant.num_queries == 22
            assert tenant.p50_latency <= tenant.p90_latency <= tenant.p99_latency
    assert policy_report.total_time > 0
    # the learned service should stay competitive with blind rotation
    assert policy_report.max_makespan <= baseline_report.max_makespan * 1.1
