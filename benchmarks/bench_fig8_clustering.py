"""Figure 8 — parameter sensitivity of scheduling-gain based query clustering.

Paper: with 5x / 10x query sets, clustering improves the learned strategy by
9-13 % and the best cluster count is around 100.  We sweep the cluster count
on an enlarged TPC-DS query set and compare against BQSched without
clustering.
"""

from __future__ import annotations

from repro.bench import Scenario, paper_values, print_table, write_json_report
from repro.core import BQSched


def _train_and_eval(scenario, profile, num_clusters):
    workload, engine, config = scenario.build()
    config.clustering.enabled = num_clusters is not None
    if num_clusters is not None:
        config.clustering.num_clusters = num_clusters
    scheduler = BQSched(workload, engine, config)
    scheduler.use_clustering = num_clusters is not None
    scheduler.config.clustering.enabled = num_clusters is not None
    scheduler.train(
        num_updates=max(1, profile.train_updates // 2),
        pretrain_updates=max(1, profile.pretrain_updates // 2),
        history_rounds=profile.history_rounds,
    )
    return scheduler.evaluate_policy(rounds=max(2, profile.evaluation_rounds - 1)).mean


def _run(profile):
    query_scale = 2.0 if profile.name == "quick" else 5.0
    cluster_counts = [12, 25] if profile.name == "quick" else [25, 50, 100, 200]
    scenario = Scenario(benchmark="tpcds", dbms="x", query_scale=query_scale, profile=profile)

    measured = {"w/o clustering": _train_and_eval(scenario, profile, None)}
    for count in cluster_counts:
        measured[f"n_c={count}"] = _train_and_eval(scenario, profile, count)

    rows = [[name, f"{value:.2f}"] for name, value in measured.items()]
    print_table(
        ["configuration", "measured t_ov (s)"],
        rows,
        title=(
            f"Figure 8 — query clustering at {query_scale}x queries "
            f"(paper improvement over no clustering: {paper_values.FIG8_CLUSTERING_IMPROVEMENT})"
        ),
    )
    write_json_report("fig8_clustering", {"measured": measured, "query_scale": query_scale})
    return measured


def test_fig8_query_clustering(benchmark, profile):
    measured = benchmark.pedantic(lambda: _run(profile), rounds=1, iterations=1)
    baseline = measured["w/o clustering"]
    best_clustered = min(value for name, value in measured.items() if name != "w/o clustering")
    # Shape check: at least one clustered configuration is competitive with
    # (not dramatically worse than) scheduling at query granularity.
    assert best_clustered <= baseline * 1.15
