"""NN inference micro-benchmark: ms/decision-step per inference backend.

Times the policy's *sampling* forward — ``act_batch`` over a stack of SoA
snapshots, exactly what vectorized rollout collection calls once per decision
step — for every available :mod:`repro.nn.backend` implementation over a
``(num_queries, num_envs)`` grid.

The snapshot streams replay the decision-step locality the ``numpy-cached``
backend exploits: each step advances the clock (dirtying the running rows via
the clock rule), starts or finishes at most a couple of queries (row-version
bumps), and leaves the growing pending/finished majority untouched — the
regime of a real scheduling round.

Methodology: streams are pre-built outside the timed region; each timed pass
resets the backend (so cache build-up is amortised over the stream, as in a
real round) and runs every step.  ``timeit.repeat`` with interleaved repeats
and per-cell medians keeps shared-host noise out of the ratios.

Run directly::

    PYTHONPATH=src python benchmarks/bench_nn_inference.py
    REPRO_BENCH_PROFILE=full PYTHONPATH=src python benchmarks/bench_nn_inference.py
"""

from __future__ import annotations

import argparse
import timeit

import numpy as np

from repro.bench import get_profile, print_table, write_json_report
from repro.config import EncoderConfig
from repro.core.policy import ActorCriticNetwork
from repro.encoder import RunStateFeaturizer, StateEncoder
from repro.encoder.run_state import SnapshotArrays
from repro.nn.backend import BackendUnavailableError, available_backends, resolve_backend

#: (num_queries, num_envs) cells per effort profile.
GRID = {
    "quick": [(22, 8), (22, 64)],
    "full": [(22, 1), (22, 8), (22, 32), (22, 64), (50, 64)],
}

#: Decision steps per timed pass and concurrent-query cap of the synthetic
#: round (mirrors the TPC-H scenarios: 4 connections over ~22 queries).
STEPS_PER_PASS = 30
MAX_RUNNING = 4

PLAN_DIM = 32


def build_policy(num_queries: int, num_configs: int, seed: int):
    """A paper-default policy (state_dim=48, 2 attention layers) + embeddings."""
    rng = np.random.default_rng(seed)
    featurizer = RunStateFeaturizer(num_configs=num_configs)
    encoder = StateEncoder(PLAN_DIM, featurizer, EncoderConfig(), rng)
    policy = ActorCriticNetwork(encoder, num_configs, rng)
    plan = np.random.default_rng(seed + 1).normal(size=(num_queries, PLAN_DIM))
    return policy, plan


class _SyntheticSession:
    """A stand-in ``state_key`` with evolving per-row state for one env."""

    def __init__(self, num_queries: int, seed: int) -> None:
        self.rng = np.random.default_rng(seed)
        self.status = np.zeros(num_queries, dtype=np.int64)  # 0 pending
        self.row_version = np.zeros(num_queries, dtype=np.int64)
        self.started_at = np.zeros(num_queries, dtype=np.float64)
        self.version = 0
        self.time = 0.0

    def _bump(self, row: int) -> None:
        self.version += 1
        self.row_version[row] = self.version

    def step(self) -> None:
        """Advance one decision step: start/finish queries, move the clock."""
        self.time += float(self.rng.uniform(0.3, 0.8))
        running = np.flatnonzero(self.status == 1)
        if running.size and self.rng.uniform() < 0.35:
            row = int(running[np.argmin(self.started_at[running])])
            self.status[row] = 2
            self._bump(row)
            running = np.flatnonzero(self.status == 1)
        pending = np.flatnonzero(self.status == 0)
        if pending.size and running.size < MAX_RUNNING:
            row = int(pending[0])
            self.status[row] = 1
            self.started_at[row] = self.time
            self._bump(row)

    def snapshot(self, num_configs: int) -> SnapshotArrays:
        n = self.status.shape[0]
        running = self.status == 1
        return SnapshotArrays(
            time=self.time,
            status=self.status.copy(),
            config_index=np.where(running, np.arange(n) % num_configs, -1),
            elapsed=np.where(running, self.time - self.started_at, 0.0),
            expected_time=1.0 + (np.arange(n) % 7).astype(np.float64),
            available=np.ones(n, dtype=bool),
            time_to_available=np.zeros(n, dtype=np.float64),
            attempts=np.zeros(n, dtype=np.int64),
            state_key=self,
            row_version=self.row_version.copy(),
        )


def build_stream(num_queries: int, num_envs: int, num_configs: int, seed: int):
    """Pre-built per-step snapshot stacks for ``STEPS_PER_PASS`` steps."""
    sessions = [_SyntheticSession(num_queries, seed + index) for index in range(num_envs)]
    stream = []
    for _ in range(STEPS_PER_PASS):
        for session in sessions:
            session.step()
        stream.append([session.snapshot(num_configs) for session in sessions])
    return stream


def run_pass(policy, plan, backend, stream, masks) -> None:
    """One timed pass: every decision step of the stream through act_batch."""
    backend.reset()
    rng = np.random.default_rng(0)
    for snapshots in stream:
        policy.act_batch(plan, snapshots, masks, rng, backend=backend)


def measure_backends(names, repeats: int, seed: int):
    """Interleaved ``timeit.repeat`` over the grid; per-cell medians."""
    profile = get_profile()
    grid = GRID.get(profile.name, GRID["full"])
    num_configs = 3
    cells: dict[str, dict] = {}
    for num_queries, num_envs in grid:
        policy, plan = build_policy(num_queries, num_configs, seed)
        stream = build_stream(num_queries, num_envs, num_configs, seed)
        masks = np.ones((num_envs, num_queries * num_configs), dtype=bool)
        for name in names:
            backend = resolve_backend(name, policy, strict=True)
            run_pass(policy, plan, backend, stream, masks)  # warmup
            cells[f"{name}_q{num_queries}_envs_{num_envs}"] = {
                "backend": name,
                "num_queries": num_queries,
                "num_envs": num_envs,
                "steps": STEPS_PER_PASS,
                "_timer": timeit.Timer(
                    lambda p=policy, e=plan, b=backend, s=stream, m=masks: run_pass(p, e, b, s, m)
                ),
                "_times": [],
            }
    for _ in range(repeats):
        for cell in cells.values():
            cell["_times"].append(cell["_timer"].timeit(number=1))
    for cell in cells.values():
        seconds = float(np.median(cell.pop("_times")))
        cell.pop("_timer")
        cell["ms_per_step"] = seconds / STEPS_PER_PASS * 1000.0
        cell["steps_per_sec"] = STEPS_PER_PASS / seconds
    return cells, grid


def main() -> int:
    profile = get_profile()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3 if profile.name == "quick" else 5,
                        help="interleaved timed passes per cell (median)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    names = []
    for name in available_backends():
        try:
            resolve_backend(name, strict=True)
        except BackendUnavailableError as exc:
            print(f"skipping backend {name!r}: {exc}")
            continue
        names.append(name)

    cells, grid = measure_backends(names, args.repeats, args.seed)

    rows = []
    speedups: dict[str, float] = {}
    for key, cell in cells.items():
        ref_key = f"numpy-ref_q{cell['num_queries']}_envs_{cell['num_envs']}"
        speedup = cells[ref_key]["ms_per_step"] / cell["ms_per_step"]
        cell["speedup_vs_ref"] = speedup
        if cell["backend"] != "numpy-ref":
            speedups[key] = speedup
        rows.append(
            [
                cell["backend"],
                str(cell["num_queries"]),
                str(cell["num_envs"]),
                f"{cell['ms_per_step']:.3f}",
                f"{speedup:.2f}x",
            ]
        )
    print_table(
        ["backend", "queries", "envs", "ms/step", "vs ref"],
        rows,
        title=(
            f"Sampling forward per decision step ({STEPS_PER_PASS} steps/pass, "
            f"median of {args.repeats} interleaved passes, profile={profile.name})"
        ),
    )

    write_json_report(
        "nn_inference",
        {
            "backends": names,
            "grid": [list(cell) for cell in grid],
            "steps_per_pass": STEPS_PER_PASS,
            "cells": cells,
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
