"""Run every paper-reproduction benchmark and aggregate the JSON results.

Each ``bench_*.py`` file emits a machine-readable result via
:func:`repro.bench.write_json_report`; this entry point runs them all (as
pytest sessions, one per file, so a failure in one benchmark does not stop
the rest), then prints a summary of the collected JSON files.  The JSON
results are the cross-PR perf trajectory: commit or archive the results
directory to compare runs.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--profile quick|full] [--profiling]
                                                [--results-dir DIR]
                                                [--only PATTERN] [--skip PATTERN]

``--only`` / ``--skip`` select benchmark files by name: plain substrings
(``--only cluster``) or shell-style globs (``--only 'bench_table*'``); both
may be repeated, and ``--skip`` wins over ``--only``.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent


def _matches(name: str, pattern: str) -> bool:
    """Substring match, or fnmatch when the pattern carries glob characters."""
    if any(char in pattern for char in "*?["):
        return fnmatch.fnmatch(name, pattern)
    return pattern in name


def discover(
    only: "list[str] | str | None" = None,
    skip: "list[str] | str | None" = None,
) -> list[Path]:
    """Benchmark files to run, filtered by ``--only`` / ``--skip`` patterns."""
    only = [only] if isinstance(only, str) else (only or [])
    skip = [skip] if isinstance(skip, str) else (skip or [])
    files = sorted(BENCH_DIR.glob("bench_*.py"))
    if only:
        files = [path for path in files if any(_matches(path.name, pattern) for pattern in only)]
    if skip:
        files = [path for path in files if not any(_matches(path.name, pattern) for pattern in skip)]
    return files


_PYTEST_NO_TESTS_COLLECTED = 5


def run_benchmark(path: Path, env: dict) -> tuple[bool, float]:
    """Run one benchmark file; returns (passed, seconds).

    Benchmarks are pytest files, except the plain-CLI ones (e.g.
    ``bench_rollout_throughput.py``): when pytest collects no tests, the file
    is re-run as a script and its own exit code decides.
    """
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", str(path), "-q", "--no-header"],
        cwd=REPO_ROOT,
        env=env,
    )
    if proc.returncode == _PYTEST_NO_TESTS_COLLECTED:
        proc = subprocess.run([sys.executable, str(path)], cwd=REPO_ROOT, env=env)
    return proc.returncode == 0, time.perf_counter() - started


def summarise(results_dir: Path) -> list[list[str]]:
    rows = []
    for path in sorted(results_dir.glob("*.json")):
        try:
            with path.open(encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError):
            rows.append([path.name, "?", "?", "unreadable"])
            continue
        payload = document.get("payload", {})
        size = len(payload) if isinstance(payload, (dict, list)) else 1
        schema = document.get("schema_version", "missing")
        rows.append([path.name, str(schema), document.get("profile", "?"), f"{size} payload entries"])
        cells = payload.get("cells") if isinstance(payload, dict) else None
        if isinstance(cells, dict):
            # Scaling benchmarks report one steps/sec entry per num_envs cell;
            # surface them in the aggregate so the curve is visible at a glance.
            for cell_name, cell in cells.items():
                if isinstance(cell, dict) and "steps_per_sec" in cell:
                    rows.append(
                        [
                            f"  · {cell_name}",
                            "",
                            "",
                            f"num_envs={cell.get('num_envs', '?')}: "
                            f"{cell['steps_per_sec']:.0f} steps/sec",
                        ]
                    )
        if isinstance(payload, dict):
            # Serving benchmarks report SLO attainment, shed counts and
            # goodput per control-plane scenario; surface the overload story
            # (does the controlled config protect the interactive tier?) in
            # the aggregate.
            for scenario_name, scenario in payload.items():
                if not (isinstance(scenario, dict) and "interactive_slo_attainment" in scenario):
                    continue
                attainment = scenario["interactive_slo_attainment"]
                shed = scenario.get("shed", 0)
                goodput = scenario.get("goodput")
                info = f"interactive SLO attainment={attainment:.2f}, shed={shed}"
                if isinstance(goodput, (int, float)):
                    info += f", goodput={goodput:.2f} q/s"
                rows.append([f"  · {scenario_name}", "", "", info])
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", choices=("quick", "full"), default=None,
                        help="effort profile (default: REPRO_BENCH_PROFILE or quick)")
    parser.add_argument("--profiling", action="store_true",
                        help="collect cProfile + section-timer JSON alongside the measurements "
                             "(sets REPRO_BENCH_PROFILING=1 for every benchmark; distinct from "
                             "--profile, which picks the effort level)")
    parser.add_argument("--results-dir", default=None,
                        help="where JSON results land (default: REPRO_BENCH_RESULTS or benchmarks/results)")
    parser.add_argument("--only", action="append", default=None, metavar="PATTERN",
                        help="run only benchmarks matching PATTERN (substring or glob; repeatable)")
    parser.add_argument("--skip", action="append", default=None, metavar="PATTERN",
                        help="skip benchmarks matching PATTERN (substring or glob; repeatable)")
    args = parser.parse_args()

    env = dict(os.environ)
    if args.profile:
        env["REPRO_BENCH_PROFILE"] = args.profile
    if args.profiling:
        env["REPRO_BENCH_PROFILING"] = "1"
    if args.results_dir:
        env["REPRO_BENCH_RESULTS"] = args.results_dir
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")

    files = discover(only=args.only, skip=args.skip)
    if not files:
        print("no benchmarks matched", file=sys.stderr)
        return 2

    failures = []
    for path in files:
        print(f"\n=== {path.name} ===", flush=True)
        passed, elapsed = run_benchmark(path, env)
        print(f"--- {path.name}: {'ok' if passed else 'FAILED'} in {elapsed:.1f}s", flush=True)
        if not passed:
            failures.append(path.name)

    results_dir = Path(env.get("REPRO_BENCH_RESULTS", "benchmarks/results"))
    if not results_dir.is_absolute():
        results_dir = REPO_ROOT / results_dir
    print("\nCollected JSON results:")
    for name, schema, profile, info in summarise(results_dir):
        if schema:
            print(f"  {name:<36} schema={schema:<3} profile={profile:<6} {info}")
        else:
            print(f"  {name:<36} {info}")

    if failures:
        print(f"\n{len(failures)} benchmark file(s) failed: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
