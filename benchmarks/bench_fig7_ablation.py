"""Figure 7 — ablation of the RL scheduler and adaptive masking.

Variants of BQSched: full (IQ-PPO), plain PPO, PPG, without the attention
state representation, and without adaptive masking.  The paper reports the
masking ablation as the largest regression (~44 % worse), followed by PPO,
attention and PPG.
"""

from __future__ import annotations

from repro.bench import Scenario, paper_values, print_table, write_json_report
from repro.core import BQSched


class BQSchedWithPPO(BQSched):
    name = "BQSched w/ PPO"
    algorithm = "ppo"


class BQSchedWithPPG(BQSched):
    name = "BQSched w/ PPG"
    algorithm = "ppg"


class BQSchedNoMask(BQSched):
    name = "BQSched w/o masking"
    use_masking = False


class BQSchedNoAttention(BQSched):
    name = "BQSched w/o attention"
    use_attention_state = False


def _run(profile):
    benchmark_name = "tpch" if profile.name == "quick" else "tpcds"
    scenario = Scenario(benchmark=benchmark_name, dbms="x", profile=profile)
    rounds = profile.evaluation_rounds
    variants = [BQSched, BQSchedWithPPO, BQSchedWithPPG, BQSchedNoAttention, BQSchedNoMask]
    measured = {}
    for cls in variants:
        workload, engine, config = scenario.build()
        scheduler = cls(workload, engine, config)
        pretrain = profile.pretrain_updates if scheduler.use_simulator else 0
        scheduler.train(num_updates=profile.train_updates, pretrain_updates=pretrain,
                        history_rounds=profile.history_rounds)
        measured[scheduler.name] = scheduler.evaluate_policy(rounds=rounds).mean

    base = measured["BQSched"]
    rows = []
    paper_relative = {
        "BQSched": 1.0,
        "BQSched w/ PPO": paper_values.FIG7_ABLATION_RELATIVE["w/ PPO"],
        "BQSched w/ PPG": paper_values.FIG7_ABLATION_RELATIVE["w/ PPG"],
        "BQSched w/o attention": paper_values.FIG7_ABLATION_RELATIVE["w/o attention state"],
        "BQSched w/o masking": paper_values.FIG7_ABLATION_RELATIVE["w/o adaptive masking"],
    }
    for name, value in measured.items():
        rows.append([name, f"{value:.2f}", f"{value / base:.2f}", f"{paper_relative[name]:.2f}"])
    print_table(
        ["variant", "measured t_ov (s)", "measured relative", "paper relative"],
        rows,
        title="Figure 7 — ablation of state representation, IQ-PPO and masking",
    )
    write_json_report("fig7_ablation", {"measured": measured, "relative": {k: v / base for k, v in measured.items()}})
    return measured


def test_fig7_ablation(benchmark, profile):
    measured = benchmark.pedantic(lambda: _run(profile), rounds=1, iterations=1)
    # Shape check: the full system is at least as good as the worst ablation,
    # and all variants complete scheduling successfully.
    assert all(value > 0 for value in measured.values())
    assert measured["BQSched"] <= max(measured.values()) + 1e-9
