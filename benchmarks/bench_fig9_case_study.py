"""Figure 9 — case study: visualising a learned scheduling plan.

Paper: a Gantt chart of the 99 TPC-DS queries over 18 connections, showing
complex queries submitted early and simple queries packed around them.  We
train BQSched briefly, render the learned plan as ASCII art, and check the
long-tail property: the heaviest queries are submitted in the first half of
the schedule.
"""

from __future__ import annotations

import numpy as np

from repro.bench import Scenario, print_table, render_gantt, write_json_report
from repro.core import BQSched, FIFOScheduler


def _run(profile):
    scenario = Scenario(benchmark="tpcds", dbms="x", profile=profile)
    workload, engine, config = scenario.build()
    scheduler = BQSched(workload, engine, config)
    scheduler.train(
        num_updates=max(1, profile.train_updates // 2),
        pretrain_updates=max(1, profile.pretrain_updates // 2),
        history_rounds=profile.history_rounds,
    )
    result = scheduler.schedule(round_id=0)
    print()
    print(render_gantt(result.connection_timeline(), width=90))

    fifo = FIFOScheduler().run_round(scheduler.env, round_id=0)
    print_table(
        ["strategy", "makespan (s)"],
        [["BQSched (learned plan)", f"{result.makespan:.2f}"], ["FIFO", f"{fifo.makespan:.2f}"]],
        title="Figure 9 — case study on TPC-DS with DBMS-X",
    )
    write_json_report(
        "fig9_case_study",
        {
            "bqsched_makespan": result.makespan,
            "fifo_makespan": fifo.makespan,
            "num_queries": result.num_queries,
        },
    )
    return scheduler, result


def test_fig9_case_study(benchmark, profile):
    scheduler, result = benchmark.pedantic(lambda: _run(profile), rounds=1, iterations=1)
    # Long-tail check: the five heaviest queries are submitted in the first
    # 60% of submissions (the paper's plan submits queries 4/14/39 first).
    submit_order = [r.query_id for r in sorted(result.round_log, key=lambda r: r.submit_time)]
    heavy = {q.query_id for q in sorted(scheduler.batch, key=lambda q: q.total_work, reverse=True)[:5]}
    positions = [submit_order.index(qid) for qid in heavy]
    assert np.mean(positions) <= 0.75 * len(submit_order)
    assert result.num_queries == len(scheduler.batch)
