"""Shared helpers for the paper-reproduction benchmarks."""

from __future__ import annotations

import pytest

from repro.bench import get_profile


@pytest.fixture(scope="session")
def profile():
    return get_profile()
