"""Figure 5 — scalability over data scale and query scale.

Paper: makespans of all strategies as data grows (1x–10x on DBMS-X,
50x–200x on DBMS-Z) and as the query set grows (1x–10x).  The quick profile
runs a reduced grid (RL only at the smallest point of each axis).
"""

from __future__ import annotations

from repro.bench import Scenario, evaluate_heuristics, evaluate_rl, print_table, write_json_report
from repro.core import BQSched


def _sweep(profile, axis, points, dbms, benchmark_name, rl_points):
    rows = []
    shapes = []
    for point in points:
        scenario = Scenario(
            benchmark=benchmark_name,
            dbms=dbms,
            data_scale=point if axis == "data" else 1.0,
            query_scale=point if axis == "query" else 1.0,
            profile=profile,
        )
        workload, engine, config = scenario.build()
        rounds = profile.evaluation_rounds
        results = evaluate_heuristics(workload, engine, config, rounds=rounds)
        if point in rl_points:
            evaluation, _ = evaluate_rl(workload, engine, config, BQSched, profile, rounds)
            results["BQSched"] = evaluation
            shapes.append(results["BQSched"].mean <= results["FIFO"].mean * 1.05)
        for strategy, evaluation in results.items():
            rows.append([f"{benchmark_name}/{dbms} {axis} {point}x", strategy, f"{evaluation.mean:.2f}"])
    return rows, shapes


def test_fig5_scalability(benchmark, profile):
    def run():
        all_rows, all_shapes = [], []
        if profile.name == "quick":
            grids = [
                ("data", [1.0, 2.0], "x", "tpcds", [1.0]),
                ("query", [1.0, 2.0], "x", "tpcds", [1.0]),
                ("data", [50.0], "z", "tpch", []),
            ]
        else:
            grids = [
                ("data", [1.0, 2.0, 5.0, 10.0], "x", "tpcds", [1.0, 2.0]),
                ("query", [1.0, 2.0, 5.0], "x", "tpcds", [1.0, 2.0]),
                ("data", [50.0, 100.0, 200.0], "z", "tpcds", [50.0]),
                ("data", [50.0, 100.0, 200.0], "z", "tpch", [50.0]),
            ]
        for axis, points, dbms, bench_name, rl_points in grids:
            rows, shapes = _sweep(profile, axis, points, dbms, bench_name, rl_points)
            all_rows.extend(rows)
            all_shapes.extend(shapes)
        print_table(
            ["scale point", "strategy", "measured t_ov (s)"],
            all_rows,
            title="Figure 5 — scalability (paper: BQSched improves FIFO by 13-61% across scales)",
        )
        write_json_report("fig5_scalability", {"rows": all_rows, "shape_checks": all_shapes})
        return all_shapes

    shapes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(shapes) or sum(shapes) >= len(shapes) - 1


def test_fig5_heuristic_makespan_grows_with_data(benchmark, profile):
    def run():
        scenario_small = Scenario(benchmark="tpcds", dbms="x", data_scale=1.0, profile=profile)
        scenario_large = Scenario(benchmark="tpcds", dbms="x", data_scale=5.0, profile=profile)
        results = []
        for scenario in (scenario_small, scenario_large):
            workload, engine, config = scenario.build()
            results.append(evaluate_heuristics(workload, engine, config, rounds=2)["FIFO"].mean)
        return results

    small, large = benchmark.pedantic(run, rounds=1, iterations=1)
    assert large > small
