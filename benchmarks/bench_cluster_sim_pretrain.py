"""Cluster-scale learned simulation: fidelity and pre-training pay-off.

Two measurements on a heterogeneous 3-instance fleet (DBMS-X/Y/Z):

* **Per-instance sim fidelity** (Table-III style): one
  :class:`~repro.perf.PerformanceModel` is trained from instance-tagged
  fleet logs and evaluated on held-out rounds, reporting earliest-finisher
  accuracy and remaining-time MSE *per engine instance* — the model must
  track a fast and a slow instance side by side.

* **Real-episodes-to-target**: the point of fleet pre-training is sample
  efficiency on the real cluster.  Two identical BQSched schedulers train
  towards the greedy-cost placement baseline's makespan (the strongest
  myopic heuristic); one pre-trains against the
  :class:`~repro.perf.SimulatedCluster` first — simulated episodes cost
  zero real-fleet rounds, so the pre-training budget is deliberately
  generous — the other starts from scratch and can only learn from real
  rollouts.  The benchmark reports how many real-cluster rollout episodes
  each needs before a greedy evaluation beats the target.
"""

from __future__ import annotations

import numpy as np

from repro import BQSched, BQSchedConfig, Cluster, make_workload
from repro.bench import cluster_env, print_table, write_json_report
from repro.core import GreedyCostPlacementScheduler
from repro.core.knowledge import ExternalKnowledge
from repro.dbms import ConfigurationSpace
from repro.encoder import PlanEmbeddingCache, QueryFormer
from repro.perf import PerformanceModel
from repro.plans import PlanFeaturizer

_FLEET = ("x", "y", "z")
#: Real-update chunks the from-scratch variant may spend chasing the target.
_MAX_CHUNKS = 6
#: Simulated pre-training updates per profile pretrain unit (simulated
#: episodes are cheap — the whole point of the learned fleet).
_PRETRAIN_MULTIPLIER = 6


def _orders(batch, count: int, start_seed: int = 0) -> list[list[int]]:
    base = [q.query_id for q in batch]
    orders = []
    for seed in range(start_seed, start_seed + count):
        order = list(base)
        np.random.default_rng(seed).shuffle(order)
        orders.append(order)
    return orders


def _fidelity(profile, workload, fleet, config):
    """Train the fleet performance model and measure per-instance fidelity."""
    batch = workload.batch_query_set()
    config_space = ConfigurationSpace(config.scheduler)
    knowledge = ExternalKnowledge.from_probes(fleet, batch, config_space)
    rng = np.random.default_rng(0)
    queryformer = QueryFormer(PlanFeaturizer(workload.catalog), config.encoder, rng)
    plan_embeddings = PlanEmbeddingCache(queryformer).embeddings_for(batch)

    train_rounds = profile.history_rounds + 2
    train_log = fleet.collect_logs(
        batch, _orders(batch, train_rounds), config_space.default,
        num_connections=config.scheduler.num_connections,
    )
    holdout_log = fleet.collect_logs(
        batch, _orders(batch, 2, start_seed=100), config_space.default,
        num_connections=config.scheduler.num_connections,
    )
    perf = PerformanceModel(
        batch=batch,
        plan_embeddings=plan_embeddings,
        knowledge=knowledge,
        config_space=config_space,
        config=config.simulator,
        seed=0,
        instance_speeds=fleet.speed_factors(),
    )
    overall = perf.train_from_log(train_log)
    per_instance = perf.metrics_by_instance(holdout_log)
    return overall, per_instance


def _episodes_to_target(workload, config, pretrain_updates: int, target: float, seed: int):
    """Real-cluster rollout episodes until a greedy evaluation beats ``target``."""
    fleet = Cluster.from_names(list(_FLEET), seed=seed)
    scheduler = BQSched(workload, fleet, config)
    scheduler.train(num_updates=0, pretrain_updates=pretrain_updates, keep_best=False)
    episodes_per_update = config.ppo.rollouts_per_update
    real_episodes = 0
    curve = []
    for chunk in range(_MAX_CHUNKS + 1):
        evaluation = scheduler.evaluate_policy(rounds=2, base_round_id=60_000 + 10 * chunk)
        curve.append(evaluation.mean)
        if evaluation.mean <= target:
            return real_episodes, curve
        if chunk == _MAX_CHUNKS:
            break
        scheduler.train(num_updates=1, pretrain_updates=0, keep_best=False)
        real_episodes += episodes_per_update
    return real_episodes, curve


def _run(profile):
    workload = make_workload("tpch", scale_factor=1.0, seed=0)
    fleet = Cluster.from_names(list(_FLEET), seed=0)
    config = BQSchedConfig.small(seed=0)
    config.scheduler.num_connections = 2  # per instance: 6 fleet-wide

    overall, per_instance = _fidelity(profile, workload, fleet, config)

    target_env = cluster_env(workload, fleet, config)
    target = GreedyCostPlacementScheduler().evaluate(target_env, rounds=2, base_round_id=60_000).mean

    pretrain_updates = profile.pretrain_updates * _PRETRAIN_MULTIPLIER
    pretrained_episodes, pretrained_curve = _episodes_to_target(
        workload, config, pretrain_updates=pretrain_updates, target=target, seed=0
    )
    scratch_episodes, scratch_curve = _episodes_to_target(
        workload, config, pretrain_updates=0, target=target, seed=0
    )

    rows = [["overall", f"{overall.accuracy:.1%}", f"{overall.mse:.3f}", str(overall.num_examples)]]
    for instance, metrics in per_instance.items():
        rows.append(
            [f"instance {instance} ({_FLEET[instance]})", f"{metrics.accuracy:.1%}",
             f"{metrics.mse:.3f}", str(metrics.num_examples)]
        )
    print_table(
        ["scope", "earliest-finisher Acc", "remaining-time MSE", "examples"],
        rows,
        title="Fleet performance model — per-instance fidelity on held-out rounds",
    )
    print_table(
        ["variant", "real-cluster episodes to target", "eval curve (makespan)"],
        [
            [f"with fleet pre-training ({pretrain_updates} sim updates)", str(pretrained_episodes),
             " ".join(f"{m:.2f}" for m in pretrained_curve)],
            ["from scratch", str(scratch_episodes),
             " ".join(f"{m:.2f}" for m in scratch_curve)],
        ],
        title=f"Episodes to reach the GreedyCost-placement target makespan ({target:.2f}s)",
    )
    write_json_report(
        "cluster_sim_pretrain",
        {
            "fleet": list(_FLEET),
            "sim_fidelity": {
                "overall": {
                    "accuracy": overall.accuracy,
                    "mse": overall.mse,
                    "num_examples": overall.num_examples,
                },
                "per_instance": {
                    str(instance): {
                        "accuracy": metrics.accuracy,
                        "mse": metrics.mse,
                        "num_examples": metrics.num_examples,
                    }
                    for instance, metrics in per_instance.items()
                },
            },
            "target_makespan": target,
            "episodes_to_target": {
                "with_pretrain": pretrained_episodes,
                "from_scratch": scratch_episodes,
            },
            "eval_curves": {"with_pretrain": pretrained_curve, "from_scratch": scratch_curve},
        },
    )
    return overall, per_instance, target, pretrained_episodes, scratch_episodes


def test_cluster_sim_pretraining(benchmark, profile):
    overall, per_instance, target, pretrained, scratch = benchmark.pedantic(
        lambda: _run(profile), rounds=1, iterations=1
    )
    # Fidelity: the model learned something on every instance of the fleet.
    assert overall.num_examples > 0 and np.isfinite(overall.mse)
    assert set(per_instance) == {0, 1, 2}
    for metrics in per_instance.values():
        assert metrics.num_examples > 0
        assert 0.0 <= metrics.accuracy <= 1.0 and np.isfinite(metrics.mse)
    # Sample efficiency (the acceptance bar): fleet pre-training reaches the
    # greedy-cost target makespan in fewer real-cluster episodes than
    # training from scratch — simulated episodes are free, real ones are not.
    assert pretrained < scratch
