"""Cross-configuration cluster adaptability (Table-II-style, heterogeneous fleet).

The cluster analogue of the paper's adaptability experiment: the policy is
trained on a *homogeneous* 3-instance fleet (three DBMS-X servers), then
confronted with a *skewed* fleet — same profiles except the hardware speeds
now span fast/stock/slow — in two regimes:

* **zero-shot**: the trained policy is applied without retraining (plan
  embeddings, knowledge and masks are rebuilt for the new fleet; the network
  is reused as-is);
* **adapted**: the policy is fine-tuned briefly on the skewed fleet, the
  cross-configuration adaptation a periodic batch workload affords.

Both are compared against the placement heuristics: round-robin, least
outstanding work (speed-blind load balancing — the classic heuristic a
heterogeneous fleet defeats), and greedy expected-completion cost (the
strongest myopic baseline, reported for context).  The acceptance bar is the
adapted policy beating round-robin *and* least-outstanding-work.
"""

from __future__ import annotations

from dataclasses import replace

from repro import BQSchedConfig, Cluster, DBMSProfile, LSchedScheduler, make_workload
from repro.bench import evaluate_placement_baselines, print_table, write_json_report

_SKEW_SPEEDS = {"X-fast": 1.6, "X-stock": 1.0, "X-slow": 0.45}


def _fleets(seed: int) -> tuple[Cluster, Cluster]:
    base = DBMSProfile.dbms_x()
    homogeneous = Cluster.homogeneous(base, 3, seed=seed, name="train-fleet")
    skewed = Cluster.from_profiles(
        [replace(base, name=name, speed=speed) for name, speed in _SKEW_SPEEDS.items()],
        seed=seed,
        name="eval-fleet",
    )
    return homogeneous, skewed


def _run(profile):
    seed = 0
    workload = make_workload("tpch", scale_factor=1.0, seed=0)
    config = BQSchedConfig.small(seed=seed)
    config.scheduler.num_connections = 2  # per instance: 6 fleet-wide
    rounds = profile.evaluation_rounds
    train_updates = profile.train_updates
    homogeneous, skewed = _fleets(seed)

    results = evaluate_placement_baselines(workload, skewed, config, rounds=rounds)

    trained = LSchedScheduler(workload, homogeneous, config)
    trained.train(num_updates=train_updates, history_rounds=profile.history_rounds)
    results["LSched (zero-shot)"] = trained.evaluate_on(workload, skewed, rounds=rounds)

    adapted = LSchedScheduler(workload, skewed, config)
    adapted.policy.load_state_dict(trained.policy.state_dict())
    adapted.train(num_updates=train_updates, history_rounds=profile.history_rounds)
    results["LSched (adapted)"] = adapted.evaluate_policy(rounds=rounds)

    rows = [
        [name, f"{evaluation.mean:.2f} ± {evaluation.std:.2f}"]
        for name, evaluation in results.items()
    ]
    print_table(
        ["strategy", "makespan on skewed fleet (s)"],
        rows,
        title="Cluster adaptability — trained on homogeneous, evaluated on skewed 3-instance fleet",
    )
    write_json_report(
        "cluster_adaptability",
        {
            "fleet_speeds": _SKEW_SPEEDS,
            "rounds": rounds,
            "train_updates": train_updates,
            "makespans": {name: evaluation.mean for name, evaluation in results.items()},
            "stds": {name: evaluation.std for name, evaluation in results.items()},
        },
    )
    return results


def test_cluster_adaptability(benchmark, profile):
    results = benchmark.pedantic(lambda: _run(profile), rounds=1, iterations=1)
    adapted = results["LSched (adapted)"].mean
    # Acceptance: the trained policy beats blind rotation and speed-blind
    # load balancing on the heterogeneous fleet.
    assert adapted <= results["RR-placement"].mean
    assert adapted <= results["LOW-placement"].mean
    # The zero-shot transfer should at least stay within the ballpark of the
    # speed-blind balancer even without seeing the skew during training.
    assert results["LSched (zero-shot)"].mean <= results["LOW-placement"].mean * 1.25
