"""Figure 6 — RL training cost: simulator pre-training vs training from scratch.

Paper: pre-training BQSched on the learned simulator plus a short fine-tuning
phase costs a small fraction of training from scratch on the DBMS, and far
less than training LSched.  We measure wall-clock seconds of each phase.
"""

from __future__ import annotations

from repro.bench import Scenario, paper_values, print_table, write_json_report
from repro.core import BQSched, LSchedScheduler


def _run(profile):
    benchmark_name = "tpch" if profile.name == "quick" else "tpcds"
    scenario = Scenario(benchmark=benchmark_name, dbms="x", profile=profile)
    rows = {}

    phase_rows = {}

    # BQSched with simulator pre-training: most updates happen on the simulator,
    # only a short fine-tuning phase touches the DBMS.
    workload, engine, config = scenario.build()
    with_sim = BQSched(workload, engine, config)
    with_sim.train(num_updates=max(1, profile.train_updates // 2), pretrain_updates=profile.pretrain_updates)
    rows["BQSched (pretrain + finetune)"] = dict(with_sim.timings)
    phase_rows["BQSched (pretrain + finetune)"] = with_sim.trainer.timers.as_dict()

    # BQSched trained from scratch on the DBMS (no simulator).
    workload, engine, config = scenario.build()
    from_scratch = BQSched(workload, engine, config)
    from_scratch.use_simulator = False
    from_scratch.train(num_updates=profile.train_updates)
    rows["BQSched (from scratch)"] = dict(from_scratch.timings)
    phase_rows["BQSched (from scratch)"] = from_scratch.trainer.timers.as_dict()

    # LSched trained from scratch on the DBMS.
    workload, engine, config = scenario.build()
    lsched = LSchedScheduler(workload, engine, config)
    lsched.train(num_updates=profile.train_updates)
    rows["LSched (from scratch)"] = dict(lsched.timings)
    phase_rows["LSched (from scratch)"] = lsched.trainer.timers.as_dict()

    table = []
    for name, timings in rows.items():
        table.append(
            [
                name,
                f"{timings.get('pretrain', 0.0):.1f}",
                f"{timings.get('finetune', 0.0):.1f}",
                f"{timings.get('train_total', 0.0):.1f}",
            ]
        )
    print_table(
        ["configuration", "pretrain (s)", "finetune on DBMS (s)", "total (s)"],
        table,
        title=(
            "Figure 6 — training cost (paper: pretrain+finetune uses ~10% of LSched's "
            f"time; ratios: {paper_values.FIG6_TRAINING_COST})"
        ),
    )
    # Trainer-internal phase breakdown (SectionTimers): where each final
    # trainer's wall clock went — rollout collection vs the update/aux
    # optimisation phases (and the optimizer slice inside those).
    phases = sorted({phase for timers in phase_rows.values() for phase in timers})
    breakdown = [
        [name] + [f"{timers.get(phase, {}).get('seconds', 0.0):.2f}" for phase in phases]
        for name, timers in phase_rows.items()
    ]
    print_table(
        ["configuration"] + [f"{phase} (s)" for phase in phases],
        breakdown,
        title="Trainer phase breakdown (SectionTimers, final training phase)",
    )
    write_json_report("fig6_training_cost", {"timings": rows, "trainer_phases": phase_rows})
    return rows


def test_fig6_training_cost(benchmark, profile):
    rows = benchmark.pedantic(lambda: _run(profile), rounds=1, iterations=1)
    # Shape check: the DBMS-facing fine-tuning time of the pretrained BQSched is
    # smaller than training LSched from scratch on the DBMS.
    assert rows["BQSched (pretrain + finetune)"]["finetune"] < rows["LSched (from scratch)"]["train_total"]
