"""Table II — adaptability to data / query-set changes (TPC-DS, DBMS-X).

The RL schedulers are trained on the 1x workload and then applied, without
retraining, to perturbed workloads (±10 / ±20 % data and query scale); the
heuristics are evaluated directly on each perturbed workload.
"""

from __future__ import annotations

from repro.bench import Scenario, evaluate_heuristics, evaluate_rl, paper_values, print_table, write_json_report
from repro.core import BQSched, LSchedScheduler
from repro.workloads import perturb_workload


def _run(profile):
    factors = ("0.9x", "1.1x") if profile.name == "quick" else ("0.8x", "0.9x", "1.1x", "1.2x")
    scenario = Scenario(benchmark="tpcds", dbms="x", profile=profile)
    workload, engine, config = scenario.build()
    rounds = profile.evaluation_rounds

    trained = {}
    for cls in (LSchedScheduler, BQSched):
        evaluation, scheduler = evaluate_rl(workload, engine, config, cls, profile, rounds)
        trained[scheduler.name] = scheduler

    rows = []
    improvements = []
    for dimension in ("data", "query"):
        for label in factors:
            factor = float(label.rstrip("x"))
            perturbed = perturb_workload(
                workload,
                data_factor=factor if dimension == "data" else 1.0,
                query_factor=factor if dimension == "query" else 1.0,
            )
            results = evaluate_heuristics(perturbed, engine, config, rounds=rounds)
            for name, scheduler in trained.items():
                results[name] = scheduler.evaluate_on(perturbed, engine, rounds=rounds)
            paper = paper_values.TABLE2_MAKESPAN[dimension][label]
            for strategy, evaluation in results.items():
                rows.append(
                    [
                        f"{dimension} {label}",
                        strategy,
                        f"{evaluation.mean:.2f} ± {evaluation.std:.2f}",
                        f"{paper[strategy]:.2f}",
                    ]
                )
            improvements.append(results["BQSched"].mean <= results["FIFO"].mean * 1.1)
    print_table(
        ["perturbation", "strategy", "measured t_ov (s)", "paper t_ov (s)"],
        rows,
        title="Table II — adaptability under data / query changes",
    )
    write_json_report("table2_adaptability", {"rows": rows, "improvements": improvements})
    return improvements


def test_table2_adaptability(benchmark, profile):
    improvements = benchmark.pedantic(lambda: _run(profile), rounds=1, iterations=1)
    # The transferred BQSched policy should stay competitive with FIFO on
    # most perturbations even without retraining.
    assert sum(improvements) >= len(improvements) // 2
