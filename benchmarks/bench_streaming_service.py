"""Streaming service — multi-tenant, open-arrival serving on one engine.

Not a paper experiment: this benchmark exercises the event-driven runtime
the way a shared cluster would be operated.  N tenants run the TPC-H batch
concurrently on one engine (shared connections, buffer pool and contention
model); the closed scenario measures pure multi-tenancy, the Poisson and
bursty scenarios additionally stream each tenant's queries in over time.
Reported per tenant: makespan and latency percentiles.
"""

from __future__ import annotations

from repro.bench import Scenario, evaluate_service, print_table, write_json_report
from repro.core import LSchedScheduler


def _build_scheduler(profile):
    scenario = Scenario(benchmark="tpch", dbms="x", profile=profile)
    workload, engine, config = scenario.build()
    scheduler = LSchedScheduler(workload, engine, config)
    scheduler.train(num_updates=max(1, profile.train_updates // 2))
    return scheduler


def _run(profile):
    scheduler = _build_scheduler(profile)
    scenarios = [
        ("closed", 2),
        ("poisson", 2),
        ("bursty", 2),
    ]
    if profile.name == "full":
        scenarios += [("poisson", 4)]
    rows = []
    reports = {}
    for process, tenants in scenarios:
        report = evaluate_service(
            scheduler,
            num_tenants=tenants,
            arrival_process=process,
            arrival_rate=3.0,
            num_connections=profile.num_connections,
        )
        reports[f"{process}/{tenants}"] = report.as_dict()
        for tenant in report.tenants:
            rows.append(
                [
                    f"{process} x{tenants}",
                    tenant.tenant,
                    f"{tenant.makespan:.2f}",
                    f"{tenant.p50_latency:.2f}",
                    f"{tenant.p90_latency:.2f}",
                    f"{tenant.p99_latency:.2f}",
                ]
            )
    print_table(
        ["scenario", "tenant", "makespan (s)", "p50 lat (s)", "p90 lat (s)", "p99 lat (s)"],
        rows,
        title="Streaming service — per-tenant completion metrics",
    )
    write_json_report("streaming_service", {"rows": rows, "reports": reports})
    return reports


def test_streaming_service(benchmark, profile):
    reports = benchmark.pedantic(lambda: _run(profile), rounds=1, iterations=1)
    # Every scenario must drain every tenant's full batch.
    for report in reports.values():
        for tenant in report["tenants"]:
            assert tenant["num_queries"] > 0
            assert tenant["makespan"] > 0
