"""Rollout-collection scaling curve: steps/sec across ``num_envs``.

Measures steps/second of simulator-backed rollout collection — the dominant
cost of BQSched's pre-training phase — across the vectorized execution spine
at ``num_envs ∈ {1, 4, 8, 16, 32, 64}`` (quick profile: ``{1, 8}``), against
a *seed-equivalent scalar baseline*: ``num_envs=1`` with the legacy AoS
snapshot path forced (no :class:`~repro.encoder.SnapshotArrays`) and the
simulator's cross-session feature-row cache bypassed, i.e. the hot path as it
stood before the structure-of-arrays overhaul.

Methodology: the host this runs on is shared and noisy, so every repeat
measures *all* cells back to back (interleaved) and each cell reports the
median of its trials — machine-speed drift then shifts whole repeats, not
individual cells, and the speedup ratio stays meaningful.

Run directly::

    PYTHONPATH=src python benchmarks/bench_rollout_throughput.py
    REPRO_BENCH_PROFILING=1 PYTHONPATH=src python benchmarks/bench_rollout_throughput.py

The issue target for the overhaul is >= 10x the seed scalar baseline at
``num_envs=64``; the measured curve is recorded honestly either way, and the
exit code only gates on the regression floor (a level the curve clears with
margin on the reference container) so CI stays stable under machine noise.
"""

from __future__ import annotations

import argparse
import time
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro import BQSchedConfig, DatabaseEngine, DBMSProfile, make_workload
from repro.bench import (
    SectionTimers,
    get_profile,
    print_table,
    profile_call,
    profiling_enabled,
    write_json_report,
    write_profile_json,
)
from repro.core import BQSched
from repro.nn.backend import available_backends, resolve_backend

#: Scaling grid per effort profile (quick keeps CI smoke runs short).
ENV_GRID = {"quick": [1, 8], "full": [1, 4, 8, 16, 32, 64]}

#: Regression floor on the top-cell speedup vs the seed-equivalent scalar
#: baseline (exit-code gate; deliberately below the measured median so CI
#: does not flap on shared-host noise).
REGRESSION_FLOOR = {"quick": 2.0, "full": 4.0}

#: The tentpole goal from the issue, reported against the measured curve.
ISSUE_TARGET = 10.0


def build_scheduler(seed: int = 0) -> BQSched:
    """A TPC-H BQSched instance with a trained simulator to roll out against."""
    workload = make_workload("tpch", scale_factor=1.0, seed=seed)
    engine = DatabaseEngine(DBMSProfile.dbms_x(), seed=seed)
    config = BQSchedConfig(seed=seed)  # paper-default encoder (state_dim=48, 2 layers)
    config.simulator.epochs = 5
    scheduler = BQSched(workload, engine, config)
    scheduler.prepare(history_rounds=2)
    return scheduler


@contextmanager
def seed_equivalent_feature_rows(scheduler: BQSched) -> Iterator[None]:
    """Bypass the cross-session feature-row cache (absent in the seed tree)."""
    simulator = scheduler.simulator

    def uncached(query_id, parameters):
        return simulator._features([query_id], [parameters], [0.0])[0]

    simulator.cached_feature_row = uncached
    try:
        yield
    finally:
        del simulator.__dict__["cached_feature_row"]


def build_trainer(scheduler: BQSched, num_envs: int, legacy: bool = False, backend: str | None = None):
    """A rollout trainer; ``legacy`` forces the seed's AoS snapshot path.

    ``backend`` routes the sampling forward through a named inference backend
    (strict resolution: an unavailable backend raises instead of silently
    measuring ``numpy-ref``).
    """
    sim_env = scheduler._build_env(backend=scheduler.simulator)
    if legacy:
        sim_env._snapshot_arrays = lambda: None
    trainer = scheduler._make_trainer(sim_env, num_envs=num_envs)
    if backend is not None:
        trainer.inference_backend = resolve_backend(backend, scheduler.policy, strict=True)
    return trainer


def run_trial(scheduler: BQSched, trainer, episodes: int, legacy: bool) -> tuple[float, int]:
    """One timed ``collect_rollouts`` pass; returns (steps/sec, steps)."""
    if legacy:
        with seed_equivalent_feature_rows(scheduler):
            started = time.perf_counter()
            buffer = trainer.collect_rollouts(episodes)
            elapsed = time.perf_counter() - started
    else:
        started = time.perf_counter()
        buffer = trainer.collect_rollouts(episodes)
        elapsed = time.perf_counter() - started
    assert len(buffer.episodes) == episodes
    return len(buffer) / elapsed, len(buffer)


def main() -> int:
    profile = get_profile()
    grid = ENV_GRID.get(profile.name, ENV_GRID["full"])
    floor = REGRESSION_FLOOR.get(profile.name, REGRESSION_FLOOR["full"])
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3 if profile.name == "quick" else 5,
                        help="interleaved timed trials per cell (median)")
    parser.add_argument("--min-episodes", type=int, default=4 if profile.name == "quick" else 8,
                        help="episodes per trial for small env counts")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default="all",
                        choices=tuple(available_backends()) + ("all",),
                        help="extra inference-backend cells at the top env count "
                             "('all' measures every available backend)")
    args = parser.parse_args()

    timers = SectionTimers()
    with timers.section("prepare"):
        scheduler = build_scheduler(seed=args.seed)

    backend_names = list(available_backends()) if args.backend == "all" else [args.backend]
    extra_backends = []
    for name in backend_names:
        if name == "numpy-ref":
            continue  # the plain envs_N cells already measure the default backend
        try:
            resolve_backend(name, scheduler.policy, strict=True)
        except Exception as exc:  # noqa: BLE001 - unavailable/unsupported: skip, don't fail
            print(f"skipping backend cell {name!r}: {exc}")
            continue
        extra_backends.append(name)

    cells: dict[str, dict] = {"legacy_scalar": {"num_envs": 1, "legacy": True}}
    for num_envs in grid:
        cells[f"envs_{num_envs}"] = {"num_envs": num_envs, "legacy": False}
    for name in extra_backends:
        cells[f"envs_{grid[-1]}_{name}"] = {"num_envs": grid[-1], "legacy": False, "backend": name}
    with timers.section("warmup"):
        for cell in cells.values():
            cell["episodes"] = max(cell["num_envs"], args.min_episodes)
            cell["trainer"] = build_trainer(
                scheduler, cell["num_envs"], legacy=cell["legacy"], backend=cell.get("backend")
            )
            run_trial(scheduler, cell["trainer"], max(2, cell["num_envs"]), cell["legacy"])
            cell["rates"] = []

    with timers.section("measure"):
        for _ in range(args.repeats):
            for cell in cells.values():
                rate, steps = run_trial(scheduler, cell["trainer"], cell["episodes"], cell["legacy"])
                cell["rates"].append(rate)
                cell["steps"] = steps

    baseline = float(np.median(cells["legacy_scalar"]["rates"]))
    payload_cells: dict[str, dict] = {}
    rows = []
    for key, cell in cells.items():
        rate = float(np.median(cell["rates"]))
        speedup = rate / baseline
        payload_cells[key] = {
            "num_envs": cell["num_envs"],
            "backend": cell.get("backend", "legacy" if cell["legacy"] else "numpy-ref"),
            "episodes": cell["episodes"],
            "steps": cell["steps"],
            "steps_per_sec": rate,
            "speedup_vs_legacy": speedup,
        }
        rows.append([key, str(cell["num_envs"]), f"{rate:.0f}", f"{speedup:.2f}x"])

    top_key = f"envs_{grid[-1]}"
    speedup = payload_cells[top_key]["speedup_vs_legacy"]
    steps_per_episode = cells[top_key]["steps"] / cells[top_key]["episodes"]
    print_table(
        ["cell", "num_envs", "steps/sec", "speedup"],
        rows,
        title=(
            f"Simulator-backed rollout scaling (TPC-H, {steps_per_episode:.0f} steps/episode, "
            f"median of {args.repeats} interleaved trials, profile={profile.name})"
        ),
    )
    verdict = "PASS" if speedup >= floor else "BELOW FLOOR"
    print(
        f"top cell {top_key}: {speedup:.2f}x vs seed-equivalent scalar "
        f"(issue target >= {ISSUE_TARGET:.0f}x, regression floor >= {floor:.1f}x): {verdict}"
    )
    backend_speedups = {}
    top_rate = payload_cells[top_key]["steps_per_sec"]
    for name in extra_backends:
        backend_rate = payload_cells[f"{top_key}_{name}"]["steps_per_sec"]
        backend_speedups[name] = backend_rate / top_rate
        print(
            f"backend {name!r} at num_envs={grid[-1]}: "
            f"{backend_speedups[name]:.2f}x vs numpy-ref"
        )

    if profiling_enabled():
        trainer = cells[top_key]["trainer"]
        episodes = cells[top_key]["episodes"]
        with timers.section("cprofile"):
            _, summary = profile_call(lambda: trainer.collect_rollouts(episodes))
        write_profile_json(
            "rollout_profile",
            summary,
            sections=timers,
            extra={"cell": top_key, "num_envs": grid[-1], "episodes": episodes},
        )

    write_json_report(
        "rollout_scaling",
        {
            "steps_per_episode": steps_per_episode,
            "cells": payload_cells,
            "backend_speedups_vs_ref": backend_speedups,
            "top_cell_speedup": speedup,
            "issue_target_speedup": ISSUE_TARGET,
            "regression_floor_speedup": floor,
            "verdict": verdict,
        },
    )
    return 0 if speedup >= floor else 1


if __name__ == "__main__":
    raise SystemExit(main())
