"""Rollout-collection throughput: scalar engine vs vectorized engine.

Measures steps/second of simulator-backed rollout collection — the dominant
cost of BQSched's pre-training phase — for the legacy sequential path
(``num_envs=1``: one policy forward and one simulator prediction at a time)
against the vectorized execution spine (``num_envs=8``: one batched policy
forward per decision round and lockstep-batched simulator predictions).

Run directly::

    PYTHONPATH=src python benchmarks/bench_rollout_throughput.py

The vectorized engine is expected to reach >= 3x the scalar steps/sec at
``num_envs=8`` on the paper-default encoder configuration.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import BQSchedConfig, DatabaseEngine, DBMSProfile, make_workload
from repro.bench import print_table, write_json_report
from repro.core import BQSched


def build_scheduler(seed: int = 0) -> BQSched:
    """A TPC-H BQSched instance with a trained simulator to roll out against."""
    workload = make_workload("tpch", scale_factor=1.0, seed=seed)
    engine = DatabaseEngine(DBMSProfile.dbms_x(), seed=seed)
    config = BQSchedConfig(seed=seed)  # paper-default encoder (state_dim=48, 2 layers)
    config.simulator.epochs = 5
    scheduler = BQSched(workload, engine, config)
    scheduler.prepare(history_rounds=2)
    return scheduler


def measure(scheduler: BQSched, num_envs: int, episodes: int, repeats: int) -> tuple[float, float]:
    """Median steps/sec (and steps/episode) over ``repeats`` trials."""
    sim_env = scheduler._build_env(backend=scheduler.simulator)
    trainer = scheduler._make_trainer(sim_env, num_envs=num_envs)
    trainer.collect_rollouts(max(2, num_envs))  # warm caches and BLAS
    rates = []
    steps_per_episode = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        buffer = trainer.collect_rollouts(episodes)
        elapsed = time.perf_counter() - started
        assert len(buffer.episodes) == episodes
        rates.append(len(buffer) / elapsed)
        steps_per_episode = len(buffer) / episodes
    return float(np.median(rates)), steps_per_episode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=24, help="episodes per timed trial")
    parser.add_argument("--repeats", type=int, default=3, help="timed trials per configuration (median)")
    parser.add_argument("--num-envs", type=int, default=8, help="vectorized environment count")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    scheduler = build_scheduler(seed=args.seed)
    scalar_rate, steps_per_episode = measure(scheduler, 1, args.episodes, args.repeats)
    vector_rate, _ = measure(scheduler, args.num_envs, args.episodes, args.repeats)
    speedup = vector_rate / scalar_rate

    print_table(
        ["engine", "num_envs", "steps/sec", "speedup"],
        [
            ["scalar (legacy)", "1", f"{scalar_rate:.0f}", "1.00x"],
            ["vectorized", str(args.num_envs), f"{vector_rate:.0f}", f"{speedup:.2f}x"],
        ],
        title=(
            f"Simulator-backed rollout collection (TPC-H, {steps_per_episode:.0f} steps/episode, "
            f"{args.episodes} episodes, median of {args.repeats})"
        ),
    )
    target = 3.0
    verdict = "PASS" if speedup >= target else "BELOW TARGET"
    print(f"vectorized speedup {speedup:.2f}x vs scalar (target >= {target:.0f}x): {verdict}")
    write_json_report(
        "rollout_throughput",
        {
            "scalar_steps_per_sec": scalar_rate,
            "vectorized_steps_per_sec": vector_rate,
            "num_envs": args.num_envs,
            "speedup": speedup,
            "target": target,
            "verdict": verdict,
        },
    )
    return 0 if speedup >= target else 1


if __name__ == "__main__":
    raise SystemExit(main())
