"""A minimal NumPy deep-learning substrate (autograd, layers, attention, Adam).

The paper uses PyTorch + Stable-Baselines; this package provides the pieces
of those frameworks that BQSched actually needs so the reproduction has no
binary dependencies.
"""

from .tensor import Tensor, chained_sum, concatenate, no_grad, stack, where
from .functional import (
    cross_entropy,
    entropy,
    huber_loss,
    kl_divergence,
    masked_log_softmax,
    mse_loss,
    nll_loss,
    one_hot,
)
from .layers import (
    Activation,
    BatchNorm,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    Sequential,
)
from .attention import AttentionBlock, AttentionEncoder, MultiHeadAttention
from . import fastinfer
from . import fastgrad
from .optim import Adam, Optimizer, SGD, clip_grad_norm
from .serialization import Checkpoint, load_module, save_module
from . import backend

__all__ = [
    "Tensor",
    "chained_sum",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "fastinfer",
    "fastgrad",
    "backend",
    "cross_entropy",
    "entropy",
    "huber_loss",
    "kl_divergence",
    "masked_log_softmax",
    "mse_loss",
    "nll_loss",
    "one_hot",
    "Activation",
    "BatchNorm",
    "Embedding",
    "LayerNorm",
    "Linear",
    "MLP",
    "Module",
    "Parameter",
    "Sequential",
    "AttentionBlock",
    "AttentionEncoder",
    "MultiHeadAttention",
    "Adam",
    "Optimizer",
    "SGD",
    "clip_grad_norm",
    "Checkpoint",
    "load_module",
    "save_module",
]
