"""Multi-head attention and the attention encoder block used by BQSched.

Two flavours of attention are needed by the paper:

* plain multi-head self-attention over the batch-query token sequence
  (Section III-A, the state representation), and
* *tree-bias* attention inside QueryFormer (Section III-A, single query
  representation), where an additive bias derived from tree distances is
  injected into the attention scores before the softmax.

Both are covered by :class:`MultiHeadAttention`, which accepts an optional
additive bias matrix.
"""

from __future__ import annotations

import numpy as np

from .layers import BatchNorm, LayerNorm, Linear, MLP, Module
from .tensor import Tensor

__all__ = ["MultiHeadAttention", "AttentionBlock", "AttentionEncoder"]


class MultiHeadAttention(Module):
    """Scaled dot-product attention with multiple heads over one sequence.

    Input is a ``(tokens, model_dim)`` tensor; output has the same shape.
    An optional additive ``bias`` of shape ``(tokens, tokens)`` is added to
    the attention scores of every head (used for tree-bias attention).

    A 3-D input ``(batch, tokens, model_dim)`` runs one stacked forward over
    B independent sequences (the vectorized rollout/minibatch path); each
    element attends only within itself and the optional bias is shared.
    """

    def __init__(self, model_dim: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError(f"model_dim {model_dim} must be divisible by num_heads {num_heads}")
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.query_proj = Linear(model_dim, model_dim, rng)
        self.key_proj = Linear(model_dim, model_dim, rng)
        self.value_proj = Linear(model_dim, model_dim, rng)
        self.out_proj = Linear(model_dim, model_dim, rng)

    def forward(self, x: Tensor, bias: np.ndarray | None = None) -> Tensor:
        if x.ndim == 3:
            return self._forward_batched(x, bias)
        tokens = x.shape[0]
        queries = self.query_proj(x).reshape(tokens, self.num_heads, self.head_dim).transpose(1, 0, 2)
        keys = self.key_proj(x).reshape(tokens, self.num_heads, self.head_dim).transpose(1, 0, 2)
        values = self.value_proj(x).reshape(tokens, self.num_heads, self.head_dim).transpose(1, 0, 2)

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (queries @ keys.transpose(0, 2, 1)) * scale
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (tokens, tokens):
                raise ValueError(f"attention bias shape {bias.shape} != ({tokens}, {tokens})")
            scores = scores + Tensor(bias[None, :, :])
        weights = scores.softmax(axis=-1)
        mixed = weights @ values
        mixed = mixed.transpose(1, 0, 2).reshape(tokens, self.model_dim)
        return self.out_proj(mixed)

    def _forward_batched(self, x: Tensor, bias: np.ndarray | None = None) -> Tensor:
        batch, tokens = x.shape[0], x.shape[1]

        def heads(proj: Linear) -> Tensor:
            return proj(x).reshape(batch, tokens, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

        queries, keys, values = heads(self.query_proj), heads(self.key_proj), heads(self.value_proj)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (queries @ keys.transpose(0, 1, 3, 2)) * scale
        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (tokens, tokens):
                raise ValueError(f"attention bias shape {bias.shape} != ({tokens}, {tokens})")
            scores = scores + Tensor(bias[None, None, :, :])
        weights = scores.softmax(axis=-1)
        mixed = (weights @ values).transpose(0, 2, 1, 3).reshape(batch, tokens, self.model_dim)
        return self.out_proj(mixed)

    def attention_weights(self, x: Tensor, bias: np.ndarray | None = None) -> np.ndarray:
        """Return softmax attention weights ``(heads, tokens, tokens)`` for inspection."""
        tokens = x.shape[0]
        queries = self.query_proj(x).reshape(tokens, self.num_heads, self.head_dim).transpose(1, 0, 2)
        keys = self.key_proj(x).reshape(tokens, self.num_heads, self.head_dim).transpose(1, 0, 2)
        scale = 1.0 / np.sqrt(self.head_dim)
        scores = (queries @ keys.transpose(0, 2, 1)) * scale
        if bias is not None:
            scores = scores + Tensor(np.asarray(bias)[None, :, :])
        return scores.softmax(axis=-1).data


class AttentionBlock(Module):
    """One encoder layer: MHA + feed-forward, each with skip connection + norm.

    Mirrors the paper's formulation ``x_hat = BN(x + MHA(x))`` followed by
    ``x' = BN(x_hat + FF(x_hat))``.  ``norm`` selects batch normalisation
    (paper default) or layer normalisation.
    """

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        rng: np.random.Generator,
        feedforward_dim: int | None = None,
        norm: str = "batch",
    ) -> None:
        super().__init__()
        feedforward_dim = feedforward_dim or 2 * model_dim
        self.attention = MultiHeadAttention(model_dim, num_heads, rng)
        self.feedforward = MLP([model_dim, feedforward_dim, model_dim], rng, activation="relu")
        if norm == "batch":
            self.norm1: Module = BatchNorm(model_dim)
            self.norm2: Module = BatchNorm(model_dim)
        elif norm == "layer":
            self.norm1 = LayerNorm(model_dim)
            self.norm2 = LayerNorm(model_dim)
        else:
            raise ValueError(f"unknown norm {norm!r}; expected 'batch' or 'layer'")

    def forward(self, x: Tensor, bias: np.ndarray | None = None) -> Tensor:
        attended = self.norm1(x + self.attention(x, bias=bias))
        return self.norm2(attended + self.feedforward(attended))


class AttentionEncoder(Module):
    """A stack of :class:`AttentionBlock` layers sharing one bias matrix."""

    def __init__(
        self,
        model_dim: int,
        num_heads: int,
        num_layers: int,
        rng: np.random.Generator,
        feedforward_dim: int | None = None,
        norm: str = "batch",
    ) -> None:
        super().__init__()
        self.num_layers = num_layers
        for index in range(num_layers):
            block = AttentionBlock(model_dim, num_heads, rng, feedforward_dim=feedforward_dim, norm=norm)
            self.register_module(f"block_{index}", block)

    def forward(self, x: Tensor, bias: np.ndarray | None = None) -> Tensor:
        for index in range(self.num_layers):
            x = self._modules[f"block_{index}"](x, bias=bias)
        return x
