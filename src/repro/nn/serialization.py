"""Checkpoint save / load helpers for modules.

The pre-train / fine-tune paradigm in Section IV-C saves intermediate
scheduler models during pre-training on the simulator and later restores the
best of them before fine-tuning on the real DBMS.  These helpers implement
that checkpointing using ``numpy.savez``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .layers import Module

__all__ = ["save_module", "load_module", "Checkpoint"]


def save_module(module: Module, path: "str | Path", metadata: dict | None = None) -> Path:
    """Serialise ``module`` parameters (and optional metadata) to ``path``.

    The file is a ``.npz`` archive whose keys are qualified parameter names;
    metadata is stored as a JSON string under ``__metadata__``.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = dict(module.state_dict())
    arrays["__metadata__"] = np.frombuffer(
        json.dumps(metadata or {}).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **arrays)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_module(module: Module, path: "str | Path") -> dict:
    """Load parameters saved by :func:`save_module` into ``module``.

    Returns the metadata dictionary stored alongside the parameters.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        metadata_raw = archive["__metadata__"].tobytes().decode("utf-8")
        state = {key: archive[key] for key in archive.files if key != "__metadata__"}
    module.load_state_dict(state)
    return json.loads(metadata_raw)


class Checkpoint:
    """An in-memory checkpoint of a module, used to snapshot policies.

    The trainer keeps several of these during simulator pre-training and
    restores the one with the best validated makespan (Section IV-C).
    """

    def __init__(self, module: Module, score: float, tag: str = "") -> None:
        self.state = module.state_dict()
        self.score = float(score)
        self.tag = tag

    def restore(self, module: Module) -> None:
        """Copy the checkpointed parameters back into ``module``."""
        module.load_state_dict(self.state)

    def __repr__(self) -> str:
        return f"Checkpoint(tag={self.tag!r}, score={self.score:.4f})"
