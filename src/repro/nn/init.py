"""Weight initialisation helpers."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "xavier_normal", "orthogonal", "zeros", "normal"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a weight matrix."""
    fan_in, fan_out = shape[-2], shape[-1]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation for a weight matrix."""
    fan_in, fan_out = shape[-2], shape[-1]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation, commonly used for policy network layers."""
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))
    q = q[:rows, :cols] if rows >= cols else q.T[:rows, :cols]
    return gain * q


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zeros initialisation (biases)."""
    return np.zeros(shape, dtype=np.float64)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Small-variance normal initialisation (embeddings, super-query token)."""
    return rng.normal(0.0, std, size=shape)
