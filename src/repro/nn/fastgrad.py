"""Tape-free fused training kernels: stacked forward + analytic backward.

The training twin of :mod:`repro.nn.fastinfer`.  Where ``fastinfer`` removes
the autograd tape from *inference*, this module removes it from *training*:
each kernel runs the whole-minibatch stacked forward as a flat sequence of
fused NumPy ops, saves only the activations its hand-derived backward needs
(in preallocated :class:`Arena` buffers), and the matching ``*_backward``
accumulates analytic gradients directly into ``Parameter.grad`` — no
per-op closures, no tape walk, no per-primitive temporaries.

Every kernel replicates the tape's forward expression order (``sum * (1/n)``
means, shift-by-max softmax, centered-square variances), so forwards agree
with the define-by-run path to rounding and gradients match the tape at
``atol=1e-9`` in float64 (pinned in ``tests/test_fastgrad.py``, together
with central-difference gradchecks).

Layered like ``fastinfer``:

* layer kernels — linear+activation MLP blocks, layer/batch norm,
  fused-QKV multi-head attention, masked log-softmax;
* the encoder kernel — :func:`encode_state_batch` mirrors
  ``StateEncoder.encode_batch``;
* trainer steps — :func:`ppo_minibatch_step`, :func:`ppg_aux_step`,
  :func:`iq_ppo_aux_step` and :func:`perfmodel_example_step` fuse the loss
  forward + backward of one optimizer step;
* a ``why_slow``-style gate — :func:`fused_training_reason` /
  :func:`perfmodel_training_reason` return a human-readable reason when a
  module configuration is not covered, so callers can fall back audibly.

Gradient-ownership contract: gradients written into ``Parameter.grad`` are
always freshly-owned arrays (or disjoint views of one), never arena buffers,
because the arena recycles its buffers at :meth:`Arena.reset` while grads
must survive until the optimizer step (and are scaled in place by
``clip_grad_norm``).  Parameters that receive no gradient flow keep
``grad is None`` — exactly like the tape — so ``Adam`` skips them instead
of decaying their moments.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from . import fastinfer
from .attention import AttentionBlock, AttentionEncoder, MultiHeadAttention
from .layers import MLP, Activation, BatchNorm, LayerNorm, Linear, Parameter

__all__ = [
    "Arena",
    "mlp_forward",
    "mlp_backward",
    "layer_norm_forward",
    "layer_norm_backward",
    "batch_norm_forward",
    "batch_norm_backward",
    "mha_forward",
    "mha_backward",
    "attention_encoder_forward",
    "attention_encoder_backward",
    "masked_log_softmax_forward",
    "masked_log_softmax_backward",
    "encode_state_batch",
    "encode_state_batch_backward",
    "fused_training_reason",
    "supports_fused_training",
    "perfmodel_training_reason",
    "ppo_minibatch_step",
    "ppg_aux_step",
    "iq_ppo_aux_step",
    "perfmodel_example_step",
]


class Arena:
    """A recycling pool of preallocated float64 buffers for one training step.

    ``empty(shape)`` hands out a buffer (reusing a previously returned one of
    the same shape when available); ``reset()`` returns every outstanding
    buffer to the pool.  Callers reset once per optimizer step, after the
    gradients have been consumed — saved activations live in arena buffers,
    parameter gradients never do (see the module docstring contract).
    """

    def __init__(self) -> None:
        self._free: dict[tuple[tuple[int, ...], np.dtype], list[np.ndarray]] = {}
        self._used: list[tuple[tuple[tuple[int, ...], np.dtype], np.ndarray]] = []

    def empty(self, shape: Sequence[int], dtype: "np.dtype | type" = np.float64) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype))
        pool = self._free.get(key)
        buf = pool.pop() if pool else np.empty(key[0], dtype=key[1])
        self._used.append((key, buf))
        return buf

    def reset(self) -> None:
        for key, buf in self._used:
            self._free.setdefault(key, []).append(buf)
        self._used.clear()

    @property
    def num_buffers(self) -> int:
        return len(self._used) + sum(len(pool) for pool in self._free.values())


def _accum(param: Parameter, grad: np.ndarray) -> None:
    """Accumulate ``grad`` into ``param.grad`` (fresh-array semantics).

    ``grad`` must be freshly owned by the caller (a matmul/ufunc result or a
    disjoint view of one) — it is installed directly on first accumulation.
    """
    if param.grad is None:
        param.grad = grad
    else:
        param.grad += grad


# --------------------------------------------------------------------------- #
# MLP blocks (fused linear + activation)
# --------------------------------------------------------------------------- #

_SUPPORTED_ACTIVATIONS = ("tanh", "relu", "sigmoid", "identity")


def _mlp_blocks(mlp: MLP) -> "list[tuple[Linear, str | None]]":
    """Parse an MLP's Sequential into ``(linear, activation_name)`` blocks.

    The parse is cached on the MLP instance — layer structure is fixed after
    construction, and the cache holds the Linear modules themselves (not
    their arrays), so parameter updates never invalidate it.
    """
    cached = getattr(mlp, "_fastgrad_blocks", None)
    if cached is not None:
        return cached
    blocks: list[tuple[Linear, str | None]] = []
    for module in mlp.net:
        if isinstance(module, Linear):
            blocks.append((module, None))
        elif isinstance(module, Activation):
            if not blocks or blocks[-1][1] is not None:
                raise ValueError("activation without a preceding linear layer")
            linear, _ = blocks[-1]
            blocks[-1] = (linear, None if module.name == "identity" else module.name)
        else:
            raise ValueError(f"unsupported module inside MLP: {type(module).__name__}")
    mlp._fastgrad_blocks = blocks
    return blocks


def _linear_forward(linear: Linear, x: np.ndarray, arena: Arena) -> np.ndarray:
    out = arena.empty(x.shape[:-1] + (linear.weight.data.shape[1],))
    np.matmul(x, linear.weight.data, out=out)
    if linear.bias is not None:
        out += linear.bias.data
    return out


def mlp_forward(mlp: MLP, x: np.ndarray, arena: Arena) -> "tuple[np.ndarray, list]":
    """Stacked MLP forward; returns ``(output, ctx)`` for :func:`mlp_backward`.

    ``ctx`` saves, per block, the block input and the post-activation output —
    all the analytic backward needs (tanh/relu/sigmoid derivatives are
    expressible from the output alone).
    """
    ctx = []
    for linear, act in _mlp_blocks(mlp):
        pre = _linear_forward(linear, x, arena)
        if act == "tanh":
            y = np.tanh(pre, out=pre)
        elif act == "relu":
            y = np.multiply(pre, pre > 0, out=pre)
        elif act == "sigmoid":
            np.negative(pre, out=pre)
            np.exp(pre, out=pre)
            pre += 1.0
            y = np.reciprocal(pre, out=pre)
        else:
            y = pre
        ctx.append((x, y))
        x = y
    return x, ctx


def mlp_backward(
    mlp: MLP,
    ctx: list,
    g: np.ndarray,
    arena: Arena,
    need_input_grad: bool = True,
) -> "np.ndarray | None":
    """Analytic MLP backward; accumulates weight/bias grads, returns ``g_x``.

    Never mutates ``g`` (callers reuse it for residual branches).
    """
    blocks = _mlp_blocks(mlp)
    for index in range(len(blocks) - 1, -1, -1):
        linear, act = blocks[index]
        x, y = ctx[index]
        if act == "tanh":
            d = np.multiply(y, y, out=arena.empty(y.shape))
            np.subtract(1.0, d, out=d)
            g = np.multiply(g, d, out=d)
        elif act == "relu":
            g = np.multiply(g, y > 0, out=arena.empty(y.shape))
        elif act == "sigmoid":
            d = np.subtract(1.0, y, out=arena.empty(y.shape))
            d *= y
            g = np.multiply(g, d, out=d)
        if g.ndim > 2:
            gf = g.reshape(-1, g.shape[-1])
            xf = x.reshape(-1, x.shape[-1])
        else:
            gf, xf = g, x
        _accum(linear.weight, xf.T @ gf)
        if linear.bias is not None:
            _accum(linear.bias, gf.sum(axis=0))
        if index > 0 or need_input_grad:
            g = (gf @ linear.weight.data.T).reshape(x.shape)
    return g if need_input_grad else None


# --------------------------------------------------------------------------- #
# Normalisation layers
# --------------------------------------------------------------------------- #

def layer_norm_forward(norm: LayerNorm, x: np.ndarray, arena: Arena) -> "tuple[np.ndarray, tuple]":
    """LayerNorm over the last axis; tape-identical expression order."""
    inv_n = 1.0 / x.shape[-1]
    mu = x.sum(axis=-1, keepdims=True) * inv_n
    centered = x - mu
    var = (centered * centered).sum(axis=-1, keepdims=True) * inv_n
    denom = (var + norm.eps) ** 0.5
    x_hat = np.divide(centered, denom, out=centered)
    out = arena.empty(x.shape)
    np.multiply(x_hat, norm.gamma.data, out=out)
    out += norm.beta.data
    return out, (x_hat, 1.0 / denom, inv_n, -1, True)


def batch_norm_forward(norm: BatchNorm, x: np.ndarray, arena: Arena) -> "tuple[np.ndarray, tuple]":
    """BatchNorm (2-D axis-0 / 3-D per-element token axis-1), train or eval.

    Replicates the tape forward including the running-statistics side
    effects, so a fused training run drifts the running stats exactly like
    the tape path does.
    """
    axis = 1 if x.ndim == 3 else 0
    train = norm.training and x.shape[axis] > 1
    if train:
        inv_n = 1.0 / x.shape[axis]
        mu = x.sum(axis=axis, keepdims=True) * inv_n
        centered = x - mu
        var = (centered * centered).sum(axis=axis, keepdims=True) * inv_n
        if x.ndim == 3:
            batch_mean = mu.reshape(x.shape[0], -1).mean(axis=0)
            batch_var = var.reshape(x.shape[0], -1).mean(axis=0)
        else:
            batch_mean = mu.reshape(-1)
            batch_var = var.reshape(-1)
        norm.running_mean = (1 - norm.momentum) * norm.running_mean + norm.momentum * batch_mean
        norm.running_var = (1 - norm.momentum) * norm.running_var + norm.momentum * batch_var
        inv_count: "float | None" = inv_n
    else:
        shape = (1, 1, -1) if x.ndim == 3 else (1, -1)
        mu = norm.running_mean.reshape(shape)
        var = norm.running_var.reshape(shape)
        centered = x - mu
        inv_count = None
    denom = (var + norm.eps) ** 0.5
    x_hat = np.divide(centered, denom, out=centered)
    out = arena.empty(x.shape)
    np.multiply(x_hat, norm.gamma.data, out=out)
    out += norm.beta.data
    return out, (x_hat, 1.0 / denom, inv_count, axis, train)


def _norm_backward_common(
    norm: "LayerNorm | BatchNorm", ctx: tuple, g: np.ndarray
) -> np.ndarray:
    x_hat, inv_std, inv_count, axis, train = ctx
    reduce_axes = tuple(range(g.ndim - 1))
    _accum(norm.gamma, (g * x_hat).sum(axis=reduce_axes))
    _accum(norm.beta, g.sum(axis=reduce_axes))
    g_xhat = g * norm.gamma.data
    if not train:
        # Eval / single-row mode: mu and var are constants, the map is affine.
        return np.multiply(g_xhat, inv_std, out=g_xhat)
    mean_g = g_xhat.sum(axis=axis, keepdims=True) * inv_count
    mean_gx = (g_xhat * x_hat).sum(axis=axis, keepdims=True) * inv_count
    g_xhat -= mean_g
    g_xhat -= x_hat * mean_gx
    return np.multiply(g_xhat, inv_std, out=g_xhat)


def layer_norm_backward(norm: LayerNorm, ctx: tuple, g: np.ndarray) -> np.ndarray:
    return _norm_backward_common(norm, ctx, g)


def batch_norm_backward(norm: BatchNorm, ctx: tuple, g: np.ndarray) -> np.ndarray:
    return _norm_backward_common(norm, ctx, g)


def _norm_forward(norm: Any, x: np.ndarray, arena: Arena) -> "tuple[np.ndarray, tuple]":
    if isinstance(norm, LayerNorm):
        return layer_norm_forward(norm, x, arena)
    if isinstance(norm, BatchNorm):
        return batch_norm_forward(norm, x, arena)
    raise TypeError(f"unsupported norm {type(norm).__name__}")


def _norm_backward(norm: Any, ctx: tuple, g: np.ndarray) -> np.ndarray:
    return _norm_backward_common(norm, ctx, g)


# --------------------------------------------------------------------------- #
# Multi-head attention (fused QKV)
# --------------------------------------------------------------------------- #

def mha_forward(
    attention: MultiHeadAttention,
    x: np.ndarray,
    arena: Arena,
    bias: "np.ndarray | None" = None,
) -> "tuple[np.ndarray, tuple]":
    """Batched ``(B, tokens, D)`` self-attention with one fused QKV GEMM."""
    batch, tokens, model_dim = x.shape
    heads, head_dim = attention.num_heads, attention.head_dim
    qkv_weight, qkv_bias = fastinfer._fused_qkv(attention)
    x2 = x.reshape(batch * tokens, model_dim)
    # Strided (not flattened) float64 GEMM, matching the tape's `x @ W`
    # dispatch exactly; fastinfer keeps the same form for bit-parity.
    qkv = arena.empty((batch, tokens, 3 * model_dim))
    np.matmul(x, qkv_weight, out=qkv)
    qkv += qkv_bias
    qkv5 = qkv.reshape(batch, tokens, 3, heads, head_dim)
    queries = qkv5[:, :, 0].transpose(0, 2, 1, 3)
    keys = qkv5[:, :, 1].transpose(0, 2, 1, 3)
    values = qkv5[:, :, 2].transpose(0, 2, 1, 3)
    scale = 1.0 / np.sqrt(head_dim)
    scores = (queries @ keys.transpose(0, 1, 3, 2)) * scale
    if bias is not None:
        scores = scores + np.asarray(bias, dtype=np.float64)[None, None, :, :]
    shifted = scores - scores.max(axis=-1, keepdims=True)
    weights = np.exp(shifted, out=shifted)
    weights /= weights.sum(axis=-1, keepdims=True)
    mixed = (weights @ values).transpose(0, 2, 1, 3).reshape(batch, tokens, model_dim)
    out = arena.empty(x.shape)
    np.matmul(mixed, attention.out_proj.weight.data, out=out)
    out += attention.out_proj.bias.data
    return out, (x2, queries, keys, values, weights, mixed, scale)


def mha_backward(
    attention: MultiHeadAttention, ctx: tuple, g: np.ndarray, arena: Arena
) -> np.ndarray:
    x2, queries, keys, values, weights, mixed, scale = ctx
    batch, tokens, model_dim = g.shape
    heads, head_dim = attention.num_heads, attention.head_dim
    g2 = g.reshape(batch * tokens, model_dim)
    mixed2 = mixed.reshape(batch * tokens, model_dim)
    _accum(attention.out_proj.weight, mixed2.T @ g2)
    _accum(attention.out_proj.bias, g2.sum(axis=0))
    g_mixed = (g2 @ attention.out_proj.weight.data.T).reshape(
        batch, tokens, heads, head_dim
    ).transpose(0, 2, 1, 3)
    g_weights = g_mixed @ values.swapaxes(-1, -2)
    g_values = weights.swapaxes(-1, -2) @ g_mixed
    # Softmax backward: P * (g - <g, P>); the additive bias (if any) is a
    # constant, so g_scores flows straight through to the QKV projections.
    g_scores = weights * (g_weights - (g_weights * weights).sum(axis=-1, keepdims=True))
    g_scores *= scale
    g_queries = g_scores @ keys
    g_keys = g_scores.swapaxes(-1, -2) @ queries
    g_qkv = arena.empty((batch, tokens, 3, heads, head_dim))
    g_qkv[:, :, 0] = g_queries.transpose(0, 2, 1, 3)
    g_qkv[:, :, 1] = g_keys.transpose(0, 2, 1, 3)
    g_qkv[:, :, 2] = g_values.transpose(0, 2, 1, 3)
    gf = g_qkv.reshape(batch * tokens, 3 * model_dim)
    g_weight = x2.T @ gf
    g_bias = gf.sum(axis=0)
    projections = (attention.query_proj, attention.key_proj, attention.value_proj)
    for index, proj in enumerate(projections):
        sl = slice(index * model_dim, (index + 1) * model_dim)
        _accum(proj.weight, g_weight[:, sl])
        _accum(proj.bias, g_bias[sl])
    qkv_weight, _ = fastinfer._fused_qkv(attention)
    return (gf @ qkv_weight.T).reshape(batch, tokens, model_dim)


# --------------------------------------------------------------------------- #
# Attention encoder (block = MHA + FF, residual + norm)
# --------------------------------------------------------------------------- #

def _attention_block_forward(
    block: AttentionBlock, x: np.ndarray, arena: Arena, bias: "np.ndarray | None" = None
) -> "tuple[np.ndarray, tuple]":
    att_out, mha_ctx = mha_forward(block.attention, x, arena, bias=bias)
    pre1 = x + att_out
    normed1, n1_ctx = _norm_forward(block.norm1, pre1, arena)
    ff_out, ff_ctx = mlp_forward(block.feedforward, normed1, arena)
    pre2 = normed1 + ff_out
    out, n2_ctx = _norm_forward(block.norm2, pre2, arena)
    return out, (mha_ctx, n1_ctx, ff_ctx, n2_ctx)


def _attention_block_backward(
    block: AttentionBlock, ctx: tuple, g: np.ndarray, arena: Arena
) -> np.ndarray:
    mha_ctx, n1_ctx, ff_ctx, n2_ctx = ctx
    g_pre2 = _norm_backward(block.norm2, n2_ctx, g)
    g_normed1 = g_pre2 + mlp_backward(block.feedforward, ff_ctx, g_pre2, arena)
    g_pre1 = _norm_backward(block.norm1, n1_ctx, g_normed1)
    return g_pre1 + mha_backward(block.attention, mha_ctx, g_pre1, arena)


def attention_encoder_forward(
    encoder: AttentionEncoder, x: np.ndarray, arena: Arena, bias: "np.ndarray | None" = None
) -> "tuple[np.ndarray, list]":
    ctx = []
    for index in range(encoder.num_layers):
        block = encoder._modules[f"block_{index}"]
        x, block_ctx = _attention_block_forward(block, x, arena, bias=bias)
        ctx.append(block_ctx)
    return x, ctx


def attention_encoder_backward(
    encoder: AttentionEncoder, ctx: list, g: np.ndarray, arena: Arena
) -> np.ndarray:
    for index in range(encoder.num_layers - 1, -1, -1):
        block = encoder._modules[f"block_{index}"]
        g = _attention_block_backward(block, ctx[index], g, arena)
    return g


# --------------------------------------------------------------------------- #
# Masked log-softmax
# --------------------------------------------------------------------------- #

def masked_log_softmax_forward(
    logits: np.ndarray, mask: np.ndarray, mask_value: float = -1e8
) -> "tuple[np.ndarray, np.ndarray]":
    """Returns ``(log_probs, softmax)``; ``softmax`` is the backward ctx."""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != logits.shape:
        raise ValueError(f"mask shape {mask.shape} != logits shape {logits.shape}")
    if not np.all(mask.any(axis=-1)):
        raise ValueError("masked_log_softmax requires at least one unmasked entry")
    offset = np.where(mask, 0.0, mask_value)
    data = logits + offset
    shifted = data - data.max(axis=-1, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_sum
    return log_probs, np.exp(log_probs)


def masked_log_softmax_backward(softmax: np.ndarray, g: np.ndarray) -> np.ndarray:
    """The mask offset is additive, so the gradient w.r.t. logits is direct."""
    return g - softmax * g.sum(axis=-1, keepdims=True)


def log_softmax_forward(logits: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Plain log-softmax over the last axis; returns ``(log_probs, softmax)``."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_sum
    return log_probs, np.exp(log_probs)


# --------------------------------------------------------------------------- #
# State-encoder kernel (mirrors StateEncoder.encode_batch)
# --------------------------------------------------------------------------- #

def encode_state_batch(
    encoder: Any,
    plan_embeddings: np.ndarray,
    snapshots: list,
    arena: Arena,
    need_global: bool = True,
) -> "tuple[np.ndarray, np.ndarray | None, tuple]":
    """Fused twin of ``StateEncoder.encode_batch``.

    Returns ``(per_query, global_state, ctx)``.  When ``need_global`` is
    False the global MLP forward is skipped entirely (its output receives no
    gradient in the PPG/IQ-PPO aux phases and the MLP is stateless, so
    skipping it is unobservable).
    """
    inputs, run_features, pooled_all, pooled_running = encoder._batch_inputs(
        plan_embeddings, snapshots
    )
    batch, num_queries = run_features.shape[0], run_features.shape[1]
    state_dim = encoder.super_query.data.shape[1]
    tokens, qm_ctx = mlp_forward(encoder.query_mlp, inputs, arena)
    sequence = arena.empty((batch, num_queries + 1, state_dim))
    sequence[:, :num_queries] = tokens
    sequence[:, num_queries] = encoder.super_query.data.reshape(1, -1)
    if encoder.use_attention:
        encoded, att_ctx = attention_encoder_forward(encoder.attention, sequence, arena)
    else:
        encoded, att_ctx = sequence, None
    encoded_queries = encoded[:, :num_queries]
    encoded_super = encoded[:, num_queries]
    if need_global:
        global_in = np.concatenate([encoded_super, pooled_all], axis=1)
        global_state, gm_ctx = mlp_forward(encoder.global_mlp, global_in, arena)
    else:
        global_state, gm_ctx = None, None
    pooled_dim = pooled_running.shape[1]
    pq_in = arena.empty((batch, num_queries, 2 * state_dim + pooled_dim))
    pq_in[:, :, :state_dim] = encoded_queries
    pq_in[:, :, state_dim : 2 * state_dim] = encoded_super[:, None, :]
    pq_in[:, :, 2 * state_dim :] = pooled_running[:, None, :]
    per_query, qo_ctx = mlp_forward(encoder.query_out_mlp, pq_in, arena)
    ctx = (qm_ctx, att_ctx, gm_ctx, qo_ctx, batch, num_queries, state_dim)
    return per_query, global_state, ctx


def encode_state_batch_backward(
    encoder: Any,
    ctx: tuple,
    g_per_query: np.ndarray,
    g_global: "np.ndarray | None",
    arena: Arena,
) -> None:
    qm_ctx, att_ctx, gm_ctx, qo_ctx, batch, num_queries, state_dim = ctx
    g_pq_in = mlp_backward(encoder.query_out_mlp, qo_ctx, g_per_query, arena)
    g_encoded = arena.empty((batch, num_queries + 1, state_dim))
    g_encoded[:, :num_queries] = g_pq_in[:, :, :state_dim]
    g_super = g_pq_in[:, :, state_dim : 2 * state_dim].sum(axis=1)
    if g_global is not None:
        g_global_in = mlp_backward(encoder.global_mlp, gm_ctx, g_global, arena)
        g_super = g_super + g_global_in[:, :state_dim]
    g_encoded[:, num_queries] = g_super
    if att_ctx is not None:
        g_sequence = attention_encoder_backward(encoder.attention, att_ctx, g_encoded, arena)
    else:
        g_sequence = g_encoded
    _accum(encoder.super_query, g_sequence[:, num_queries].sum(axis=0).reshape(1, -1))
    mlp_backward(
        encoder.query_mlp, qm_ctx, g_sequence[:, :num_queries], arena, need_input_grad=False
    )


# --------------------------------------------------------------------------- #
# Support gates (the why_slow of training)
# --------------------------------------------------------------------------- #

def _mlp_reason(mlp: Any, name: str) -> "str | None":
    if not isinstance(mlp, MLP):
        return f"{name} is {type(mlp).__name__}, not MLP"
    try:
        blocks = _mlp_blocks(mlp)
    except ValueError as exc:
        return f"{name}: {exc}"
    for _, act in blocks:
        if act is not None and act not in ("tanh", "relu", "sigmoid"):
            return f"{name} uses unsupported activation {act!r}"
    for linear, _ in blocks:
        if linear.bias is None:
            return f"{name} has a bias-free linear layer"
    return None


def _encoder_reason(encoder: Any) -> "str | None":
    if not isinstance(encoder, AttentionEncoder):
        return f"attention encoder is {type(encoder).__name__}"
    for index in range(encoder.num_layers):
        block = encoder._modules.get(f"block_{index}")
        if not isinstance(block, AttentionBlock):
            return f"block_{index} is {type(block).__name__}"
        if not isinstance(block.norm1, (LayerNorm, BatchNorm)) or not isinstance(
            block.norm2, (LayerNorm, BatchNorm)
        ):
            return f"block_{index} uses an unsupported norm"
        reason = _mlp_reason(block.feedforward, f"block_{index}.feedforward")
        if reason:
            return reason
        for proj_name in ("query_proj", "key_proj", "value_proj", "out_proj"):
            proj = getattr(block.attention, proj_name)
            if proj.bias is None:
                return f"block_{index}.attention.{proj_name} has no bias"
    return None


def fused_training_reason(policy: Any, clusters: Any = None) -> "str | None":
    """Why the fused training path cannot run for this policy (None = it can).

    The training counterpart of ``fastinfer.fast_inference_reason``: callers
    treat a non-None reason as "fall back to the tape, audibly".
    """
    if clusters is not None:
        return "cluster-level action pooling is not covered by the fused path"
    encoder = policy.state_encoder
    if getattr(encoder, "use_attention", True):
        reason = _encoder_reason(encoder.attention)
        if reason:
            return reason
    for name in ("query_mlp", "global_mlp", "query_out_mlp"):
        reason = _mlp_reason(getattr(encoder, name), name)
        if reason:
            return reason
    for name in ("policy_head", "value_head", "aux_head"):
        reason = _mlp_reason(getattr(policy, name), name)
        if reason:
            return reason
    return None


def supports_fused_training(policy: Any, clusters: Any = None) -> bool:
    return fused_training_reason(policy, clusters=clusters) is None


def perfmodel_training_reason(model: Any) -> "str | None":
    """Why fused fitting cannot run for a ``ConcurrentPredictionModel``."""
    if model.input_proj.bias is None:
        return "input_proj has no bias"
    if getattr(model, "use_attention", False):
        reason = _encoder_reason(model.encoder)
        if reason:
            return reason
    for name in ("classifier", "regressor"):
        reason = _mlp_reason(getattr(model, name), name)
        if reason:
            return reason
    return None


# --------------------------------------------------------------------------- #
# Trainer-level fused steps
# --------------------------------------------------------------------------- #

def ppo_minibatch_step(
    policy: Any,
    plan_embeddings: np.ndarray,
    snapshots: list,
    actions: np.ndarray,
    masks: np.ndarray,
    old_log_probs: np.ndarray,
    advantages: np.ndarray,
    value_targets: np.ndarray,
    clip_epsilon: float,
    value_coef: float,
    entropy_coef: float,
    arena: Arena,
) -> "tuple[float, float]":
    """One fused PPO minibatch forward + backward.

    Accumulates gradients into the policy parameters (the caller zeroes
    grads before and clips/steps after) and returns
    ``(policy_loss, value_loss)`` as floats.  The aux head receives no
    gradient, matching the tape (its ``grad`` stays ``None``).
    """
    batch = len(snapshots)
    rows = np.arange(batch)
    actions = np.asarray(actions, dtype=np.int64)
    encoder = policy.state_encoder
    per_query, global_state, enc_ctx = encode_state_batch(
        encoder, plan_embeddings, snapshots, arena, need_global=True
    )
    num_queries = per_query.shape[1]
    logits3, ph_ctx = mlp_forward(policy.policy_head, per_query, arena)
    logits = logits3.reshape(batch, num_queries * policy.num_configs)
    log_probs, softmax = masked_log_softmax_forward(logits, masks)
    taken = log_probs[rows, actions]
    probs = softmax
    values3, vh_ctx = mlp_forward(policy.value_head, global_state, arena)
    values = values3.reshape(batch)

    ratio = np.exp(taken - old_log_probs)
    surrogate1 = ratio * advantages
    clipped_ratio = np.clip(ratio, 1.0 - clip_epsilon, 1.0 + clip_epsilon)
    surrogate2 = clipped_ratio * advantages
    choose1 = surrogate1 <= surrogate2
    clipped = np.where(choose1, surrogate1, surrogate2)
    policy_loss = -float(clipped.mean())
    value_error = values - value_targets
    value_loss = 0.5 * float((value_error * value_error).mean())

    inv_b = 1.0 / batch
    # d/d ratio of the clipped surrogate: through surrogate1 where it is the
    # min, through surrogate2 only where the clip is inactive.
    in_range = (ratio >= 1.0 - clip_epsilon) & (ratio <= 1.0 + clip_epsilon)
    g_ratio = np.where(choose1, advantages, advantages * in_range) * (-inv_b)
    g_taken = g_ratio * ratio
    # Entropy bonus: d/d log_probs of -c_e * mean(-(p * lp).sum()) with
    # p = exp(lp) gives +c_e/B * p * (lp + 1).
    g_log_probs = (entropy_coef * inv_b) * (probs * (log_probs + 1.0))
    g_log_probs[rows, actions] += g_taken
    g_logits = masked_log_softmax_backward(softmax, g_log_probs)
    g_per_query = mlp_backward(
        policy.policy_head, ph_ctx, g_logits.reshape(batch, num_queries, policy.num_configs), arena
    )
    g_values = (value_coef * inv_b) * value_error
    g_global = mlp_backward(policy.value_head, vh_ctx, g_values.reshape(batch, 1), arena)
    encode_state_batch_backward(encoder, enc_ctx, g_per_query, g_global, arena)
    return policy_loss, value_loss


def _clone_backward_setup(
    old_log_probs: np.ndarray, beta_clone: float, batch: int
) -> np.ndarray:
    """d/d new_log_probs of ``beta * mean((p_old * (old - new)).sum(-1))``."""
    return (-beta_clone / batch) * np.exp(old_log_probs)


def ppg_aux_step(
    policy: Any,
    plan_embeddings: np.ndarray,
    snapshots: list,
    masks: np.ndarray,
    old_log_probs: np.ndarray,
    value_targets: np.ndarray,
    beta_clone: float,
    arena: Arena,
) -> float:
    """One fused PPG auxiliary epoch step (aux value distillation + clone).

    Value head and global MLP receive no gradient (their grads stay None),
    matching the tape where the aux loss never touches the value path.
    """
    batch = len(snapshots)
    encoder = policy.state_encoder
    per_query, _, enc_ctx = encode_state_batch(
        encoder, plan_embeddings, snapshots, arena, need_global=False
    )
    num_queries = per_query.shape[1]
    predicted3, ah_ctx = mlp_forward(policy.aux_head, per_query, arena)
    predicted = predicted3.reshape(batch, num_queries)
    inv_n = 1.0 / num_queries
    value_predictions = predicted.sum(axis=-1) * inv_n
    logits3, ph_ctx = mlp_forward(policy.policy_head, per_query, arena)
    logits = logits3.reshape(batch, num_queries * policy.num_configs)
    new_log_probs, softmax = masked_log_softmax_forward(logits, masks)

    aux_error = value_predictions - value_targets
    aux_loss = 0.5 * float((aux_error * aux_error).mean())
    p_old = np.exp(old_log_probs)
    clone = float((p_old * (old_log_probs - new_log_probs)).sum(axis=-1).mean())
    total = aux_loss + beta_clone * clone

    inv_b = 1.0 / batch
    g_vp = aux_error * inv_b
    g_predicted = np.broadcast_to((g_vp * inv_n)[:, None, None], (batch, num_queries, 1))
    g_per_query = mlp_backward(policy.aux_head, ah_ctx, g_predicted, arena)
    g_new_log_probs = _clone_backward_setup(old_log_probs, beta_clone, batch)
    g_logits = masked_log_softmax_backward(softmax, g_new_log_probs)
    g_per_query += mlp_backward(
        policy.policy_head, ph_ctx, g_logits.reshape(batch, num_queries, policy.num_configs), arena
    )
    encode_state_batch_backward(encoder, enc_ctx, g_per_query, None, arena)
    return total


def iq_ppo_aux_step(
    policy: Any,
    plan_embeddings: np.ndarray,
    snapshots: list,
    query_ids: np.ndarray,
    masks: np.ndarray,
    old_log_probs: np.ndarray,
    time_targets: np.ndarray,
    beta_clone: float,
    arena: Arena,
) -> float:
    """One fused IQ-PPO auxiliary step (finish-time regression + clone)."""
    batch = len(snapshots)
    rows = np.arange(batch)
    query_ids = np.asarray(query_ids, dtype=np.int64)
    encoder = policy.state_encoder
    per_query, _, enc_ctx = encode_state_batch(
        encoder, plan_embeddings, snapshots, arena, need_global=False
    )
    num_queries = per_query.shape[1]
    times3, ah_ctx = mlp_forward(policy.aux_head, per_query, arena)
    times = times3.reshape(batch, num_queries)
    picked = times[rows, query_ids]
    logits3, ph_ctx = mlp_forward(policy.policy_head, per_query, arena)
    logits = logits3.reshape(batch, num_queries * policy.num_configs)
    new_log_probs, softmax = masked_log_softmax_forward(logits, masks)

    aux_error = picked - time_targets
    aux_loss = 0.5 * float((aux_error * aux_error).mean())
    p_old = np.exp(old_log_probs)
    clone = float((p_old * (old_log_probs - new_log_probs)).sum(axis=-1).mean())
    total = aux_loss + beta_clone * clone

    inv_b = 1.0 / batch
    g_times = np.zeros((batch, num_queries))
    g_times[rows, query_ids] = aux_error * inv_b
    g_per_query = mlp_backward(
        policy.aux_head, ah_ctx, g_times.reshape(batch, num_queries, 1), arena
    )
    g_new_log_probs = _clone_backward_setup(old_log_probs, beta_clone, batch)
    g_logits = masked_log_softmax_backward(softmax, g_new_log_probs)
    g_per_query += mlp_backward(
        policy.policy_head, ph_ctx, g_logits.reshape(batch, num_queries, policy.num_configs), arena
    )
    encode_state_batch_backward(encoder, enc_ctx, g_per_query, None, arena)
    return total


def perfmodel_example_step(
    model: Any,
    features: np.ndarray,
    earliest_index: int,
    regression_target: "float | None",
    gamma_regression: float,
    arena: Arena,
) -> float:
    """One fused training example for ``ConcurrentPredictionModel``.

    Cross-entropy over the earliest-finish classification plus (optionally)
    the remaining-time regression on the labelled query.  Accumulates
    gradients into the model parameters and returns the total loss.
    """
    features = np.asarray(features, dtype=np.float64)
    num_tokens = features.shape[0]
    pre = _linear_forward(model.input_proj, features, arena)
    tokens0 = np.tanh(pre)
    if model.use_attention:
        # Canonicalize the (k, hidden) token matrix to a batch of one so the
        # shared 3-D attention kernels apply; values match the 2-D tape path.
        encoded3, enc_ctx = attention_encoder_forward(model.encoder, tokens0[None], arena)
        tokens = encoded3[0]
    else:
        tokens, enc_ctx = tokens0, None
    logits3, cls_ctx = mlp_forward(model.classifier, tokens, arena)
    logits = logits3.reshape(num_tokens)
    log_probs, softmax = log_softmax_forward(logits)
    loss = -float(log_probs[earliest_index])

    g_logits = softmax.copy()
    g_logits[earliest_index] -= 1.0
    g_tokens = mlp_backward(model.classifier, cls_ctx, g_logits.reshape(num_tokens, 1), arena)
    if regression_target is not None:
        times3, reg_ctx = mlp_forward(model.regressor, tokens, arena)
        times = times3.reshape(num_tokens)
        residual = times[earliest_index] - regression_target
        loss += gamma_regression * float(residual * residual)
        g_times = np.zeros(num_tokens)
        g_times[earliest_index] = gamma_regression * 2.0 * residual
        g_tokens += mlp_backward(model.regressor, reg_ctx, g_times.reshape(num_tokens, 1), arena)
    if enc_ctx is not None:
        g_tokens = attention_encoder_backward(model.encoder, enc_ctx, g_tokens[None], arena)[0]
    g_pre = g_tokens * (1.0 - tokens0 * tokens0)
    _accum(model.input_proj.weight, features.T @ g_pre)
    _accum(model.input_proj.bias, g_pre.sum(axis=0))
    return loss
