"""Tape-free NumPy inference for small modules (the rollout hot path).

Building even a ``no_grad`` forward through :mod:`repro.nn.tensor` allocates
one :class:`Tensor` per operation, and for the tiny inputs of the rollout hot
path (a handful of concurrent queries) that Python overhead dwarfs the
arithmetic.  These helpers evaluate the same modules with raw NumPy, reading
parameter arrays directly, and are written to be bit-identical to the tensor
forward: same operation order, same shift-by-max softmax, same ``x * (x > 0)``
ReLU.

BatchNorm is supported too: its forward mutates running statistics, so
:func:`batch_norm_forward` replicates that side effect with the exact same
update expressions as the tensor path — skipping it would silently change
training behaviour.
"""

from __future__ import annotations

import numpy as np

from .attention import AttentionBlock, AttentionEncoder, MultiHeadAttention
from .layers import MLP, Activation, BatchNorm, LayerNorm, Linear

__all__ = [
    "linear_forward",
    "mlp_forward",
    "layer_norm_forward",
    "batch_norm_forward",
    "attention_forward",
    "attention_forward_batched",
    "attention_encoder_forward",
    "attention_encoder_forward_batched",
    "masked_log_softmax_array",
    "fast_inference_reason",
    "supports_fast_inference",
]


_F32_CACHE: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def _float32(array: np.ndarray) -> np.ndarray:
    """Cached ``float32`` copy of a parameter array.

    Keyed by the array's identity and holding a reference to it, so an
    optimizer step (which installs fresh arrays) can never alias a stale
    entry; the cache is rebuilt lazily after each update.
    """
    entry = _F32_CACHE.get(id(array))
    if entry is not None and entry[0] is array:
        return entry[1]
    copy = array.astype(np.float32)
    if len(_F32_CACHE) > 4096:
        _F32_CACHE.clear()
    _F32_CACHE[id(array)] = (array, copy)
    return copy


def _param(array: np.ndarray, like: np.ndarray) -> np.ndarray:
    """Parameter array in the working dtype of ``like`` (float32 fast path)."""
    return _float32(array) if like.dtype == np.float32 else array


def linear_forward(layer: Linear, x: np.ndarray) -> np.ndarray:
    """``y = x W + b`` without tape bookkeeping (dtype follows ``x``).

    Batched ``(batch, tokens, dim)`` inputs in the float32 *sampling* path
    are flattened to one ``(batch*tokens, dim)`` GEMM: NumPy would otherwise
    loop ``batch`` tiny BLAS calls, and for rollout-sized tensors the
    per-call overhead dwarfs the arithmetic.  The float64 path keeps the
    strided form untouched — BLAS may pick a different kernel for the merged
    shape, and the simulator's ``predict_batched`` promises bit-identical
    rows to the sequential forward.  Sampling only promises tolerance-level
    agreement with the scalar tensor path, so the relayout is safe there.
    """
    weight = _param(layer.weight.data, x)
    if x.ndim == 3 and x.dtype == np.float32:
        batch, tokens, dim = x.shape
        out = (x.reshape(batch * tokens, dim) @ weight).reshape(batch, tokens, weight.shape[1])
    else:
        out = x @ weight
    if layer.bias is not None:
        out += _param(layer.bias.data, x)
    return out


_ACTIVATIONS = {
    "tanh": np.tanh,
    "relu": lambda x: x * (x > 0),
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "identity": lambda x: x,
}


def mlp_forward(mlp: MLP, x: np.ndarray) -> np.ndarray:
    """Evaluate an :class:`MLP` (Linear/Activation stack) with raw NumPy."""
    for module in mlp.net:
        if isinstance(module, Linear):
            x = linear_forward(module, x)
        elif isinstance(module, Activation):
            x = _ACTIVATIONS[module.name](x)
        else:  # pragma: no cover - MLP only builds the two kinds above
            raise TypeError(f"unsupported module in MLP fast path: {type(module).__name__}")
    return x


def layer_norm_forward(norm: LayerNorm, x: np.ndarray) -> np.ndarray:
    """Layer normalisation over the last axis, matching the tensor forward.

    ``Tensor.mean`` evaluates ``sum * (1/n)``, so the same expression is used
    here (rather than ``np.mean``) to stay bit-identical.
    """
    inv_count = 1.0 / x.shape[-1]
    mu = x.sum(axis=-1, keepdims=True) * inv_count
    centered = x - mu
    var = (centered * centered).sum(axis=-1, keepdims=True) * inv_count
    normed = centered / ((var + norm.eps) ** 0.5)
    np.multiply(normed, _param(norm.gamma.data, x), out=normed)
    normed += _param(norm.beta.data, x)
    return normed


def batch_norm_forward(norm: BatchNorm, x: np.ndarray) -> np.ndarray:
    """BatchNorm forward, replicating the tensor path *including* the
    running-statistics update (``Tensor.mean`` = ``sum * (1/n)``).

    Running statistics are always accumulated in float64, even when the
    working dtype is float32 (the vectorized sampling path).
    """
    centered = None
    if x.ndim == 3:
        if norm.training and x.shape[1] > 1:
            inv_count = 1.0 / x.shape[1]
            mu = x.sum(axis=1, keepdims=True) * inv_count
            centered = x - mu
            var = (centered * centered).sum(axis=1, keepdims=True) * inv_count
            batch_mean = mu.reshape(x.shape[0], -1).mean(axis=0, dtype=np.float64)
            batch_var = var.reshape(x.shape[0], -1).mean(axis=0, dtype=np.float64)
            norm.running_mean = (1 - norm.momentum) * norm.running_mean + norm.momentum * batch_mean
            norm.running_var = (1 - norm.momentum) * norm.running_var + norm.momentum * batch_var
        else:
            mu = _param(norm.running_mean, x).reshape(1, 1, -1)
            var = _param(norm.running_var, x).reshape(1, 1, -1)
    else:
        if norm.training and x.shape[0] > 1:
            inv_count = 1.0 / x.shape[0]
            mu = x.sum(axis=0, keepdims=True) * inv_count
            centered = x - mu
            var = (centered * centered).sum(axis=0, keepdims=True) * inv_count
            norm.running_mean = (1 - norm.momentum) * norm.running_mean + norm.momentum * mu.reshape(-1).astype(np.float64)
            norm.running_var = (1 - norm.momentum) * norm.running_var + norm.momentum * var.reshape(-1).astype(np.float64)
        else:
            mu = _param(norm.running_mean, x).reshape(1, -1)
            var = _param(norm.running_var, x).reshape(1, -1)
    if x.dtype == np.float32:
        # Sampling path: fold 1/denom and gamma into one per-feature scale so
        # the big tensor sees two passes (multiply, add) instead of four.  The
        # reassociation is float32-rounding-level different from the tensor
        # forward, which the sampling path tolerates; float64 callers (the
        # simulator's bit-parity path) keep the exact op order below.
        scale = _param(norm.gamma.data, x) / ((var + norm.eps) ** 0.5)
        if centered is not None:
            normed = centered * scale
            normed += _param(norm.beta.data, x)
        else:
            normed = x * scale
            normed += _param(norm.beta.data, x) - mu * scale
        return normed
    # ``centered`` already holds x - mu in the training branches; reusing it
    # (and applying the affine in place on the fresh quotient) skips two
    # full-tensor temporaries without changing a single arithmetic op.
    normed = (centered if centered is not None else x - mu) / ((var + norm.eps) ** 0.5)
    np.multiply(normed, _param(norm.gamma.data, x), out=normed)
    normed += _param(norm.beta.data, x)
    return normed


def _norm_forward(norm, x: np.ndarray) -> np.ndarray:
    if isinstance(norm, LayerNorm):
        return layer_norm_forward(norm, x)
    if isinstance(norm, BatchNorm):
        return batch_norm_forward(norm, x)
    raise TypeError(f"unsupported norm in fast path: {type(norm).__name__}")


def attention_forward(attention: MultiHeadAttention, x: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Multi-head self-attention over one ``(tokens, model_dim)`` sequence."""
    tokens = x.shape[0]
    heads, head_dim = attention.num_heads, attention.head_dim
    qkv_weight, qkv_bias = _fused_qkv(attention)
    qkv = (x @ _param(qkv_weight, x) + _param(qkv_bias, x)).reshape(tokens, 3, heads, head_dim)
    queries = qkv[:, 0].transpose(1, 0, 2)
    keys = qkv[:, 1].transpose(1, 0, 2)
    values = qkv[:, 2].transpose(1, 0, 2)
    scores = (queries @ keys.transpose(0, 2, 1)) * (1.0 / float(np.sqrt(head_dim)))
    if bias is not None:
        scores = scores + np.asarray(bias, dtype=np.float64)[None, :, :]
    shifted = scores - scores.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    weights = exp / exp.sum(axis=-1, keepdims=True)
    mixed = (weights @ values).transpose(1, 0, 2).reshape(tokens, attention.model_dim)
    return linear_forward(attention.out_proj, mixed)


def _fused_qkv(attention: MultiHeadAttention) -> tuple[np.ndarray, np.ndarray]:
    """Concatenated ``(model_dim, 3*model_dim)`` Q/K/V projection.

    Cached on the module keyed by the identity of the source arrays; the
    cache holds references to them, so after an optimizer step (which
    installs fresh arrays) the ids cannot be reused and the fusion rebuilds.
    """
    projections = (attention.query_proj, attention.key_proj, attention.value_proj)
    sources = tuple(p.weight.data for p in projections) + tuple(p.bias.data for p in projections)
    key = tuple(id(array) for array in sources)
    cached = getattr(attention, "_fastinfer_qkv", None)
    if cached is not None and cached[0] == key:
        return cached[1], cached[2]
    weight = np.concatenate([p.weight.data for p in projections], axis=1)
    bias = np.concatenate([p.bias.data for p in projections], axis=0)
    attention._fastinfer_qkv = (key, weight, bias, sources)
    return weight, bias


def attention_forward_batched(
    attention: MultiHeadAttention, x: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Multi-head self-attention over ``(batch, tokens, model_dim)`` stacks."""
    batch, tokens = x.shape[0], x.shape[1]
    heads, head_dim = attention.num_heads, attention.head_dim
    qkv_weight, qkv_bias = _fused_qkv(attention)
    if x.dtype == np.float32:
        # Same flatten-to-one-GEMM trick as linear_forward (float32 only).
        qkv = x.reshape(batch * tokens, x.shape[2]) @ _param(qkv_weight, x)
        qkv += _param(qkv_bias, x)
        qkv = qkv.reshape(batch, tokens, 3, heads, head_dim)
    else:
        qkv = (x @ _param(qkv_weight, x) + _param(qkv_bias, x)).reshape(batch, tokens, 3, heads, head_dim)
    queries = qkv[:, :, 0].transpose(0, 2, 1, 3)
    keys = qkv[:, :, 1].transpose(0, 2, 1, 3)
    values = qkv[:, :, 2].transpose(0, 2, 1, 3)
    scores = (queries @ keys.transpose(0, 1, 3, 2)) * (1.0 / float(np.sqrt(head_dim)))
    if bias is not None:
        scores = scores + np.asarray(bias, dtype=x.dtype)[None, None, :, :]
    # Softmax reductions over a 2-D view of the same contiguous rows: the
    # last-axis max/sum see identical element sequences, so results match the
    # 4-D form bit for bit while skipping the high-rank reduce overhead.
    flat = scores.reshape(batch * heads * tokens, tokens)
    flat -= flat.max(axis=-1, keepdims=True)
    np.exp(flat, out=flat)
    flat /= flat.sum(axis=-1, keepdims=True)
    mixed = (scores @ values).transpose(0, 2, 1, 3).reshape(batch, tokens, attention.model_dim)
    return linear_forward(attention.out_proj, mixed)


def _block_forward(block: AttentionBlock, x: np.ndarray, bias: np.ndarray | None) -> np.ndarray:
    mha = attention_forward_batched if x.ndim == 3 else attention_forward
    attended = _norm_forward(block.norm1, x + mha(block.attention, x, bias))
    return _norm_forward(block.norm2, attended + mlp_forward(block.feedforward, attended))


def attention_encoder_forward(
    encoder: AttentionEncoder, x: np.ndarray, bias: np.ndarray | None = None
) -> np.ndarray:
    """Evaluate an :class:`AttentionEncoder` stack with raw NumPy."""
    for index in range(encoder.num_layers):
        x = _block_forward(encoder._modules[f"block_{index}"], x, bias)
    return x


attention_encoder_forward_batched = attention_encoder_forward


def masked_log_softmax_array(logits: np.ndarray, mask: np.ndarray, mask_value: float = -1e8) -> np.ndarray:
    """NumPy twin of :func:`repro.nn.masked_log_softmax` (last-axis rows)."""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != logits.shape:
        raise ValueError(f"mask shape {mask.shape} != logits shape {logits.shape}")
    if not np.all(mask.any(axis=-1)):
        raise ValueError("masked_log_softmax requires at least one unmasked entry")
    zero = logits.dtype.type(0.0)
    shifted = logits + np.where(mask, zero, logits.dtype.type(mask_value))
    shifted = shifted - shifted.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def fast_inference_reason(encoder: AttentionEncoder) -> str | None:
    """Why ``encoder`` cannot run on the tape-free fast path, or ``None``.

    The capability check behind every NumPy inference backend
    (:mod:`repro.nn.backend`): each attention block's norms must be one of
    the kinds the fast forwards replicate bit-for-bit.  Returning the reason
    (instead of a bare bool) lets callers warn instead of silently falling
    back to the tensor path.
    """
    for index in range(encoder.num_layers):
        block = encoder._modules[f"block_{index}"]
        for which, norm in (("norm1", block.norm1), ("norm2", block.norm2)):
            if not isinstance(norm, (LayerNorm, BatchNorm)):
                return (
                    f"block {index} {which} is {type(norm).__name__}; the fast "
                    "path only replicates LayerNorm and BatchNorm"
                )
    return None


def supports_fast_inference(encoder: AttentionEncoder) -> bool:
    """Whether every block of ``encoder`` uses a norm the fast path covers."""
    return fast_inference_reason(encoder) is None
