"""Gradient-descent optimisers for :class:`repro.nn.layers.Module` parameters."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, which trainers log as a stability signal.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * param.grad
            param.data = param.data + velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba), the default for all BQSched networks."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
