"""Gradient-descent optimisers for :class:`repro.nn.layers.Module` parameters.

The update loops run *in place* over per-parameter scratch buffers: one
``step()`` allocates exactly one fresh array per parameter — the new
``param.data`` itself.  That final allocation is deliberate, not an
oversight: the inference fast paths (``fastinfer._F32_CACHE``, the fused
QKV cache, the ``numpy-cached`` backend) detect parameter updates by array
*identity*, so ``param.data`` must be replaced, never mutated.  Every
in-place expression mirrors the original out-of-place arithmetic operation
for operation (scalar multiplies commute, ``a + b`` is IEEE-commutative),
so the results are bit-identical to the historical implementations —
pinned by ``tests/test_optim_inplace.py``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm, which trainers log as a stability signal.
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for param in params:
            np.multiply(param.grad, scale, out=param.grad)
    return total


class Optimizer:
    """Base optimiser holding a parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self._scratch: "list[np.ndarray] | None" = None

    def _scratch_buffers(self) -> "list[np.ndarray]":
        if self._scratch is None:
            self._scratch = [np.empty_like(p.data) for p in self.parameters]
        return self._scratch

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        scratch = self._scratch_buffers()
        for param, velocity, buf in zip(self.parameters, self._velocity, scratch):
            if param.grad is None:
                continue
            velocity *= self.momentum
            np.multiply(param.grad, self.lr, out=buf)
            velocity -= buf
            # Fresh array on purpose — identity-keyed inference caches key
            # off param.data, so it must be replaced rather than mutated.
            param.data = param.data + velocity


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba), the default for all BQSched networks."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._scratch2: "list[np.ndarray] | None" = None

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        one_minus_beta1 = 1.0 - self.beta1
        one_minus_beta2 = 1.0 - self.beta2
        buf1_list = self._scratch_buffers()
        if self._scratch2 is None:
            self._scratch2 = [np.empty_like(p.data) for p in self.parameters]
        for param, m, v, buf1, buf2 in zip(
            self.parameters, self._m, self._v, buf1_list, self._scratch2
        ):
            if param.grad is None:
                continue
            if self.weight_decay:
                np.multiply(param.data, self.weight_decay, out=buf1)
                np.add(param.grad, buf1, out=buf1)
                grad = buf1
            else:
                grad = param.grad
            m *= self.beta1
            np.multiply(grad, one_minus_beta1, out=buf2)
            m += buf2
            v *= self.beta2
            np.square(grad, out=buf2)
            buf2 *= one_minus_beta2
            v += buf2
            # buf2 <- lr * m_hat, buf1 <- sqrt(v_hat) + eps; same op-for-op
            # arithmetic as `lr * (m / bias1) / (sqrt(v / bias2) + eps)`.
            np.divide(m, bias1, out=buf2)
            buf2 *= self.lr
            np.divide(v, bias2, out=buf1)
            np.sqrt(buf1, out=buf1)
            buf1 += self.eps
            buf2 /= buf1
            # Fresh array on purpose — identity-keyed inference caches key
            # off param.data, so it must be replaced rather than mutated.
            param.data = param.data - buf2
