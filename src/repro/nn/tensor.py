"""A small reverse-mode automatic differentiation engine on top of NumPy.

The paper implements BQSched with PyTorch.  This repository has no GPU and
no deep-learning framework available offline, so ``repro.nn`` provides the
minimal tensor library that the encoder and the RL algorithms need: dense
tensors, broadcasting-aware gradients, and the handful of operators used by
multi-layer perceptrons, multi-head attention, and the PPO family of losses.

The design follows the classic "define-by-run" tape: every operation records
its inputs and a backward closure, and :meth:`Tensor.backward` walks the tape
in reverse topological order.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "chained_sum", "concatenate", "stack", "where"]


_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables gradient tracking.

    Used during environment rollouts and evaluation, where building the tape
    would waste memory for activations that are never differentiated.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient information."""
    return _GRAD_ENABLED


def _as_array(value: "Tensor | np.ndarray | float | int | Sequence") -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor with reverse-mode autograd.

    Parameters
    ----------
    data:
        Array-like payload; always stored as ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: "np.ndarray | float | int | Sequence",
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_tag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value of a single-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Tape management
    # ------------------------------------------------------------------ #
    def _make_child(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        child = Tensor(data, requires_grad=requires)
        if requires:
            child._parents = parents
            child._backward = backward
        return child

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: "np.ndarray | float | None" = None) -> None:
        """Back-propagate ``grad`` (default: ones) through the recorded tape."""
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            grad = np.broadcast_to(grad, self.data.shape).copy()

        topo: list[Tensor] = []
        visited: set[int] = set()

        def build(node: Tensor) -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        build(self)

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            node._accumulate(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not (parent.requires_grad or parent._parents):
                    continue
                if id(parent) in grads:
                    grads[id(parent)] = grads[id(parent)] + pgrad
                else:
                    grads[id(parent)] = pgrad

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other_t.shape),
            )

        return self._make_child(out_data, (self, other_t), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return self._make_child(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(-grad, other_t.shape),
            )

        return self._make_child(out_data, (self, other_t), backward)

    def __rsub__(self, other: "float") -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * other_t.data, self.shape),
                _unbroadcast(grad * self.data, other_t.shape),
            )

        return self._make_child(out_data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other_t.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / other_t.data, self.shape),
                _unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape),
            )

        return self._make_child(out_data, (self, other_t), backward)

    def __rtruediv__(self, other: "float") -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return self._make_child(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data @ other_t.data

        def backward(grad: np.ndarray):
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                grad_a = grad * b
                grad_b = grad * a
            elif a.ndim == 1:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.outer(a, grad)
            elif b.ndim == 1:
                grad_a = np.expand_dims(grad, -1) @ np.expand_dims(b, 0)
                grad_b = np.swapaxes(a, -1, -2) @ grad
                if grad_b.ndim > 1:
                    grad_b = grad_b.reshape(-1, b.shape[0]).sum(axis=0) if grad_b.ndim > 1 else grad_b
            else:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
            return (
                _unbroadcast(grad_a, self.shape),
                _unbroadcast(grad_b, other_t.shape),
            )

        return self._make_child(out_data, (self, other_t), backward)

    # ------------------------------------------------------------------ #
    # Elementwise non-linearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * out_data,)

        return self._make_child(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return self._make_child(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - out_data**2),)

        return self._make_child(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return self._make_child(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray):
            return (grad * out_data * (1.0 - out_data),)

        return self._make_child(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray):
            return (grad * sign,)

        return self._make_child(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return self._make_child(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            grad = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            return (np.broadcast_to(grad, self.shape).copy(),)

        return self._make_child(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            grad = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded).astype(np.float64)
            mask = mask / mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            return (mask * grad,)

        return self._make_child(out_data, (self,), backward)

    def var(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray):
            return (grad.reshape(self.shape),)

        return self._make_child(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray):
            return (grad.transpose(inverse),)

        return self._make_child(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":  # noqa: N802 - mirrors NumPy naming
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return self._make_child(np.array(out_data, copy=True), (self,), backward)

    # ------------------------------------------------------------------ #
    # Softmax-family helpers
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray):
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            return (out_data * (grad - dot),)

        return self._make_child(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray):
            return (grad - softmax * grad.sum(axis=axis, keepdims=True),)

        return self._make_child(out_data, (self,), backward)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray):
        return tuple(np.split(grad, boundaries, axis=axis))

    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensors)
        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensors)
        out._backward = backward
    return out


def chained_sum(tensors: Sequence[Tensor]) -> Tensor:
    """Sum same-shaped tensors in one tape node.

    Replaces ``t0 + t1 + ... + tn`` chains (one tape node *per element*) with
    a single node.  The forward accumulates sequentially left-to-right, the
    same binary-add order as the chain — not NumPy's pairwise ``sum`` — so
    results are bit-identical to the historical chained expression.
    """
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    if not tensors:
        raise ValueError("chained_sum needs at least one tensor")
    shape = tensors[0].shape
    for tensor in tensors[1:]:
        if tensor.shape != shape:
            raise ValueError(f"chained_sum shape mismatch: {tensor.shape} vs {shape}")
    data = tensors[0].data
    for tensor in tensors[1:]:
        data = data + tensor.data

    def backward(grad: np.ndarray):
        return tuple(grad for _ in tensors)

    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = tuple(tensors)
        out._backward = backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    a_t = a if isinstance(a, Tensor) else Tensor(a)
    b_t = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a_t.data, b_t.data)

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(grad * cond, a_t.shape),
            _unbroadcast(grad * (~cond), b_t.shape),
        )

    requires = _GRAD_ENABLED and (a_t.requires_grad or b_t.requires_grad)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = (a_t, b_t)
        out._backward = backward
    return out
