"""Neural-network building blocks: modules, linear layers, MLPs, norms."""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from . import init as weight_init
from .tensor import Tensor

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "LayerNorm",
    "BatchNorm",
    "Embedding",
    "Sequential",
    "Activation",
    "ACTIVATIONS",
]


class Parameter(Tensor):
    """A tensor that is registered as a learnable parameter of a module."""

    def __init__(self, data: np.ndarray, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural modules.

    Modules expose :meth:`parameters` for optimisers, :meth:`state_dict` /
    :meth:`load_state_dict` for checkpointing, and are callable via
    :meth:`forward`.
    """

    def __init__(self) -> None:
        self._modules: dict[str, "Module"] = {}
        self._parameters: dict[str, Parameter] = {}

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under ``name`` (for module lists)."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children."""
        for param in self._parameters.values():
            yield param
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` pairs."""
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat mapping from parameter names to arrays (copies)."""
        return {name: np.array(param.data, copy=True) for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values from :meth:`state_dict` output."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = np.array(value, copy=True)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


def _tanh(x: Tensor) -> Tensor:
    return x.tanh()


def _relu(x: Tensor) -> Tensor:
    return x.relu()


def _sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def _identity(x: Tensor) -> Tensor:
    return x


ACTIVATIONS: dict[str, Callable[[Tensor], Tensor]] = {
    "tanh": _tanh,
    "relu": _relu,
    "sigmoid": _sigmoid,
    "identity": _identity,
}


class Activation(Module):
    """A named activation function usable inside :class:`Sequential`."""

    def __init__(self, name: str) -> None:
        super().__init__()
        if name not in ACTIVATIONS:
            raise ValueError(f"unknown activation {name!r}; choose from {sorted(ACTIVATIONS)}")
        self.name = name
        self._fn = ACTIVATIONS[name]

    def forward(self, x: Tensor) -> Tensor:
        return self._fn(x)


class Linear(Module):
    """Affine transform ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight_init.xavier_uniform((in_features, out_features), rng), name="weight")
        self.bias = Parameter(weight_init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: list[str] = []
        for index, module in enumerate(modules):
            name = f"layer_{index}"
            self.register_module(name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return (self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)


class MLP(Module):
    """The paper's ``(sigma . Linear)^m`` stack: Linear layers with activations.

    Parameters
    ----------
    sizes:
        Layer widths including input and output, e.g. ``[64, 64, 1]``.
    activation:
        Name of the activation applied after every layer except (optionally)
        the last.
    final_activation:
        Whether the activation is also applied after the output layer.
    """

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        activation: str = "tanh",
        final_activation: bool = False,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least an input and an output width")
        self.sizes = list(sizes)
        layers: list[Module] = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(fan_in, fan_out, rng))
            is_last = index == len(sizes) - 2
            if not is_last or final_activation:
                layers.append(Activation(activation))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(features), name="gamma")
        self.beta = Parameter(np.zeros(features), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mu) / ((var + self.eps) ** 0.5)
        return normed * self.gamma + self.beta


class BatchNorm(Module):
    """Batch normalisation over the leading (token/batch) dimension.

    The paper applies BN after each attention sub-layer.  Because our state
    batches are small (one per scheduling step) we normalise over the token
    dimension of a single state, which plays the same stabilising role.

    A 3-D input ``(batch, tokens, features)`` is treated as a stack of
    independent states: each element is normalised over its own token axis,
    so a batched forward over B states matches B single-state forwards.
    """

    def __init__(self, features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(features), name="gamma")
        self.beta = Parameter(np.zeros(features), name="beta")
        self.running_mean = np.zeros(features)
        self.running_var = np.ones(features)
        self.training = True

    def eval(self) -> None:
        """Switch to inference mode (use running statistics)."""
        self.training = False

    def train(self) -> None:
        """Switch to training mode (use batch statistics)."""
        self.training = True

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 3:
            return self._forward_batched(x)
        if self.training and x.shape[0] > 1:
            mu = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mu.data.reshape(-1)
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var.data.reshape(-1)
        else:
            mu = Tensor(self.running_mean.reshape(1, -1))
            var = Tensor(self.running_var.reshape(1, -1))
        normed = (x - mu) / ((var + self.eps) ** 0.5)
        return normed * self.gamma + self.beta

    def _forward_batched(self, x: Tensor) -> Tensor:
        """Per-element token-axis normalisation for ``(batch, tokens, features)``.

        Running statistics are updated with the mean of the per-element batch
        statistics, so a batch of one updates them exactly like the 2-D path.
        """
        if self.training and x.shape[1] > 1:
            mu = x.mean(axis=1, keepdims=True)
            var = x.var(axis=1, keepdims=True)
            batch_mean = mu.data.reshape(x.shape[0], -1).mean(axis=0)
            batch_var = var.data.reshape(x.shape[0], -1).mean(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * batch_var
        else:
            mu = Tensor(self.running_mean.reshape(1, 1, -1))
            var = Tensor(self.running_var.reshape(1, 1, -1))
        normed = (x - mu) / ((var + self.eps) ** 0.5)
        return normed * self.gamma + self.beta


class Embedding(Module):
    """A lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(weight_init.normal((num_embeddings, dim), rng, std=0.1), name="weight")

    def forward(self, indices: "np.ndarray | Sequence[int]") -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weight[indices]
