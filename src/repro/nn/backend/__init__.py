"""Pluggable inference backends for the sampling hot path.

See :mod:`repro.nn.backend.base` for the protocol and registry.  Importing
this package registers the built-in backends:

``numpy-ref``
    The reference tape-free NumPy forwards (the default; bit-identical to
    calling the fastinfer paths directly).
``numpy-cached``
    Incremental cross-step caching of the row-wise projection stages,
    bit-identical to ``numpy-ref`` (:mod:`repro.nn.backend.cached`).
``torch``
    Optional torch.jit-compiled forward; tolerance-level parity, degrades
    to ``numpy-ref`` with a warning when torch is not installed
    (:mod:`repro.nn.backend.torch_backend` — importing it never imports
    torch; only instantiating the backend does).
"""

from .base import (
    DEFAULT_BACKEND,
    BackendUnavailableError,
    InferenceBackend,
    NumpyRefBackend,
    available_backends,
    fast_inference_reason,
    register_backend,
    resolve_backend,
)
from .cached import NumpyCachedBackend, probe_slice_bitness
from .torch_backend import TorchBackend

__all__ = [
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "InferenceBackend",
    "NumpyCachedBackend",
    "NumpyRefBackend",
    "TorchBackend",
    "available_backends",
    "fast_inference_reason",
    "probe_slice_bitness",
    "register_backend",
    "resolve_backend",
]
