"""Pluggable inference backends for the sampling hot path.

Action *sampling* (rollout collection, greedy serving) never differentiates,
so the forward pass behind it is swappable: anything that produces the same
per-query/global representations and head outputs can drive the policy.  An
:class:`InferenceBackend` packages one such implementation behind a small
protocol, and a registry maps names (``numpy-ref``, ``numpy-cached``,
``torch``) to factories so the choice threads through configuration instead
of code.

The *learning* path (PPO/PPG updates, auxiliary phases) always runs the
autograd tensor forward and is never routed through a backend — backends are
strictly about how fast the policy can be *queried*, not trained.

Hook shape
----------
The protocol hooks at the encoder level to keep the dependency direction
``core -> nn`` intact:

``encode_batch(encoder, plan_embeddings, snapshots)``
    Replaces :meth:`StateEncoder.encode_batch_arrays` on the vectorized
    sampling path.  Must return the same ``(per_query, global_state)``
    float32 arrays (bit-identical for the NumPy backends).
``heads_batch(policy, per_query, global_state, snapshots, clusters)``
    Optionally computes ``(logits, values)`` from the representations; a
    ``None`` return means "use the shared fastinfer head code" (what the
    NumPy reference backend does).
``scalar_forward(policy, plan_embeddings, snapshot, mask, clusters)``
    Optionally computes ``(log_probs, value)`` for a single snapshot (the
    sequential / serving path); ``None`` falls back to the tensor forward.

Sampling proper — masked softmax, the inverse-CDF draw, the
:class:`~repro.core.policy.PolicyDecision` construction — stays in
``policy.py`` and is shared by every backend, so RNG consumption is
identical no matter which backend runs the forward.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..fastinfer import fast_inference_reason

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (encoder imports nn)
    from ...encoder.state import StateEncoder

__all__ = [
    "BackendUnavailableError",
    "InferenceBackend",
    "NumpyRefBackend",
    "available_backends",
    "fast_inference_reason",
    "register_backend",
    "resolve_backend",
]

DEFAULT_BACKEND = "numpy-ref"


class BackendUnavailableError(RuntimeError):
    """Raised by a backend factory whose runtime dependencies are missing."""


class InferenceBackend:
    """Base class: the reference semantics every backend must preserve.

    The default hook implementations delegate straight to the shared
    tape-free NumPy forwards, so a subclass only overrides the stages it
    accelerates.  Implementations may keep cross-call caches; :meth:`reset`
    must drop them (used between unrelated workloads and in tests).
    """

    name = "base"

    def supports(self, policy: Any) -> str | None:
        """Why this backend cannot serve ``policy``, or ``None`` if it can.

        The capability check that used to live inside the vectorized rollout
        path (gating on encoder norms alone); backends own it now so a new
        backend can impose additional constraints.
        """
        encoder = policy.state_encoder
        if getattr(encoder, "use_attention", False):
            return fast_inference_reason(encoder.attention)
        return None

    def encode_batch(
        self,
        encoder: "StateEncoder",
        plan_embeddings: np.ndarray,
        snapshots: list[Any],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked ``(per_query, global_state)`` float32 representations."""
        return encoder.encode_batch_arrays(plan_embeddings, snapshots)

    def heads_batch(
        self,
        policy: Any,
        per_query: np.ndarray,
        global_state: np.ndarray,
        snapshots: list[Any],
        clusters: Any = None,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Optional ``(logits, values)`` from the stacked representations.

        ``None`` routes the caller to the shared fastinfer head code.
        """
        return None

    def scalar_forward(
        self,
        policy: Any,
        plan_embeddings: np.ndarray,
        snapshot: Any,
        mask: np.ndarray,
        clusters: Any = None,
    ) -> tuple[np.ndarray, float] | None:
        """Optional ``(log_probs, value)`` for one snapshot.

        ``None`` routes the caller to the scalar tensor forward (the
        reference path for sequential rollouts and serving).
        """
        return None

    def reset(self) -> None:
        """Drop all cross-call caches (no-op for stateless backends)."""


class NumpyRefBackend(InferenceBackend):
    """The reference backend: exactly the shared tape-free NumPy forwards.

    Every hook keeps its base-class behaviour, so routing sampling through
    this backend is bit-identical to calling the fastinfer paths directly —
    it exists so "no backend" and "numpy-ref" are the same code path.
    """

    name = "numpy-ref"


_REGISTRY: dict[str, Callable[[], InferenceBackend]] = {}


def register_backend(name: str, factory: Callable[[], InferenceBackend]) -> None:
    """Register ``factory`` under ``name`` (last registration wins)."""
    _REGISTRY[name] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names (registration order)."""
    return tuple(_REGISTRY)


def resolve_backend(
    name: str | None, policy: Any = None, strict: bool = False
) -> InferenceBackend:
    """Instantiate the backend called ``name``, falling back gracefully.

    Unknown names raise; a registered backend whose runtime dependencies are
    missing (:class:`BackendUnavailableError`, e.g. ``torch`` without torch
    installed) or that reports it cannot serve ``policy`` degrades to
    ``numpy-ref`` with a :class:`RuntimeWarning` — never silently.  With
    ``strict=True`` both conditions raise instead of falling back (used by
    benchmarks and tests that must know whether a backend really ran).
    """
    from ...exceptions import SchedulingError

    if name is None:
        name = DEFAULT_BACKEND
    factory = _REGISTRY.get(name)
    if factory is None:
        raise SchedulingError(
            f"unknown inference backend {name!r}; available: {', '.join(available_backends())}"
        )
    try:
        backend = factory()
    except BackendUnavailableError as exc:
        if strict:
            raise
        warnings.warn(
            f"inference backend {name!r} is unavailable ({exc}); falling back to "
            f"{DEFAULT_BACKEND!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return _REGISTRY[DEFAULT_BACKEND]()
    if policy is not None and name != DEFAULT_BACKEND:
        reason = backend.supports(policy)
        if reason is not None:
            if strict:
                raise SchedulingError(
                    f"inference backend {name!r} cannot serve this policy ({reason})"
                )
            warnings.warn(
                f"inference backend {name!r} cannot serve this policy ({reason}); "
                f"falling back to {DEFAULT_BACKEND!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            return _REGISTRY[DEFAULT_BACKEND]()
    return backend


register_backend(NumpyRefBackend.name, NumpyRefBackend)
