"""Incremental cross-step inference caching (the ``numpy-cached`` backend).

Consecutive decision steps of one rollout differ in very few queries: a step
submits one query and completes a handful, so of the ``n`` per-query token
rows the encoder projects, typically ``k << n`` actually changed.  This
backend exploits that locality while staying **bit-identical** to the
reference forward (:meth:`StateEncoder.encode_batch_arrays`):

* **Token projections** (``query_mlp``) and the first attention block's
  **fused-QKV projections** are cached per session row and recomputed only
  for rows whose features may have changed.  Row validity comes from the
  ``row_version`` stamps that :class:`~repro.dbms.soa.SessionStateArrays`
  maintains (every ``mark_*`` transition and out-of-band :meth:`touch`
  bumps the mutated row), plus two snapshot-level rules: a clock change
  dirties every *active* row (running rows see ``elapsed`` move, deferred
  rows see ``time_to_available`` move), and an instance-context change
  dirties everything (the context columns are appended to every token).
* Everything **after** the first QKV projection — attention mixing, norms
  (including BatchNorm's running-statistic side effects), the pooled-feature
  heads — couples all tokens and is recomputed every step with exactly the
  reference operations on exactly the reference inputs, so the training-mode
  BatchNorm statistics evolve identically.
* Featurization runs in full every step (it is cheap and feeds the pooled
  summaries); the static plan-embedding block of the token inputs is packed
  once per parameter version instead of re-broadcast per step, and the
  stacked input / sequence / QKV buffers persist across steps.

Bit-identity of row-wise caching rests on one BLAS property: computing a
GEMM over a *subset* of rows yields the same bits as slicing those rows out
of the full GEMM.  That holds for row-independent kernels but is not
guaranteed by any standard, so :func:`probe_slice_bitness` verifies it at
first use on representative hot-path shapes; if the probe fails on some
exotic BLAS build, the backend degrades to plain delegation (still
bit-identical, no row caching) with a warning.

The learning path never touches this module — caches only ever serve
no-gradient sampling forwards.
"""

from __future__ import annotations

import os
import warnings
from typing import Any

import numpy as np

from .. import fastinfer
from ..layers import Linear
from .base import InferenceBackend, register_backend

__all__ = ["NumpyCachedBackend", "probe_slice_bitness"]

_SnapshotArrays: Any = None


def _snapshot_arrays_type() -> Any:
    # Imported lazily: repro.encoder imports repro.nn, so a module-level
    # import here would be circular.  By the time snapshots exist the
    # encoder package is necessarily initialized.
    global _SnapshotArrays
    if _SnapshotArrays is None:
        from ...encoder.run_state import SnapshotArrays

        _SnapshotArrays = SnapshotArrays
    return _SnapshotArrays


_PROBE_RESULT: bool | None = None


def probe_slice_bitness() -> bool:
    """Whether row-subset GEMMs match row slices of the full GEMM bitwise.

    Checked once per process on representative hot-path shapes (token
    projection ``in->state`` and fused-QKV ``state->3*state``), including
    single rows, scattered gathers and halved M — the exact reuse patterns
    the cache relies on.
    """
    global _PROBE_RESULT
    if _PROBE_RESULT is not None:
        return _PROBE_RESULT
    rng = np.random.default_rng(20240820)
    ok = True
    for m, k_in, k_out in ((1408, 41, 48), (1472, 48, 144)):
        a = rng.standard_normal((m, k_in)).astype(np.float32)
        w = rng.standard_normal((k_in, k_out)).astype(np.float32)
        full = a @ w
        for k in (1, 2, 7, m // 2):
            rows = np.sort(rng.choice(m, size=k, replace=False))
            if not np.array_equal(np.ascontiguousarray(a[rows]) @ w, full[rows]):
                ok = False
        if not np.array_equal(a[:1] @ w, full[:1]):
            ok = False
    _PROBE_RESULT = ok
    return ok


def _context_equal(stored: np.ndarray | None, current: np.ndarray | None) -> bool:
    if stored is None or current is None:
        return stored is None and current is None
    return stored.shape == current.shape and bool(np.array_equal(stored, current))


class NumpyCachedBackend(InferenceBackend):
    """Per-session incremental caching of the row-wise projection stages."""

    name = "numpy-cached"

    def __init__(self) -> None:
        self._row_caching = probe_slice_bitness()
        if not self._row_caching:  # pragma: no cover - depends on BLAS build
            warnings.warn(
                "numpy-cached: this BLAS build does not produce bit-identical "
                "row-subset GEMMs; cross-step row caching is disabled "
                "(falling back to full recomputation per step)",
                RuntimeWarning,
                stacklevel=2,
            )
        self._verify = os.environ.get("REPRO_CACHED_VERIFY", "") == "1"
        self.reset()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        # Session bookkeeping: id(session) -> [session, slot, last_used].
        # The record holds the session reference so a dead session's id can
        # never be reused by a new object while its cache entry survives.
        self._sessions: dict[int, list[Any]] = {}
        self._free_slots: list[int] = []
        self._step = 0
        self._structure: tuple[int, int, int] | None = None
        self._param_key: tuple[int, ...] | None = None
        self._param_refs: list[np.ndarray] = []
        # Slot-indexed stores (capacity grows on demand); row ``n`` of the
        # token/QKV stores holds the constant super-query row.
        self._tok_store = np.empty((0, 0, 0), dtype=np.float32)
        self._qkv_store = np.empty((0, 0, 0), dtype=np.float32)
        self._prev_rv = np.empty((0, 0), dtype=np.int64)
        self._prev_active = np.empty((0, 0), dtype=bool)
        self._prev_time = np.empty(0, dtype=np.float64)
        self._valid = np.empty(0, dtype=bool)
        self._slot_context: list[np.ndarray | None] = []
        # Batch-capacity working buffers, keyed by name.
        self._bufs: dict[str, np.ndarray] = {}
        self._super32: np.ndarray | None = None
        self._super_qkv: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Buffers and stores
    # ------------------------------------------------------------------ #
    def _buf(self, name: str, batch: int, trailing: tuple[int, ...], dtype: Any) -> np.ndarray:
        buf = self._bufs.get(name)
        if buf is None or buf.shape[0] < batch or buf.shape[1:] != trailing or buf.dtype != dtype:
            capacity = batch if buf is None else max(batch, 2 * buf.shape[0])
            buf = np.empty((capacity,) + trailing, dtype=dtype)
            self._bufs[name] = buf
            if name == "inputs":
                self._pack_plan_block(buf)
            if name in ("seq", "qkvb"):
                self._pack_super_rows(name, buf)
        return buf[:batch]

    def _pack_plan_block(self, inputs_buf: np.ndarray) -> None:
        if self._plan_embeddings is not None:
            inputs_buf[:, :, : self._plan_embeddings.shape[1]] = self._plan_embeddings

    def _pack_super_rows(self, name: str, buf: np.ndarray) -> None:
        n = buf.shape[1] - 1
        if name == "seq" and self._super32 is not None:
            buf[:, n, :] = self._super32
        if name == "qkvb" and self._super_qkv is not None:
            buf[:, n, :] = self._super_qkv

    def _ensure_structure(self, n: int, in_dim: int, plan_dim: int) -> None:
        if self._structure == (n, in_dim, plan_dim):
            return
        self.reset()
        self._structure = (n, in_dim, plan_dim)

    def _grow_slots(self, needed: int) -> None:
        old = self._valid.shape[0]
        new = max(needed, 2 * old, 16)
        n1, d = self._tok_store.shape[1], self._tok_store.shape[2]
        qd = self._qkv_store.shape[2]

        def _grown(store: np.ndarray, trailing: tuple[int, ...], fill: Any = None) -> np.ndarray:
            grown = np.empty((new,) + trailing, dtype=store.dtype)
            grown[:old] = store
            if fill is not None:
                grown[old:] = fill
            return grown

        self._tok_store = _grown(self._tok_store, (n1, d))
        self._qkv_store = _grown(self._qkv_store, (n1, qd))
        if self._super32 is not None:
            self._tok_store[old:, n1 - 1, :] = self._super32
        if self._super_qkv is not None and qd:
            self._qkv_store[old:, n1 - 1, :] = self._super_qkv
        self._prev_rv = _grown(self._prev_rv, (n1 - 1,))
        self._prev_active = _grown(self._prev_active, (n1 - 1,))
        self._prev_time = _grown(self._prev_time, ())
        self._valid = _grown(self._valid, (), fill=False)
        self._slot_context.extend([None] * (new - old))
        self._free_slots.extend(range(old, new))

    def _alloc_slot(self) -> int:
        if not self._free_slots:
            self._grow_slots(self._valid.shape[0] + 1)
        return self._free_slots.pop()

    def _evict_stale(self, batch: int) -> None:
        limit = max(4 * batch, 64)
        if len(self._sessions) <= limit:
            return
        stale = [key for key, rec in self._sessions.items() if rec[2] < self._step]
        for key in stale:
            rec = self._sessions.pop(key)
            self._valid[rec[1]] = False
            self._slot_context[rec[1]] = None
            self._free_slots.append(rec[1])

    # ------------------------------------------------------------------ #
    # Parameter versioning
    # ------------------------------------------------------------------ #
    def _param_sources(self, encoder: Any, plan_embeddings: np.ndarray) -> list[np.ndarray]:
        sources = [plan_embeddings, encoder.super_query.data]
        for module in encoder.query_mlp.net:
            if isinstance(module, Linear):
                sources.append(module.weight.data)
                if module.bias is not None:
                    sources.append(module.bias.data)
        if getattr(encoder, "use_attention", False) and encoder.attention.num_layers >= 1:
            attention = encoder.attention._modules["block_0"].attention
            for proj in (attention.query_proj, attention.key_proj, attention.value_proj):
                sources.append(proj.weight.data)
                sources.append(proj.bias.data)
        return sources

    def _refresh_params(self, encoder: Any, plan_embeddings: np.ndarray) -> None:
        sources = self._param_sources(encoder, plan_embeddings)
        key = tuple(id(array) for array in sources)
        if key == self._param_key:
            return
        self._param_key = key
        self._param_refs = sources  # pin ids against reuse by fresh arrays
        self._plan_embeddings = plan_embeddings
        self._valid[:] = False
        self._super32 = encoder.super_query.data.astype(np.float32).reshape(-1)
        n1 = self._tok_store.shape[1]
        if n1:
            self._tok_store[:, n1 - 1, :] = self._super32
        if getattr(encoder, "use_attention", False) and encoder.attention.num_layers >= 1:
            attention = encoder.attention._modules["block_0"].attention
            qkv_weight, qkv_bias = fastinfer._fused_qkv(attention)
            w32 = fastinfer._float32(qkv_weight)
            b32 = fastinfer._float32(qkv_bias)
            super_qkv = self._super32.reshape(1, -1) @ w32
            super_qkv += b32
            self._super_qkv = super_qkv.reshape(-1)
            if self._qkv_store.shape[2]:
                self._qkv_store[:, n1 - 1, :] = self._super_qkv
        else:
            self._super_qkv = None
        inputs_buf = self._bufs.get("inputs")
        if inputs_buf is not None:
            self._pack_plan_block(inputs_buf)
        seq_buf = self._bufs.get("seq")
        if seq_buf is not None:
            self._pack_super_rows("seq", seq_buf)
        qkv_buf = self._bufs.get("qkvb")
        if qkv_buf is not None:
            self._pack_super_rows("qkvb", qkv_buf)

    _plan_embeddings: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def _eligible(self, snapshots: list[Any]) -> bool:
        if not self._row_caching or not snapshots:
            return False
        arrays_type = _snapshot_arrays_type()
        for snapshot in snapshots:
            if not isinstance(snapshot, arrays_type):
                return False
            if snapshot.state_key is None or snapshot.row_version is None:
                return False
        return True

    def encode_batch(
        self,
        encoder: Any,
        plan_embeddings: np.ndarray,
        snapshots: list[Any],
    ) -> tuple[np.ndarray, np.ndarray]:
        if not self._eligible(snapshots):
            return encoder.encode_batch_arrays(plan_embeddings, snapshots)

        featurizer = encoder.run_state_featurizer
        batch = len(snapshots)
        n = snapshots[0].num_queries
        feature_dim = featurizer.feature_dim
        plan_dim = plan_embeddings.shape[1]
        in_dim = plan_dim + feature_dim
        if plan_embeddings.shape[0] != n:
            raise ValueError("plan embeddings and snapshots must cover the same queries")
        self._ensure_structure(n, in_dim, plan_dim)
        state_dim = encoder.super_query.data.shape[1]
        use_attention = getattr(encoder, "use_attention", False)
        blocks = encoder.attention.num_layers if use_attention else 0
        qkv_dim = 3 * state_dim if blocks >= 1 else 0
        if (
            self._tok_store.shape[1] != n + 1
            or self._tok_store.shape[2] != state_dim
            or self._qkv_store.shape[2] != qkv_dim
        ):
            self._tok_store = np.empty((0, n + 1, state_dim), dtype=np.float32)
            self._qkv_store = np.empty((0, n + 1, qkv_dim), dtype=np.float32)
            self._prev_rv = np.empty((0, n), dtype=np.int64)
            self._prev_active = np.empty((0, n), dtype=bool)
            self._prev_time = np.empty(0, dtype=np.float64)
            self._valid = np.empty(0, dtype=bool)
            self._sessions.clear()
            self._free_slots = []
            self._slot_context = []
        self._step += 1
        self._refresh_params(encoder, plan_embeddings)

        # ---- featurize the full stack (reference ops, persistent buffers)
        run_features = self._buf("features", batch, (n, feature_dim), np.float64)
        featurizer.featurize_arrays_stack(snapshots, out=run_features)
        inputs = self._buf("inputs", batch, (n, in_dim), np.float32)
        inputs[:, :, plan_dim:] = run_features
        pooled_all = np.concatenate([run_features.mean(axis=1), run_features.max(axis=1)], axis=1)

        status_stack = self._buf("status", batch, (n,), np.int8)
        avail_stack = self._buf("avail", batch, (n,), bool)
        rv_stack = self._buf("rv", batch, (n,), np.int64)
        times = self._buf("times", batch, (), np.float64)
        slots = self._buf("slots", batch, (), np.int64)
        fresh = self._buf("fresh", batch, (), bool)
        fresh[:] = False
        for index, snapshot in enumerate(snapshots):
            status_stack[index] = snapshot.status
            avail_stack[index] = snapshot.available
            rv_stack[index] = snapshot.row_version
            times[index] = snapshot.time
            record = self._sessions.get(id(snapshot.state_key))
            if record is None or record[0] is not snapshot.state_key:
                slot = self._alloc_slot()
                record = [snapshot.state_key, slot, self._step]
                self._sessions[id(snapshot.state_key)] = record
                self._valid[slot] = False
            record[2] = self._step
            slots[index] = record[1]
            if not self._valid[record[1]]:
                fresh[index] = True
            context = snapshot.instance_context_array
            if not _context_equal(self._slot_context[record[1]], context):
                fresh[index] = True
                self._slot_context[record[1]] = None if context is None else context.copy()

        # Masked pooled-running summary — the reference float32 stack branch.
        running = status_stack == 1
        counts = running.sum(axis=1)
        weights = running[:, :, None]
        means = (run_features * weights).sum(axis=1)
        means /= np.maximum(counts, 1)[:, None]
        maxes = np.where(weights, run_features, -np.inf).max(axis=1)
        pooled_running = np.concatenate([means, maxes], axis=1)
        pooled_running[counts == 0] = 0.0

        # ---- dirty rows: version stamps + clock rule + context/fresh resets
        active = running | ~avail_stack
        dirty = rv_stack != self._prev_rv[slots]
        time_changed = times != self._prev_time[slots]
        dirty |= time_changed[:, None] & (active | self._prev_active[slots])
        dirty |= fresh[:, None]
        self._prev_rv[slots] = rv_stack
        self._prev_active[slots] = active
        self._prev_time[slots] = times
        self._valid[slots] = True

        # ---- recompute dirty token / QKV rows, one gathered GEMM each
        dirty_env, dirty_row = np.nonzero(dirty)
        if dirty_env.size:
            changed = inputs[dirty_env, dirty_row, :]
            tokens = fastinfer.mlp_forward(encoder.query_mlp, changed)
            self._tok_store[slots[dirty_env], dirty_row] = tokens
            if qkv_dim:
                attention = encoder.attention._modules["block_0"].attention
                qkv_weight, qkv_bias = fastinfer._fused_qkv(attention)
                qkv_rows = tokens @ fastinfer._float32(qkv_weight)
                qkv_rows += fastinfer._float32(qkv_bias)
                self._qkv_store[slots[dirty_env], dirty_row] = qkv_rows

        sequence = self._buf("seq", batch, (n + 1, state_dim), np.float32)
        np.take(self._tok_store, slots, axis=0, out=sequence)
        if self._verify:
            self._verify_rows(encoder, inputs, sequence, slots, qkv_dim)

        # ---- attention onwards: exactly the reference operations
        if use_attention:
            if blocks >= 1:
                block0 = encoder.attention._modules["block_0"]
                qkv_flat = self._buf("qkvb", batch, (n + 1, qkv_dim), np.float32)
                np.take(self._qkv_store, slots, axis=0, out=qkv_flat)
                heads = block0.attention.num_heads
                head_dim = block0.attention.head_dim
                qkv = qkv_flat.reshape(batch, n + 1, 3, heads, head_dim)
                queries = qkv[:, :, 0].transpose(0, 2, 1, 3)
                keys = qkv[:, :, 1].transpose(0, 2, 1, 3)
                values = qkv[:, :, 2].transpose(0, 2, 1, 3)
                scores = (queries @ keys.transpose(0, 1, 3, 2)) * (1.0 / float(np.sqrt(head_dim)))
                flat = scores.reshape(batch * heads * (n + 1), n + 1)
                flat -= flat.max(axis=-1, keepdims=True)
                np.exp(flat, out=flat)
                flat /= flat.sum(axis=-1, keepdims=True)
                mixed = (scores @ values).transpose(0, 2, 1, 3).reshape(batch, n + 1, state_dim)
                attended = fastinfer.linear_forward(block0.attention.out_proj, mixed)
                encoded = fastinfer._norm_forward(block0.norm1, sequence + attended)
                encoded = fastinfer._norm_forward(
                    block0.norm2, encoded + fastinfer.mlp_forward(block0.feedforward, encoded)
                )
                for index in range(1, blocks):
                    encoded = fastinfer._block_forward(
                        encoder.attention._modules[f"block_{index}"], encoded, None
                    )
            else:  # pragma: no cover - zero-layer encoders are not built
                encoded = sequence
        else:
            encoded = sequence
        encoded_queries = encoded[:, :n]
        encoded_super = encoded[:, n]

        pooled_all32 = pooled_all.astype(np.float32)
        pooled_running32 = pooled_running.astype(np.float32)
        global_state = fastinfer.mlp_forward(
            encoder.global_mlp, np.concatenate([encoded_super, pooled_all32], axis=1)
        )
        broadcast_super = np.broadcast_to(encoded_super[:, None, :], encoded_queries.shape)
        broadcast_pool = np.broadcast_to(
            pooled_running32[:, None, :], (batch, n, pooled_running32.shape[1])
        )
        per_query = fastinfer.mlp_forward(
            encoder.query_out_mlp,
            np.concatenate([encoded_queries, broadcast_super, broadcast_pool], axis=2),
        )
        self._evict_stale(batch)
        return per_query, global_state

    def _verify_rows(
        self,
        encoder: Any,
        inputs: np.ndarray,
        sequence: np.ndarray,
        slots: np.ndarray,
        qkv_dim: int,
    ) -> None:
        """Debug mode (REPRO_CACHED_VERIFY=1): recompute every row fresh and
        compare with the cache-assembled sequence bitwise — catches any
        missed invalidation immediately instead of as a drifting digest."""
        n = inputs.shape[1]
        fresh_tokens = fastinfer.mlp_forward(encoder.query_mlp, inputs.reshape(-1, inputs.shape[2]))
        fresh_tokens = fresh_tokens.reshape(inputs.shape[0], n, -1)
        if not np.array_equal(fresh_tokens, sequence[:, :n]):
            bad = np.nonzero(~np.all(fresh_tokens == sequence[:, :n], axis=2))
            raise AssertionError(f"numpy-cached: stale token rows at (env, row) = {bad}")
        if qkv_dim:
            attention = encoder.attention._modules["block_0"].attention
            qkv_weight, qkv_bias = fastinfer._fused_qkv(attention)
            fresh_qkv = fresh_tokens.reshape(-1, fresh_tokens.shape[2]) @ fastinfer._float32(qkv_weight)
            fresh_qkv += fastinfer._float32(qkv_bias)
            cached = self._qkv_store[slots][:, :n].reshape(-1, qkv_dim)
            if not np.array_equal(fresh_qkv, cached):
                raise AssertionError("numpy-cached: stale QKV rows")

    # ------------------------------------------------------------------ #
    # Heads (buffer-reusing twin of the shared fastinfer head code)
    # ------------------------------------------------------------------ #
    def heads_batch(
        self,
        policy: Any,
        per_query: np.ndarray,
        global_state: np.ndarray,
        snapshots: list[Any],
        clusters: Any = None,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        if clusters is not None:
            # Cluster pooling is per-snapshot Python work; keep the shared path.
            return None
        batch, n = per_query.shape[0], per_query.shape[1]
        logits = self._mlp_into("policy_head", policy.policy_head, per_query.reshape(batch * n, -1))
        values = self._mlp_into("value_head", policy.value_head, global_state)
        return logits.reshape(batch, -1), values.reshape(batch)

    def _mlp_into(self, tag: str, mlp: Any, x: np.ndarray) -> np.ndarray:
        """``fastinfer.mlp_forward`` with persistent GEMM output buffers.

        Bit-identical: ``np.matmul(..., out=)`` runs the same GEMM, the bias
        add and tanh are the same elementwise ops (tanh applied in place on
        a buffer this backend owns).
        """
        for index, module in enumerate(mlp.net):
            if isinstance(module, Linear):
                weight = fastinfer._param(module.weight.data, x)
                out = self._buf(f"{tag}:{index}", x.shape[0], (weight.shape[1],), x.dtype)
                np.matmul(x, weight, out=out)
                if module.bias is not None:
                    out += fastinfer._param(module.bias.data, x)
                x = out
            elif module.name == "tanh":
                np.tanh(x, out=x)
            else:
                x = fastinfer._ACTIVATIONS[module.name](x)
        return x


register_backend(NumpyCachedBackend.name, NumpyCachedBackend)
