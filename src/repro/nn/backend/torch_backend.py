"""Optional compiled inference backend on top of PyTorch (``torch``).

Rebuilds the sampling-path encoder + heads as a small torch module —
``torch.jit.script``-compiled when scripting succeeds, eager otherwise — and
runs the forward in float32 on CPU.  Parity with the NumPy reference path is
*tolerance-level* (same arithmetic at float32, different kernels and
reduction orders), verified by the backend parity suite at ``atol <= 1e-5``
on logits; the NumPy backends remain the bit-exact reference.

torch is an optional dependency (``pip install repro-bqsched[compiled]``):
this module imports it lazily inside the backend factory, so importing
:mod:`repro.nn.backend` — or anything else in the package — never requires
torch.  When torch is missing, resolving the ``torch`` backend degrades to
``numpy-ref`` with a clear warning (see :func:`repro.nn.backend.resolve_backend`).

Training-mode BatchNorm mutates running statistics; the torch forward
returns the per-call batch moments and the backend applies the reference
float64 update expressions to the NumPy module in place, so a policy sampled
through this backend trains on the same statistics trajectory up to float
tolerance.
"""

from __future__ import annotations

import importlib
from typing import Any

import numpy as np

from .. import fastinfer
from ..layers import MLP, Activation, BatchNorm, LayerNorm, Linear
from .base import BackendUnavailableError, InferenceBackend, register_backend

__all__ = ["TorchBackend"]


def _import_torch() -> Any:
    try:
        return importlib.import_module("torch")
    except ImportError as exc:  # pragma: no cover - exercised when torch absent
        raise BackendUnavailableError(f"torch is not installed: {exc}") from None


def _torch_linear(torch: Any, layer: Linear) -> Any:
    nn = torch.nn
    weight = layer.weight.data
    has_bias = layer.bias is not None
    module = nn.Linear(weight.shape[0], weight.shape[1], bias=has_bias)
    with torch.no_grad():
        module.weight.copy_(torch.from_numpy(np.ascontiguousarray(weight.T, dtype=np.float32)))
        if has_bias:
            module.bias.copy_(torch.from_numpy(layer.bias.data.astype(np.float32)))
    return module


_TORCH_ACTIVATIONS = {"tanh": "Tanh", "relu": "ReLU", "sigmoid": "Sigmoid", "identity": "Identity"}


def _torch_mlp(torch: Any, mlp: MLP) -> Any:
    nn = torch.nn
    modules = []
    for module in mlp.net:
        if isinstance(module, Linear):
            modules.append(_torch_linear(torch, module))
        elif isinstance(module, Activation):
            modules.append(getattr(nn, _TORCH_ACTIVATIONS[module.name])())
        else:  # pragma: no cover - MLP only builds the two kinds above
            raise BackendUnavailableError(f"unsupported MLP module: {type(module).__name__}")
    return nn.Sequential(*modules)


def _build_modules(torch: Any) -> tuple[Any, Any, Any, Any]:
    """Define the torch module classes (deferred: torch may be absent)."""
    nn = torch.nn
    Tensor = torch.Tensor
    from typing import List, Tuple  # noqa: F401 - TorchScript type annotations

    class _Norm(nn.Module):
        """LayerNorm / token-axis BatchNorm matching the NumPy semantics.

        The ``batch`` kind normalises over the token axis per (sample,
        channel) — what the NumPy tensor path computes for 3-D inputs — and
        returns the float64 batch moments so the caller can replicate the
        running-statistic update on the NumPy module.
        """

        def __init__(self, kind: str, gamma: Any, beta: Any, eps: float) -> None:
            super().__init__()
            self.kind = kind
            self.eps = eps
            self.register_buffer("gamma", gamma)
            self.register_buffer("beta", beta)
            self.register_buffer("running_mean", torch.zeros_like(gamma))
            self.register_buffer("running_var", torch.ones_like(gamma))

        def forward(self, x: Tensor, training: bool) -> Tuple[Tensor, Tensor, Tensor]:
            empty = torch.zeros(0, dtype=torch.float64)
            if self.kind == "layer":
                mu = x.mean(dim=-1, keepdim=True)
                centered = x - mu
                var = (centered * centered).mean(dim=-1, keepdim=True)
                out = centered / torch.sqrt(var + self.eps) * self.gamma + self.beta
                return out, empty, empty
            if training and x.size(1) > 1:
                mu = x.mean(dim=1, keepdim=True)
                centered = x - mu
                var = (centered * centered).mean(dim=1, keepdim=True)
                batch_mean = mu.reshape(x.size(0), -1).to(torch.float64).mean(dim=0)
                batch_var = var.reshape(x.size(0), -1).to(torch.float64).mean(dim=0)
                out = centered / torch.sqrt(var + self.eps) * self.gamma + self.beta
                return out, batch_mean, batch_var
            mu = self.running_mean.reshape(1, 1, -1)
            var = self.running_var.reshape(1, 1, -1)
            out = (x - mu) / torch.sqrt(var + self.eps) * self.gamma + self.beta
            return out, empty, empty

    class _Block(nn.Module):
        def __init__(
            self, qkv: Any, out_proj: Any, feedforward: Any, norm1: Any, norm2: Any,
            num_heads: int, head_dim: int,
        ) -> None:
            super().__init__()
            self.qkv = qkv
            self.out_proj = out_proj
            self.feedforward = feedforward
            self.norm1 = norm1
            self.norm2 = norm2
            self.num_heads = num_heads
            self.head_dim = head_dim

        def forward(self, x: Tensor, training: bool) -> Tuple[Tensor, List[Tensor]]:
            batch, tokens = x.size(0), x.size(1)
            qkv = self.qkv(x).reshape(batch, tokens, 3, self.num_heads, self.head_dim)
            queries = qkv[:, :, 0].permute(0, 2, 1, 3)
            keys = qkv[:, :, 1].permute(0, 2, 1, 3)
            values = qkv[:, :, 2].permute(0, 2, 1, 3)
            scores = torch.matmul(queries, keys.transpose(-2, -1)) * (
                1.0 / float(self.head_dim) ** 0.5
            )
            weights = torch.softmax(scores, dim=-1)
            mixed = torch.matmul(weights, values).permute(0, 2, 1, 3).reshape(batch, tokens, -1)
            attended = self.out_proj(mixed)
            stats: List[Tensor] = []
            out, mean1, var1 = self.norm1(x + attended, training)
            if mean1.numel() > 0:
                stats.append(mean1)
                stats.append(var1)
            out2, mean2, var2 = self.norm2(out + self.feedforward(out), training)
            if mean2.numel() > 0:
                stats.append(mean2)
                stats.append(var2)
            return out2, stats

    class _Encoder(nn.Module):
        def __init__(
            self, query_mlp: Any, super_query: Any, blocks: Any, global_mlp: Any,
            query_out_mlp: Any,
        ) -> None:
            super().__init__()
            self.query_mlp = query_mlp
            self.register_buffer("super_query", super_query)
            self.blocks = blocks
            self.global_mlp = global_mlp
            self.query_out_mlp = query_out_mlp

        def forward(
            self, inputs: Tensor, pooled_all: Tensor, pooled_running: Tensor, training: bool
        ) -> Tuple[Tensor, Tensor, List[Tensor]]:
            batch, num_queries = inputs.size(0), inputs.size(1)
            tokens = self.query_mlp(inputs)
            super_tokens = self.super_query.expand(batch, 1, self.super_query.size(2))
            sequence = torch.cat([tokens, super_tokens], dim=1)
            stats: List[Tensor] = []
            encoded = sequence
            for block in self.blocks:
                encoded, block_stats = block(encoded, training)
                for stat in block_stats:
                    stats.append(stat)
            encoded_queries = encoded[:, :num_queries]
            encoded_super = encoded[:, num_queries]
            global_state = self.global_mlp(torch.cat([encoded_super, pooled_all], dim=1))
            broadcast_super = encoded_super.unsqueeze(1).expand(
                batch, num_queries, encoded_super.size(1)
            )
            broadcast_pool = pooled_running.unsqueeze(1).expand(
                batch, num_queries, pooled_running.size(1)
            )
            per_query = self.query_out_mlp(
                torch.cat([encoded_queries, broadcast_super, broadcast_pool], dim=2)
            )
            return per_query, global_state, stats

    class _Heads(nn.Module):
        def __init__(self, policy_head: Any, value_head: Any) -> None:
            super().__init__()
            self.policy_head = policy_head
            self.value_head = value_head

        def forward(self, per_query: Tensor, global_state: Tensor) -> Tuple[Tensor, Tensor]:
            batch = per_query.size(0)
            logits = self.policy_head(per_query).reshape(batch, -1)
            values = self.value_head(global_state).reshape(batch)
            return logits, values

    return _Norm, _Block, _Encoder, _Heads


class TorchBackend(InferenceBackend):
    """torch.jit-compiled encoder + heads for the sampling path."""

    name = "torch"

    def __init__(self) -> None:
        self._torch = _import_torch()
        self._classes = _build_modules(self._torch)
        self._encoder_module: Any = None
        self._encoder_key: tuple[int, ...] | None = None
        self._encoder_refs: list[np.ndarray] = []
        self._batch_norms: list[BatchNorm] = []
        self._torch_norms: list[Any] = []
        self._heads_module: Any = None
        self._heads_key: tuple[int, ...] | None = None
        self._heads_refs: list[np.ndarray] = []
        #: Whether torch.jit.script succeeded (eager fallback otherwise).
        self.compiled = False

    def reset(self) -> None:
        self._encoder_module = None
        self._encoder_key = None
        self._heads_module = None
        self._heads_key = None

    # ------------------------------------------------------------------ #
    # Module construction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _mlp_params(mlp: MLP) -> list[np.ndarray]:
        params: list[np.ndarray] = []
        for module in mlp.net:
            if isinstance(module, Linear):
                params.append(module.weight.data)
                if module.bias is not None:
                    params.append(module.bias.data)
        return params

    def _make_norm(self, norm: Any) -> Any:
        torch = self._torch
        norm_cls = self._classes[0]
        kind = "layer" if isinstance(norm, LayerNorm) else "batch"
        gamma = torch.from_numpy(norm.gamma.data.astype(np.float32))
        beta = torch.from_numpy(norm.beta.data.astype(np.float32))
        module = norm_cls(kind, gamma, beta, float(norm.eps))
        self._torch_norms.append(module)
        if isinstance(norm, BatchNorm):
            self._batch_norms.append(norm)
        return module

    def _refresh_encoder(self, encoder: Any) -> None:
        torch = self._torch
        sources: list[np.ndarray] = [encoder.super_query.data]
        sources += self._mlp_params(encoder.query_mlp)
        sources += self._mlp_params(encoder.global_mlp)
        sources += self._mlp_params(encoder.query_out_mlp)
        blocks_np = []
        if getattr(encoder, "use_attention", False):
            for index in range(encoder.attention.num_layers):
                block = encoder.attention._modules[f"block_{index}"]
                blocks_np.append(block)
                attention = block.attention
                for proj in (attention.query_proj, attention.key_proj, attention.value_proj, attention.out_proj):
                    sources.append(proj.weight.data)
                    sources.append(proj.bias.data)
                sources += self._mlp_params(block.feedforward)
                for norm in (block.norm1, block.norm2):
                    sources.append(norm.gamma.data)
                    sources.append(norm.beta.data)
        key = tuple(id(array) for array in sources)
        if key == self._encoder_key and self._encoder_module is not None:
            self._sync_running_stats()
            return
        self._encoder_key = key
        self._encoder_refs = sources
        self._batch_norms = []
        self._torch_norms = []
        _, block_cls, encoder_cls, _ = self._classes
        nn = torch.nn
        torch_blocks = []
        for block in blocks_np:
            attention = block.attention
            qkv_weight, qkv_bias = fastinfer._fused_qkv(attention)
            qkv = nn.Linear(qkv_weight.shape[0], qkv_weight.shape[1])
            with torch.no_grad():
                qkv.weight.copy_(torch.from_numpy(np.ascontiguousarray(qkv_weight.T, dtype=np.float32)))
                qkv.bias.copy_(torch.from_numpy(qkv_bias.astype(np.float32)))
            torch_blocks.append(
                block_cls(
                    qkv,
                    _torch_linear(torch, attention.out_proj),
                    _torch_mlp(torch, block.feedforward),
                    self._make_norm(block.norm1),
                    self._make_norm(block.norm2),
                    int(attention.num_heads),
                    int(attention.head_dim),
                )
            )
        module = encoder_cls(
            _torch_mlp(torch, encoder.query_mlp),
            torch.from_numpy(
                encoder.super_query.data.astype(np.float32).reshape(1, 1, -1)
            ),
            nn.ModuleList(torch_blocks),
            _torch_mlp(torch, encoder.global_mlp),
            _torch_mlp(torch, encoder.query_out_mlp),
        )
        module.eval()
        try:
            module = torch.jit.script(module)
            self.compiled = True
        except Exception:  # pragma: no cover - depends on torch version
            self.compiled = False
        self._encoder_module = module
        self._sync_running_stats()

    def _sync_running_stats(self) -> None:
        """Copy the NumPy running statistics into the torch buffers.

        Needed before every forward that may hit the eval branch: other code
        paths (the tensor forward, NumPy backends) update the NumPy module's
        statistics between our calls.
        """
        torch = self._torch
        batch_kind = [module for module in self._torch_norms if module.kind == "batch"]
        for norm, torch_norm in zip(self._batch_norms, batch_kind):
            with torch.no_grad():
                torch_norm.running_mean.copy_(
                    torch.from_numpy(norm.running_mean.astype(np.float32))
                )
                torch_norm.running_var.copy_(
                    torch.from_numpy(norm.running_var.astype(np.float32))
                )

    def _refresh_heads(self, policy: Any) -> None:
        torch = self._torch
        sources = self._mlp_params(policy.policy_head) + self._mlp_params(policy.value_head)
        key = tuple(id(array) for array in sources)
        if key == self._heads_key and self._heads_module is not None:
            return
        self._heads_key = key
        self._heads_refs = sources
        heads_cls = self._classes[3]
        module = heads_cls(
            _torch_mlp(torch, policy.policy_head), _torch_mlp(torch, policy.value_head)
        )
        module.eval()
        try:
            module = torch.jit.script(module)
        except Exception:  # pragma: no cover - depends on torch version
            pass
        self._heads_module = module

    # ------------------------------------------------------------------ #
    # Backend hooks
    # ------------------------------------------------------------------ #
    def encode_batch(
        self,
        encoder: Any,
        plan_embeddings: np.ndarray,
        snapshots: list[Any],
    ) -> tuple[np.ndarray, np.ndarray]:
        torch = self._torch
        inputs, _, pooled_all, pooled_running = encoder._batch_inputs(
            plan_embeddings, snapshots, input_dtype=np.float32
        )
        self._refresh_encoder(encoder)
        training = bool(self._batch_norms) and bool(getattr(self._batch_norms[0], "training", True))
        with torch.no_grad():
            per_query, global_state, stats = self._encoder_module(
                torch.from_numpy(inputs),
                torch.from_numpy(pooled_all.astype(np.float32)),
                torch.from_numpy(pooled_running.astype(np.float32)),
                training,
            )
        self._apply_running_stats(stats)
        return per_query.numpy(), global_state.numpy()

    def _apply_running_stats(self, stats: list[Any]) -> None:
        """Replicate the reference float64 running-statistic updates."""
        if not stats:
            return
        for index, norm in enumerate(self._batch_norms):
            batch_mean = stats[2 * index].numpy()
            batch_var = stats[2 * index + 1].numpy()
            norm.running_mean = (1 - norm.momentum) * norm.running_mean + norm.momentum * batch_mean
            norm.running_var = (1 - norm.momentum) * norm.running_var + norm.momentum * batch_var

    def heads_batch(
        self,
        policy: Any,
        per_query: np.ndarray,
        global_state: np.ndarray,
        snapshots: list[Any],
        clusters: Any = None,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        if clusters is not None:
            # Cluster pooling is per-snapshot Python work on NumPy arrays;
            # the shared fastinfer path handles it.
            return None
        torch = self._torch
        self._refresh_heads(policy)
        with torch.no_grad():
            logits, values = self._heads_module(
                torch.from_numpy(np.ascontiguousarray(per_query, dtype=np.float32)),
                torch.from_numpy(np.ascontiguousarray(global_state, dtype=np.float32)),
            )
        return logits.numpy(), values.numpy()

    def scalar_forward(
        self,
        policy: Any,
        plan_embeddings: np.ndarray,
        snapshot: Any,
        mask: np.ndarray,
        clusters: Any = None,
    ) -> tuple[np.ndarray, float] | None:
        if clusters is not None:
            return None
        per_query, global_state = self.encode_batch(
            policy.state_encoder, plan_embeddings, [snapshot]
        )
        heads = self.heads_batch(policy, per_query, global_state, [snapshot], None)
        if heads is None:  # pragma: no cover - clusters handled above
            return None
        logits, values = heads
        log_probs = fastinfer.masked_log_softmax_array(
            logits[0], np.asarray(mask, dtype=bool)
        )
        return log_probs, float(values[0])


register_backend(TorchBackend.name, TorchBackend)
