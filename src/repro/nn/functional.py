"""Loss functions and stateless helpers built on :mod:`repro.nn.tensor`."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "mse_loss",
    "huber_loss",
    "cross_entropy",
    "nll_loss",
    "kl_divergence",
    "entropy",
    "masked_log_softmax",
    "one_hot",
]


def mse_loss(prediction: Tensor, target: "Tensor | np.ndarray") -> Tensor:
    """Mean squared error ``mean((prediction - target)^2)``."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t.detach()
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: "Tensor | np.ndarray", delta: float = 1.0) -> Tensor:
    """Huber loss, quadratic near zero and linear in the tails."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = prediction - target_t.detach()
    abs_diff = diff.abs()
    quadratic = abs_diff.clip(0.0, delta)
    linear = abs_diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a dense one-hot encoding of integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def cross_entropy(logits: Tensor, target_index: "np.ndarray | int") -> Tensor:
    """Cross-entropy between row-wise ``logits`` and integer class labels."""
    log_probs = logits.log_softmax(axis=-1)
    targets = np.atleast_1d(np.asarray(target_index, dtype=np.int64))
    if log_probs.ndim == 1:
        return -log_probs[int(targets[0])]
    picked = log_probs[np.arange(len(targets)), targets]
    return -picked.mean()


def nll_loss(log_probs: Tensor, target_index: "np.ndarray | int") -> Tensor:
    """Negative log-likelihood given precomputed log-probabilities."""
    targets = np.atleast_1d(np.asarray(target_index, dtype=np.int64))
    if log_probs.ndim == 1:
        return -log_probs[int(targets[0])]
    picked = log_probs[np.arange(len(targets)), targets]
    return -picked.mean()


def kl_divergence(log_p_old: "Tensor | np.ndarray", log_p_new: Tensor) -> Tensor:
    """KL(old || new) from log-probability vectors along the last axis.

    The behaviour-cloning term of IQ-PPO penalises divergence of the updated
    policy from the policy snapshot taken before the auxiliary phase; the old
    distribution is treated as a constant.
    """
    old = log_p_old.data if isinstance(log_p_old, Tensor) else np.asarray(log_p_old)
    p_old = np.exp(old)
    diff = Tensor(old) - log_p_new
    return (Tensor(p_old) * diff).sum(axis=-1).mean()


def entropy(log_probs: Tensor) -> Tensor:
    """Shannon entropy of a categorical distribution given log-probabilities."""
    probs = log_probs.exp()
    return -(probs * log_probs).sum(axis=-1).mean()


def masked_log_softmax(logits: Tensor, mask: np.ndarray, mask_value: float = -1e8) -> Tensor:
    """Log-softmax where entries with ``mask == False`` are effectively removed.

    This is the adaptive-masking primitive from the paper: masked action
    logits are replaced by a large negative constant so their post-softmax
    probability is numerically zero while gradients still flow to unmasked
    entries.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != logits.shape:
        raise ValueError(f"mask shape {mask.shape} != logits shape {logits.shape}")
    if not np.all(mask.any(axis=-1)):
        raise ValueError("masked_log_softmax requires at least one unmasked entry")
    offset = np.where(mask, 0.0, mask_value)
    return (logits + Tensor(offset)).log_softmax(axis=-1)
