"""Configuration dataclasses for every component of the reproduction.

All tunables are grouped into small dataclasses so experiments can be
described declaratively (the benchmark harness builds these from per-figure
presets).  Each dataclass validates itself on construction and raises
:class:`repro.exceptions.ConfigurationError` for out-of-range values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import TYPE_CHECKING

from .exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .seeding import SeedSpawner

__all__ = [
    "EncoderConfig",
    "PPOConfig",
    "SchedulerConfig",
    "SimulatorConfig",
    "ClusteringConfig",
    "MaskingConfig",
    "RetryPolicy",
    "AdmissionPolicy",
    "AutoscalePolicy",
    "ServiceConfig",
    "BQSchedConfig",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


@dataclass
class EncoderConfig:
    """Hyper-parameters of the QueryFormer plan encoder and the state encoder.

    Attributes
    ----------
    plan_embedding_dim:
        Output width of the QueryFormer plan embedding ``e_i``.
    node_hidden_dim:
        Width of node features inside the tree Transformer.
    tree_heads / tree_layers:
        Multi-head attention configuration of the tree Transformer.
    state_dim:
        Width of per-query tokens ``x_i`` fed to the batch-level attention.
    state_heads / state_layers:
        Multi-head attention configuration of the batch-level encoder.
    mlp_layers:
        Depth ``m`` of the per-query MLP combining plan embedding and running
        state features.
    max_height:
        Maximum plan-tree height supported by the height encoding.
    norm:
        ``"batch"`` (paper default) or ``"layer"`` normalisation.
    """

    plan_embedding_dim: int = 32
    node_hidden_dim: int = 32
    tree_heads: int = 4
    tree_layers: int = 2
    state_dim: int = 48
    state_heads: int = 4
    state_layers: int = 2
    mlp_layers: int = 2
    max_height: int = 16
    norm: str = "batch"

    def __post_init__(self) -> None:
        _require(self.plan_embedding_dim > 0, "plan_embedding_dim must be positive")
        _require(self.node_hidden_dim % self.tree_heads == 0, "node_hidden_dim must divide tree_heads")
        _require(self.state_dim % self.state_heads == 0, "state_dim must divide state_heads")
        _require(self.tree_layers >= 1 and self.state_layers >= 1, "attention stacks need >= 1 layer")
        _require(self.mlp_layers >= 1, "mlp_layers must be >= 1")
        _require(self.norm in ("batch", "layer"), "norm must be 'batch' or 'layer'")


@dataclass
class PPOConfig:
    """Hyper-parameters shared by PPO, PPG and IQ-PPO.

    ``aux_every`` is the number of PPO iterations between auxiliary phases
    (``N_ppo`` in Algorithm 1); ``beta_clone`` weighs the behaviour-cloning KL
    term of the IQ-PPO auxiliary objective.

    ``num_envs`` selects the rollout engine: ``1`` (default) keeps the
    original sequential, seed-for-seed reproducible path, while ``N > 1``
    collects episodes from N lockstep environments driven by one batched
    policy forward per decision round, and switches the PPO update (plus the
    PPG / IQ-PPO auxiliary phases) to whole-minibatch batched
    forward/backward passes.

    Note: the :class:`~repro.core.bqsched.RLSchedulerBase` facade upgrades
    its *simulator pre-training* phase to
    ``RLSchedulerBase.pretrain_num_envs`` lockstep envs by default even at
    ``num_envs=1`` (pre-training steps are free, so the speedup is pure
    win); set ``scheduler.pretrain_num_envs = 1`` to force fully sequential,
    legacy-identical pre-training.  Direct ``PPOTrainer`` use always honours
    ``num_envs`` exactly.
    """

    learning_rate: float = 3e-4
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_epsilon: float = 0.2
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    epochs_per_update: int = 4
    minibatch_size: int = 64
    max_grad_norm: float = 0.5
    rollouts_per_update: int = 4
    num_envs: int = 1
    aux_every: int = 10
    aux_epochs: int = 3
    beta_clone: float = 1.0

    def __post_init__(self) -> None:
        _require(self.learning_rate > 0, "learning_rate must be positive")
        _require(0 < self.gamma <= 1, "gamma must be in (0, 1]")
        _require(0 <= self.gae_lambda <= 1, "gae_lambda must be in [0, 1]")
        _require(0 < self.clip_epsilon < 1, "clip_epsilon must be in (0, 1)")
        _require(self.epochs_per_update >= 1, "epochs_per_update must be >= 1")
        _require(self.rollouts_per_update >= 1, "rollouts_per_update must be >= 1")
        _require(self.num_envs >= 1, "num_envs must be >= 1")
        _require(self.aux_every >= 1, "aux_every must be >= 1")


@dataclass
class MaskingConfig:
    """Adaptive masking thresholds (Section IV-A).

    A configuration that allocates more resources is masked for a query when
    both the absolute improvement (seconds) and the relative improvement over
    the cheapest configuration fall below these thresholds.
    """

    enabled: bool = True
    min_absolute_gain: float = 0.25
    min_relative_gain: float = 0.05
    mask_value: float = -1e8

    def __post_init__(self) -> None:
        _require(self.min_absolute_gain >= 0, "min_absolute_gain must be >= 0")
        _require(0 <= self.min_relative_gain < 1, "min_relative_gain must be in [0, 1)")


@dataclass
class ClusteringConfig:
    """Scheduling-gain based query clustering (Section IV-B)."""

    enabled: bool = False
    num_clusters: int = 100
    intra_cluster_order: str = "mcf"
    min_overlap: float = 0.05
    gain_model_hidden: int = 32

    def __post_init__(self) -> None:
        _require(self.num_clusters >= 1, "num_clusters must be >= 1")
        _require(self.intra_cluster_order in ("fifo", "mcf"), "intra_cluster_order must be 'fifo' or 'mcf'")
        _require(0 <= self.min_overlap <= 1, "min_overlap must be in [0, 1]")


@dataclass
class SimulatorConfig:
    """Learned incremental simulator (Section IV-C)."""

    hidden_dim: int = 48
    learning_rate: float = 1e-3
    epochs: int = 20
    batch_size: int = 64
    gamma_regression: float = 0.1
    use_attention: bool = True
    use_multitask: bool = True
    incremental_epochs: int = 5

    def __post_init__(self) -> None:
        _require(self.hidden_dim > 0, "hidden_dim must be positive")
        _require(self.epochs >= 1, "epochs must be >= 1")
        _require(self.gamma_regression >= 0, "gamma_regression must be >= 0")


@dataclass
class SchedulerConfig:
    """Scheduling-problem level settings.

    ``num_connections`` is ``|C|``; ``worker_options`` and ``memory_options``
    enumerate the running-parameter configurations ``R``.
    """

    num_connections: int = 6
    worker_options: tuple[int, ...] = (1, 2)
    memory_options: tuple[int, ...] = (64, 256)
    reward_scale: float = 1.0
    step_penalty: float = 0.0
    #: Extra negative reward per failed/killed attempt observed during a
    #: step: wasted work the makespan alone under-penalises (a killed attempt
    #: freed its connection, but the time it burned helped nobody).  0 keeps
    #: rewards bit-identical to the fault-free tree.
    failure_penalty: float = 0.0
    #: Extra negative reward per completion that misses its tenant class's
    #: latency SLO (see :class:`~repro.runtime.controlplane.TenantClass`).
    #: Only bites when the tenant carries a class with a latency target; 0
    #: (the default) keeps rewards bit-identical to the class-free tree.
    slo_penalty: float = 0.0
    #: Fairness-aware backlog shaping: an extra cost of
    #: ``fairness_weight * priority * elapsed * backlog`` per step charges
    #: the policy for letting high-priority work queue up, discouraging
    #: starvation of important tenants (RLScheduler-style shaping).  0 (the
    #: default) disables the term entirely.
    fairness_weight: float = 0.0
    evaluation_rounds: int = 5
    #: Inference backend for the sampling-path forwards (rollout collection,
    #: evaluation, serving): ``"numpy-ref"`` (default), ``"numpy-cached"``
    #: (incremental cross-step caching, bit-identical) or ``"torch"``
    #: (optional compiled path; degrades to numpy-ref with a warning when
    #: torch is missing).  Resolved against :mod:`repro.nn.backend` when the
    #: scheduler is built, so unknown names fail there with the full list.
    inference_backend: str = "numpy-ref"
    #: Training path for the PPO-family trainers and the performance model:
    #: ``"tape"`` (default, the define-by-run autograd) or ``"fused"`` (the
    #: tape-free analytic kernels in :mod:`repro.nn.fastgrad`; gradients
    #: match the tape to float64 rounding).  Unsupported module
    #: configurations fall back to the tape with a one-time
    #: ``RuntimeWarning`` naming the reason.
    training_path: str = "tape"

    def __post_init__(self) -> None:
        _require(self.num_connections >= 1, "num_connections must be >= 1")
        _require(len(self.worker_options) >= 1, "worker_options must not be empty")
        _require(len(self.memory_options) >= 1, "memory_options must not be empty")
        _require(all(w >= 1 for w in self.worker_options), "worker counts must be >= 1")
        _require(all(m > 0 for m in self.memory_options), "memory options must be positive")
        _require(self.failure_penalty >= 0, "failure_penalty must be >= 0")
        _require(self.slo_penalty >= 0, "slo_penalty must be >= 0")
        _require(self.fairness_weight >= 0, "fairness_weight must be >= 0")
        _require(self.evaluation_rounds >= 1, "evaluation_rounds must be >= 1")
        _require(
            isinstance(self.inference_backend, str) and bool(self.inference_backend),
            "inference_backend must be a non-empty backend name",
        )
        _require(
            self.training_path in ("tape", "fused"),
            "training_path must be 'tape' or 'fused'",
        )

    @property
    def num_configurations(self) -> int:
        """Number of running-parameter configurations per query."""
        return len(self.worker_options) * len(self.memory_options)


@dataclass(frozen=True)
class RetryPolicy:
    """How the event-driven runtime reacts to failed query attempts.

    A query attempt can die three ways: the engine errors out, the runtime's
    straggler ``timeout`` kills it, or its instance goes down mid-flight.
    Errors and timeouts consume one of ``max_attempts`` submissions and are
    retried after an exponential backoff (``backoff * backoff_factor**(k-1)``
    seconds after the ``k``-th failure); once the budget is exhausted the
    query is marked terminally failed so the round can still drain.  Outage
    kills are requeued immediately and never consume an attempt — the query
    did nothing wrong, its instance did.

    ``timeout`` (seconds per attempt, ``None`` disables) is the
    kill-and-requeue defence against stragglers/hangs: a fresh attempt on a
    healthy connection is usually cheaper than waiting out a hung one.
    """

    max_attempts: int = 3
    backoff: float = 0.5
    backoff_factor: float = 2.0
    timeout: float | None = None

    def __post_init__(self) -> None:
        _require(self.max_attempts >= 1, "max_attempts must be >= 1")
        _require(self.backoff >= 0, "backoff must be >= 0")
        _require(self.backoff_factor >= 1, "backoff_factor must be >= 1")
        _require(self.timeout is None or self.timeout > 0, "timeout must be positive (or None)")

    def delay_for(self, failed_attempt: int) -> float:
        """Backoff delay after the ``failed_attempt``-th failed submission."""
        _require(failed_attempt >= 1, "failed_attempt must be >= 1")
        return self.backoff * self.backoff_factor ** (failed_attempt - 1)


@dataclass(frozen=True)
class AdmissionPolicy:
    """Token-bucket admission control for the serving control plane.

    Every open (non-time-zero) arrival asks the
    :class:`~repro.runtime.controlplane.AdmissionController` for a token.
    The bucket holds at most ``burst`` tokens and refills continuously at
    ``rate`` tokens per second of simulated time; an arrival that finds the
    bucket empty is *shed* — marked failed immediately so the round still
    drains, and recorded in the per-tenant shed ledger.

    ``max_pending`` adds a backlog guard on top of the bucket: when the
    runtime-wide number of pending-but-unsubmitted queries is at or above
    it, non-exempt arrivals are shed even if tokens remain (the bucket
    limits *rate*, the backlog cap limits *queue depth*).

    ``exempt_priority`` protects important traffic: arrivals from tenant
    classes with ``priority >= exempt_priority`` bypass both the bucket and
    the backlog cap and are always admitted.  ``None`` exempts nobody.
    """

    rate: float = 8.0
    burst: float = 16.0
    max_pending: int | None = None
    exempt_priority: float | None = None

    def __post_init__(self) -> None:
        _require(self.rate > 0, "admission rate must be positive")
        _require(self.burst >= 1, "admission burst must be >= 1")
        _require(
            self.max_pending is None or self.max_pending >= 1,
            "max_pending must be >= 1 (or None)",
        )


@dataclass(frozen=True)
class AutoscalePolicy:
    """Elastic fleet sizing for the serving control plane.

    The :class:`~repro.runtime.controlplane.FleetController` watches the
    runtime backlog and parks/unparks cluster instances mid-service:
    a scale-down is a planned outage (the instance's running queries are
    killed and requeued exactly like an
    :class:`~repro.dbms.OutageWindow` hit, consuming no retry budget), a
    scale-up is a recovery wakeup (the instance's connections rejoin the
    idle pool immediately).

    Scaling triggers on backlog per *up* instance: above
    ``target_backlog`` an instance is unparked, below ``low_water`` one is
    parked, never leaving fewer than ``min_instances`` or more than
    ``max_instances`` up (``max_instances=0`` means the whole fleet).
    ``cooldown`` seconds of simulated time must pass between scale events
    so the fleet does not thrash; ``initial_instances`` starts the round
    with only that many instances up (``None`` starts the full fleet).
    """

    min_instances: int = 1
    max_instances: int = 0
    target_backlog: float = 8.0
    low_water: float = 2.0
    cooldown: float = 2.0
    initial_instances: int | None = None

    def __post_init__(self) -> None:
        _require(self.min_instances >= 1, "min_instances must be >= 1")
        _require(
            self.max_instances == 0 or self.max_instances >= self.min_instances,
            "max_instances must be 0 (whole fleet) or >= min_instances",
        )
        _require(self.target_backlog > 0, "target_backlog must be positive")
        _require(0 <= self.low_water < self.target_backlog,
                 "low_water must be in [0, target_backlog)")
        _require(self.cooldown >= 0, "cooldown must be >= 0")
        _require(
            self.initial_instances is None or self.initial_instances >= self.min_instances,
            "initial_instances must be >= min_instances (or None)",
        )


@dataclass
class ServiceConfig:
    """Event-driven serving: multi-tenant rounds and streaming arrivals.

    Used by :meth:`repro.core.bqsched.RLSchedulerBase.serve`, which runs the
    trained policy as a continuous scheduler over an
    :class:`~repro.runtime.ExecutionRuntime`.  ``num_tenants`` independent
    copies of the batch share one engine's connections and buffer pool;
    ``arrival_process`` opens each tenant's batch into a stream
    (``closed`` / ``poisson`` / ``bursty`` / ``flash-crowd``) at ``arrival_rate`` queries per
    second, with ``burst_size`` queries per burst in the bursty case.

    ``cluster_instances`` declares the engine fleet the service runs on, as
    per-instance profile short-names (e.g. ``("x", "x", "z")`` — a mixed
    fleet of two DBMS-X servers and one DBMS-Z system).  Empty (the default)
    means a single engine; :meth:`repro.dbms.Cluster.from_service_config`
    materialises a declared fleet with per-instance seeds derived from the
    experiment seed.

    The control-plane knobs are all opt-in and default off:
    ``tenant_classes`` assigns each tenant a
    :class:`~repro.runtime.controlplane.TenantClass` (tenant ``i`` gets
    ``tenant_classes[i % len(tenant_classes)]``), ``admission`` turns on
    token-bucket admission control / load shedding, and ``autoscale``
    lets the fleet grow and shrink with the backlog.  Left at their
    defaults, serving behaves bit-for-bit like the class-free tree.
    """

    num_tenants: int = 2
    arrival_process: str = "closed"
    arrival_rate: float = 2.0
    burst_size: int = 4
    base_round_id: int = 80_000
    cluster_instances: tuple[str, ...] = ()
    tenant_classes: tuple = ()
    admission: AdmissionPolicy | None = None
    autoscale: AutoscalePolicy | None = None

    def __post_init__(self) -> None:
        _require(self.num_tenants >= 1, "num_tenants must be >= 1")
        _require(
            self.arrival_process in ("closed", "poisson", "bursty", "flash-crowd"),
            "arrival_process must be 'closed', 'poisson', 'bursty' or 'flash-crowd'",
        )
        _require(self.arrival_rate > 0, "arrival_rate must be positive")
        _require(self.burst_size >= 1, "burst_size must be >= 1")
        _require(self.base_round_id >= 0, "base_round_id must be >= 0")
        _require(
            all(isinstance(name, str) and name for name in self.cluster_instances),
            "cluster_instances must be non-empty profile names",
        )
        # TenantClass lives in repro.runtime.controlplane (the config layer
        # must not import the runtime), so validate by shape instead of type.
        _require(
            all(
                hasattr(cls, "name") and hasattr(cls, "priority")
                for cls in self.tenant_classes
            ),
            "tenant_classes must be TenantClass instances",
        )
        _require(
            self.admission is None or isinstance(self.admission, AdmissionPolicy),
            "admission must be an AdmissionPolicy (or None)",
        )
        _require(
            self.autoscale is None or isinstance(self.autoscale, AutoscalePolicy),
            "autoscale must be an AutoscalePolicy (or None)",
        )


@dataclass
class BQSchedConfig:
    """Top-level configuration aggregating every component."""

    encoder: EncoderConfig = field(default_factory=EncoderConfig)
    ppo: PPOConfig = field(default_factory=PPOConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    masking: MaskingConfig = field(default_factory=MaskingConfig)
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    simulator: SimulatorConfig = field(default_factory=SimulatorConfig)
    service: ServiceConfig = field(default_factory=ServiceConfig)
    seed: int = 0

    def to_dict(self) -> dict:
        """Return a plain-dict snapshot (for logging and EXPERIMENTS.md)."""
        return asdict(self)

    def seed_spawner(self) -> "SeedSpawner":
        """Root of the experiment's deterministic entropy tree.

        Every stochastic component (engines, cluster instances, simulator,
        arrival processes, rollout sampling) derives its generator from this
        spawner, so identical configs reproduce identical results on the
        env, vec-env and runtime paths (see :mod:`repro.seeding`).
        """
        from .seeding import SeedSpawner

        return SeedSpawner(self.seed)

    @classmethod
    def small(cls, seed: int = 0) -> "BQSchedConfig":
        """A reduced-size configuration used by tests and CI-scale benchmarks."""
        return cls(
            encoder=EncoderConfig(
                plan_embedding_dim=16,
                node_hidden_dim=16,
                tree_heads=2,
                tree_layers=1,
                state_dim=24,
                state_heads=2,
                state_layers=1,
            ),
            ppo=PPOConfig(rollouts_per_update=2, epochs_per_update=2, minibatch_size=32, aux_every=4),
            scheduler=SchedulerConfig(num_connections=4),
            simulator=SimulatorConfig(hidden_dim=24, epochs=5),
            seed=seed,
        )
