"""The unified performance-model layer.

:class:`PerformanceModel` owns the whole prediction stack: the feature
pipeline (:class:`~repro.perf.features.PerformanceFeaturizer`), the
multitask :class:`~repro.perf.model.ConcurrentPredictionModel`, training
from historical logs, continual fine-tuning from online logs, and the
isolated-cost estimates the masking / placement layers consume through the
:class:`~repro.perf.features.PerformanceEstimator` protocol.

One model serves a whole fleet: training examples are reconstructed *per
engine instance* from instance-tagged
:class:`~repro.dbms.logs.QueryExecutionRecord` entries, and every example's
rows carry the instance-context channel, so the same network learns the
dynamics of a fast and a slow instance side by side (fine-grained
performance prediction on concurrent queries, arXiv:2501.16256).  At
``num_instances == 1`` the entire pipeline — rng stream, feature layout,
fit order — is bit-identical to the historical single-engine
``LearnedSimulator`` internals.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..config import SimulatorConfig
from ..dbms import ConfigurationSpace, ExecutionLog
from ..exceptions import SimulationError
from ..nn import Adam, cross_entropy, fastgrad, no_grad
from ..workloads import BatchQuerySet
from .features import MIN_REMAINING, PerformanceEstimator, PerformanceFeaturizer, TIME_SCALE
from .model import ConcurrentPredictionModel, SimulatorMetrics

__all__ = ["PerformanceModel", "PredictionExample"]


@dataclass
class PredictionExample:
    """One training example derived from a concurrency snapshot."""

    features: np.ndarray
    earliest_index: int
    earliest_remaining: float
    instance: int = 0


class PerformanceModel:
    """Learned concurrent-query performance prediction over logs.

    ``instance_speeds`` declares the fleet the model predicts for (empty or
    length-1 keeps the single-engine pipeline).  The model also satisfies the
    :class:`~repro.perf.features.PerformanceEstimator` protocol: isolated
    expected times are read off the regressor at zero elapsed time, so
    consumers like the greedy-cost placement baseline can price queries from
    the learned model instead of private engine estimates.
    """

    def __init__(
        self,
        batch: BatchQuerySet,
        plan_embeddings: np.ndarray,
        knowledge: PerformanceEstimator,
        config_space: ConfigurationSpace,
        config: SimulatorConfig,
        seed: int = 0,
        instance_speeds: Sequence[float] = (),
        training_path: str = "tape",
    ) -> None:
        if training_path not in ("tape", "fused"):
            raise ValueError("training_path must be 'tape' or 'fused'")
        self.batch = batch
        self.knowledge = knowledge
        self.config_space = config_space
        self.config = config
        self.seed = seed
        self.featurizer = PerformanceFeaturizer(
            plan_embeddings=plan_embeddings,
            config_space=config_space,
            estimator=knowledge,
            instance_speeds=instance_speeds,
        )
        rng = np.random.default_rng(seed)
        self.model = ConcurrentPredictionModel(
            feature_dim=self.featurizer.feature_dim,
            hidden_dim=config.hidden_dim,
            rng=rng,
            use_attention=config.use_attention,
        )
        self.optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        self._rng = rng
        self.training_path = training_path
        self._fused_checked = False
        self._fused_reason: str | None = None
        self._arena: fastgrad.Arena | None = None

    def _use_fused_fit(self) -> bool:
        """Whether ``fit`` should run the tape-free fused kernels.

        Resolved once per model; an unsupported architecture falls back to
        the tape with a single audible warning.
        """
        if self.training_path != "fused":
            return False
        if not self._fused_checked:
            self._fused_checked = True
            self._fused_reason = fastgrad.perfmodel_training_reason(self.model)
            if self._fused_reason is not None:
                warnings.warn(
                    f"training_path='fused' falling back to the tape: {self._fused_reason}",
                    RuntimeWarning,
                    stacklevel=3,
                )
            else:
                self._arena = fastgrad.Arena()
        return self._fused_reason is None

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        return self.featurizer.num_instances

    @property
    def per_instance(self) -> bool:
        """Whether examples and predictions are scoped per engine instance."""
        return self.featurizer.instance_channel_dim > 0

    # ------------------------------------------------------------------ #
    # Example construction
    # ------------------------------------------------------------------ #
    def examples_from_log(self, log: ExecutionLog) -> list[PredictionExample]:
        """Training examples from (possibly instance-tagged) execution logs.

        On fleets every concurrency snapshot is reconstructed within one
        instance's records (queries on different instances do not share
        resources); single-engine logs keep the historical single stream.
        """
        examples = []
        for snapshot in log.concurrency_snapshots(per_instance=self.per_instance):
            features = self.featurizer.rows(
                snapshot.running_query_ids, snapshot.parameters, snapshot.elapsed, instance=snapshot.instance
            )
            examples.append(
                PredictionExample(
                    features=features,
                    earliest_index=snapshot.earliest_index,
                    earliest_remaining=snapshot.earliest_remaining,
                    instance=snapshot.instance,
                )
            )
        return examples

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train_from_log(
        self, log: ExecutionLog, epochs: int | None = None, validation_fraction: float = 0.2
    ) -> SimulatorMetrics:
        """Train the prediction model from historical logs.

        A held-out fraction of the snapshots is used to report the
        classification accuracy and regression MSE of Table III.
        """
        examples = self.examples_from_log(log)
        if len(examples) < 4:
            raise SimulationError("not enough concurrency snapshots in the log to train the simulator")
        self._rng.shuffle(examples)  # type: ignore[arg-type]
        split = max(1, int(len(examples) * validation_fraction))
        validation, training = examples[:split], examples[split:]
        self.fit(training, epochs or self.config.epochs)
        return self.evaluate_examples(validation)

    def update_from_log(self, log: ExecutionLog) -> SimulatorMetrics:
        """Incrementally fine-tune on freshly collected (online) logs."""
        examples = self.examples_from_log(log)
        if not examples:
            raise SimulationError("online log contains no concurrency snapshots")
        self.fit(examples, self.config.incremental_epochs)
        return self.evaluate_examples(examples)

    def fit(self, examples: list[PredictionExample], epochs: int) -> None:
        if not examples:
            return
        order = list(range(len(examples)))
        if self._use_fused_fit():
            assert self._arena is not None
            for _ in range(epochs):
                self._rng.shuffle(order)
                for index in order:
                    example = examples[index]
                    self.optimizer.zero_grad()
                    fastgrad.perfmodel_example_step(
                        self.model,
                        example.features,
                        example.earliest_index,
                        (
                            example.earliest_remaining / TIME_SCALE
                            if self.config.use_multitask
                            else None
                        ),
                        self.config.gamma_regression,
                        self._arena,
                    )
                    self.optimizer.step()
                    self._arena.reset()
            return
        for _ in range(epochs):
            self._rng.shuffle(order)
            for index in order:
                example = examples[index]
                logits, times = self.model(example.features)
                classification = cross_entropy(logits, example.earliest_index)
                target = example.earliest_remaining / TIME_SCALE
                prediction = times[example.earliest_index]
                regression = (prediction - target) ** 2
                loss = classification
                if self.config.use_multitask:
                    loss = loss + self.config.gamma_regression * regression
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def evaluate_examples(self, examples: list[PredictionExample]) -> SimulatorMetrics:
        """Accuracy / MSE of the model on a set of examples."""
        if not examples:
            return SimulatorMetrics(accuracy=float("nan"), mse=float("nan"), num_examples=0)
        correct = 0
        squared_errors = []
        with no_grad():
            for example in examples:
                logits, times = self.model(example.features)
                predicted_index = int(np.argmax(logits.data))
                correct += int(predicted_index == example.earliest_index)
                predicted_time = float(times.data[predicted_index])
                squared_errors.append((predicted_time - example.earliest_remaining / TIME_SCALE) ** 2)
        return SimulatorMetrics(
            accuracy=correct / len(examples),
            mse=float(np.mean(squared_errors)),
            num_examples=len(examples),
        )

    def evaluate_on_log(self, log: ExecutionLog) -> SimulatorMetrics:
        """Evaluate on all snapshots of ``log`` without training."""
        return self.evaluate_examples(self.examples_from_log(log))

    def metrics_by_instance(self, log: ExecutionLog) -> dict[int, SimulatorMetrics]:
        """Per-engine-instance fidelity of the model on ``log``.

        The Table-III metrics, broken out by the instance each concurrency
        snapshot was reconstructed on — the per-instance sim-fidelity report
        of ``benchmarks/bench_cluster_sim_pretrain.py``.
        """
        by_instance: dict[int, list[PredictionExample]] = {}
        for example in self.examples_from_log(log):
            by_instance.setdefault(example.instance, []).append(example)
        return {
            instance: self.evaluate_examples(examples)
            for instance, examples in sorted(by_instance.items())
        }

    # ------------------------------------------------------------------ #
    # PerformanceEstimator protocol (learned cost estimates)
    # ------------------------------------------------------------------ #
    def isolated_estimate(self, query_id: int, config_index: int, instance: int = 0) -> float:
        """Model-predicted isolated execution time on ``instance`` (seconds)."""
        features = self.featurizer.rows(
            [query_id], [self.config_space[config_index]], [0.0], instance=instance
        )
        _, times = self.model.predict(features)
        return max(MIN_REMAINING, float(times[0]) * TIME_SCALE)

    def expected_time(self, query_id: int, config_index: int) -> float:
        """Learned expected execution time (reference instance 0)."""
        return self.isolated_estimate(query_id, config_index)

    def average_time(self, query_id: int) -> float:
        """Learned expected time under the default configuration."""
        return self.expected_time(query_id, 0)

    def improvement_profile(self, query_id: int) -> dict[int, tuple[float, float]]:
        """Absolute / relative gain of each configuration over the cheapest one."""
        baseline = self.expected_time(query_id, 0)
        profile: dict[int, tuple[float, float]] = {}
        for index in range(len(self.config_space)):
            absolute = baseline - self.expected_time(query_id, index)
            relative = absolute / baseline if baseline > 0 else 0.0
            profile[index] = (absolute, relative)
        return profile
