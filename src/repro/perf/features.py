"""Feature pipeline of the performance-prediction stack.

The learned simulator, the cluster simulator and the cost estimates exposed
to the baselines all consume the same per-query feature rows: the query's
QueryFormer plan embedding, a one-hot of its running-parameter
configuration, the normalised elapsed time and the normalised expected
execution time from external knowledge.  On a heterogeneous fleet an
*instance-context channel* is appended to every row — the relative hardware
speed of the engine instance the concurrent group runs on and its current
concurrency level — so one model can predict earliest-finisher / remaining
time per engine instance (resource-state-conditioned prediction in the
spirit of arXiv:2007.10568).

At ``num_instances == 1`` the channel is absent and the rows are bit-for-bit
identical to the historical single-engine simulator features, which is what
keeps the ``num_instances=1`` simulated path digest-pinned.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..dbms import ConfigurationSpace, RunningParameters
from ..exceptions import SimulationError

__all__ = ["PerformanceEstimator", "PerformanceFeaturizer", "TIME_SCALE", "MIN_REMAINING"]

#: Normalisation scale of every time-valued feature / prediction (seconds).
TIME_SCALE = 10.0
#: Floor on a predicted remaining time (keeps the simulated clock moving).
MIN_REMAINING = 0.05
#: Soft scale of the per-instance concurrency feature.
_CONCURRENCY_SCALE = 8.0
#: Width of the per-row instance-context channel (speed, concurrency).
INSTANCE_CHANNEL_DIM = 2


@runtime_checkable
class PerformanceEstimator(Protocol):
    """Per-query execution-cost estimates every consumer types against.

    Satisfied by the log/probe-derived
    :class:`~repro.core.knowledge.ExternalKnowledge` and by the learned
    :class:`~repro.perf.PerformanceModel`, so adaptive masking and the
    greedy-cost placement baseline can run from either source of estimates
    instead of private engine internals.
    """

    def expected_time(self, query_id: int, config_index: int) -> float:
        """Expected execution time of ``query_id`` under a configuration."""
        ...  # pragma: no cover - protocol

    def average_time(self, query_id: int) -> float:
        """Overall expected execution time of ``query_id`` (MCF's cost)."""
        ...  # pragma: no cover - protocol

    def improvement_profile(self, query_id: int) -> dict[int, tuple[float, float]]:
        """Absolute / relative gain of each configuration over the cheapest."""
        ...  # pragma: no cover - protocol


class PerformanceFeaturizer:
    """Builds the ``(k, feature_dim)`` model input for one concurrent group.

    ``instance_speeds`` declares the fleet: with two or more instances every
    row gains the instance-context channel; empty or single-instance fleets
    keep the exact legacy layout.  All ``k`` queries of one call run on the
    same instance (predictions are scoped per engine instance).
    """

    def __init__(
        self,
        plan_embeddings: np.ndarray,
        config_space: ConfigurationSpace,
        estimator: PerformanceEstimator,
        instance_speeds: Sequence[float] = (),
        time_scale: float = TIME_SCALE,
    ) -> None:
        self.plan_embeddings = plan_embeddings
        self.config_space = config_space
        self.estimator = estimator
        self.instance_speeds = tuple(float(speed) for speed in instance_speeds)
        self.time_scale = time_scale

    @property
    def num_instances(self) -> int:
        return max(1, len(self.instance_speeds))

    @property
    def instance_channel_dim(self) -> int:
        """Width of the per-row instance channel (0 on single-engine setups)."""
        return INSTANCE_CHANNEL_DIM if len(self.instance_speeds) > 1 else 0

    @property
    def feature_dim(self) -> int:
        return self.plan_embeddings.shape[1] + len(self.config_space) + 2 + self.instance_channel_dim

    @property
    def elapsed_column(self) -> int:
        """Index of the ``tanh(elapsed)`` entry in a feature row."""
        return self.plan_embeddings.shape[1] + len(self.config_space)

    @property
    def concurrency_column(self) -> int:
        """Index of the per-instance concurrency entry (fleets only)."""
        if not self.instance_channel_dim:
            raise SimulationError("single-engine features carry no instance channel")
        return self.feature_dim - 1

    def speed_of(self, instance: int) -> float:
        if not self.instance_speeds:
            return 1.0
        if not 0 <= instance < len(self.instance_speeds):
            raise SimulationError(
                f"instance {instance} out of range (fleet has {len(self.instance_speeds)})"
            )
        return self.instance_speeds[instance]

    def rows(
        self,
        query_ids: Sequence[int],
        parameters: Sequence[RunningParameters],
        elapsed: Sequence[float],
        instance: int = 0,
    ) -> np.ndarray:
        """Feature rows for ``k`` queries running concurrently on ``instance``."""
        channel_dim = self.instance_channel_dim
        if channel_dim:
            speed = self.speed_of(instance)
            concurrency = float(np.tanh(len(query_ids) / _CONCURRENCY_SCALE))
        rows = []
        for query_id, params, elapsed_time in zip(query_ids, parameters, elapsed):
            config_index = self.config_space.index_of(params)
            config_onehot = np.zeros(len(self.config_space))
            config_onehot[config_index] = 1.0
            expected = self.estimator.expected_time(query_id, config_index)
            parts = [
                self.plan_embeddings[query_id],
                config_onehot,
                [np.tanh(elapsed_time / self.time_scale), np.tanh(expected / self.time_scale)],
            ]
            if channel_dim:
                parts.append([speed, concurrency])
            rows.append(np.concatenate(parts))
        return np.stack(rows, axis=0)

    def rewrite_dynamic_columns(self, features: np.ndarray, elapsed: np.ndarray) -> None:
        """Refresh the step-dependent entries of cached feature rows in place.

        A query's plan embedding, configuration one-hot, expected time and
        instance speed are fixed from submission to completion; only the
        elapsed time (and, on fleets, the instance's concurrency level)
        change between advances.
        """
        features[:, self.elapsed_column] = np.tanh(elapsed / self.time_scale)
        if self.instance_channel_dim:
            features[:, self.concurrency_column] = np.tanh(features.shape[0] / _CONCURRENCY_SCALE)
