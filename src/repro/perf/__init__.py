"""The unified performance-model layer (paper Section IV-C, cluster-capable).

``repro.perf`` owns everything that *predicts* query performance:

* :class:`PerformanceFeaturizer` — the shared feature pipeline (plan
  embedding ‖ configuration one-hot ‖ elapsed ‖ expected time, plus the
  instance-context channel on fleets);
* :class:`ConcurrentPredictionModel` — the multitask earliest-finisher /
  remaining-time network;
* :class:`PerformanceModel` — training from (instance-tagged) logs,
  continual fine-tuning from online logs, per-instance fidelity metrics and
  learned cost estimates;
* :class:`SimulatedCluster` / :class:`SimulatedClusterSession` — the
  simulated fleet the RL policy pre-trains against;
* :class:`PerformanceEstimator` — the protocol adaptive masking and the
  greedy-cost placement baseline type against (satisfied by both the
  log-derived external knowledge and the learned model).

The single-engine ``LearnedSimulator`` in :mod:`repro.core.simulator` is a
thin wrapper over this layer.
"""

from .features import MIN_REMAINING, PerformanceEstimator, PerformanceFeaturizer, TIME_SCALE
from .model import ConcurrentPredictionModel, SimulatorMetrics
from .perfmodel import PerformanceModel, PredictionExample
from .simcluster import SimulatedCluster, SimulatedClusterSession

__all__ = [
    "MIN_REMAINING",
    "TIME_SCALE",
    "PerformanceEstimator",
    "PerformanceFeaturizer",
    "ConcurrentPredictionModel",
    "SimulatorMetrics",
    "PerformanceModel",
    "PredictionExample",
    "SimulatedCluster",
    "SimulatedClusterSession",
]
