"""A learned-simulator stand-in for a whole heterogeneous fleet.

:class:`SimulatedCluster` mirrors :class:`~repro.dbms.Cluster` the way the
single-engine ``LearnedSimulator`` mirrors a
:class:`~repro.dbms.DatabaseEngine`: it opens
:class:`SimulatedClusterSession` rounds that speak the cluster session
protocol — placement-aware ``submit(query_id, params, instance=)``,
per-instance logical clocks unified behind one round clock, deterministic
completion merging (earliest predicted finish wins, instance index breaks
ties), bounded ``advance(limit)`` and ``defer``/``release`` for streaming
arrivals — so the :class:`~repro.runtime.ExecutionRuntime`, the
:class:`~repro.core.cluster_env.ClusterSchedulingEnv` and the vectorized
rollout engine run against a simulated fleet unchanged.

Every advance asks the shared :class:`~repro.perf.PerformanceModel` one
question per busy instance: *of the queries running on this instance, which
finishes first and when?*  At ``num_instances == 1`` the arithmetic —
feature rows, prediction, clock updates, connection allocation — is
bit-for-bit the single-engine ``SimulatedSession``'s (digest-pinned in
``tests/test_perf.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..dbms import INSTANCE_FEATURE_DIM, QueryExecutionRecord, RoundLog, RunningParameters
from ..dbms.engine import CompletionEvent, RunningQueryState
from ..exceptions import SimulationError
from ..workloads import BatchQuerySet, Query
from .features import MIN_REMAINING, TIME_SCALE
from .perfmodel import PerformanceModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dbms import Cluster

__all__ = ["SimulatedCluster", "SimulatedClusterSession"]


class _SimulatedInstance:
    """Per-instance execution state behind one simulated fleet round."""

    def __init__(self, index: int, num_connections: int) -> None:
        if num_connections < 1:
            raise SimulationError("num_connections must be >= 1")
        self.index = index
        self.num_connections = num_connections
        self.idle = num_connections
        self.clock = 0.0
        self.running: dict[int, RunningQueryState] = {}
        self.feature_rows: dict[int, np.ndarray] = {}

    @property
    def has_idle_connection(self) -> bool:
        return self.idle > 0


class SimulatedCluster:
    """Opens simulated fleet rounds served by one :class:`PerformanceModel`."""

    def __init__(
        self,
        perf: PerformanceModel,
        instance_connections: Sequence[int],
        name: str = "simulated-cluster",
    ) -> None:
        if not instance_connections:
            raise SimulationError("a simulated cluster needs at least one instance")
        if len(instance_connections) != perf.num_instances:
            raise SimulationError(
                f"performance model covers {perf.num_instances} instances, "
                f"got {len(instance_connections)} connection counts"
            )
        self.perf = perf
        self.instance_connections = tuple(int(count) for count in instance_connections)
        self.name = name
        self._round_counter = 0

    @classmethod
    def for_cluster(cls, perf: PerformanceModel, cluster: "Cluster", name: str | None = None) -> "SimulatedCluster":
        """A simulated twin of ``cluster`` (same topology and defaults)."""
        connections = [engine.profile.default_connections for engine in cluster.engines]
        return cls(perf, connections, name=name or f"simulated-{cluster.name}")

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        return len(self.instance_connections)

    def speed_factors(self) -> tuple[float, ...]:
        speeds = self.perf.featurizer.instance_speeds
        return speeds if speeds else (1.0,) * self.num_instances

    # ------------------------------------------------------------------ #
    # Backend protocol
    # ------------------------------------------------------------------ #
    def new_session(
        self,
        batch: BatchQuerySet,
        num_connections: int | None = None,
        strategy: str = "",
        round_id: int | None = None,
    ) -> "SimulatedClusterSession":
        """Open one simulated round across every instance.

        ``num_connections`` is *per instance* (the cluster convention);
        ``None`` uses each instance's default connection count.
        """
        if round_id is None:
            round_id = self._round_counter
        self._round_counter = max(self._round_counter, round_id) + 1
        connections = [
            num_connections if num_connections is not None else default
            for default in self.instance_connections
        ]
        return SimulatedClusterSession(
            cluster=self,
            batch=batch,
            instance_connections=connections,
            strategy=strategy,
            round_id=round_id,
        )

    def __repr__(self) -> str:
        return f"SimulatedCluster({self.name!r}, instances={self.num_instances})"


class SimulatedClusterSession:
    """One simulated scheduling round across a fleet of engine instances."""

    supports_lockstep = False

    def __init__(
        self,
        cluster: SimulatedCluster,
        batch: BatchQuerySet,
        instance_connections: Sequence[int],
        strategy: str = "",
        round_id: int = 0,
    ) -> None:
        self.cluster = cluster
        self.perf = cluster.perf
        self.batch = batch
        self.round_id = round_id
        self.current_time = 0.0
        self.pending: list[int] = [query.query_id for query in batch]
        self.deferred: list[int] = []
        self.finished: dict[int, float] = {}
        self.log = RoundLog(round_id=round_id, strategy=strategy or "simulated")
        self.instances = [
            _SimulatedInstance(index, count) for index, count in enumerate(instance_connections)
        ]
        self._placement: dict[int, int] = {}
        self._connection_offsets: list[int] = []
        offset = 0
        for count in instance_connections:
            self._connection_offsets.append(offset)
            offset += int(count)
        self.num_connections = offset

    # ------------------------------------------------------------------ #
    # Cluster topology
    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        return len(self.instances)

    def instance_of(self, query_id: int) -> int:
        """The instance a running/finished query was placed on (-1 if never)."""
        return self._placement.get(query_id, -1)

    def idle_instances(self) -> list[int]:
        return [instance.index for instance in self.instances if instance.has_idle_connection]

    def instance_num_running(self) -> list[int]:
        return [len(instance.running) for instance in self.instances]

    def speed_factors(self) -> tuple[float, ...]:
        return self.cluster.speed_factors()

    def instance_context(self) -> np.ndarray:
        """Observable per-instance context, mirroring the real cluster's.

        The simulator has no buffer pool, so the buffer-fill column stays
        zero; speed, busy fraction and capacity share match the layout of
        :meth:`~repro.dbms.cluster.ClusterSession.instance_context`.
        """
        context = np.zeros((self.num_instances, INSTANCE_FEATURE_DIM), dtype=np.float64)
        speeds = self.speed_factors()
        total_connections = max(1, self.num_connections)
        for index, instance in enumerate(self.instances):
            context[index, 0] = speeds[index]
            context[index, 1] = len(instance.running) / instance.num_connections
            context[index, 2] = instance.num_connections / total_connections
        return context

    # ------------------------------------------------------------------ #
    # Session protocol: state
    # ------------------------------------------------------------------ #
    @property
    def is_done(self) -> bool:
        return not self.pending and not self.deferred and self.num_running == 0

    @property
    def running(self) -> dict[int, RunningQueryState]:
        """Aggregated running-state view across every instance."""
        merged: dict[int, RunningQueryState] = {}
        for instance in self.instances:
            merged.update(instance.running)
        return merged

    @property
    def has_idle_connection(self) -> bool:
        return any(instance.has_idle_connection for instance in self.instances)

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    @property
    def num_running(self) -> int:
        return sum(len(instance.running) for instance in self.instances)

    @property
    def makespan(self) -> float:
        return max(self.finished.values(), default=0.0)

    def pending_queries(self) -> list[Query]:
        return [self.batch[i] for i in self.pending]

    def running_states(self) -> list[RunningQueryState]:
        return list(self.running.values())

    # ------------------------------------------------------------------ #
    # Session protocol: streaming arrivals
    # ------------------------------------------------------------------ #
    def defer(self, query_ids: "list[int]") -> None:
        for query_id in query_ids:
            if query_id not in self.pending:
                raise SimulationError(f"query {query_id} is not pending and cannot be deferred")
            self.pending.remove(query_id)
            self.deferred.append(query_id)

    def release(self, query_id: int) -> None:
        if query_id not in self.deferred:
            raise SimulationError(f"query {query_id} is not deferred")
        self.deferred.remove(query_id)
        self.pending.append(query_id)

    def unarrived_ids(self) -> "tuple[int, ...]":
        return tuple(self.deferred)

    def arrival_time(self, query_id: int) -> float:
        return 0.0

    # ------------------------------------------------------------------ #
    # Session protocol: scheduling
    # ------------------------------------------------------------------ #
    def submit(self, query_id: int, parameters: RunningParameters, instance: int = 0) -> int:
        """Submit a pending query to ``instance`` at the current logical time.

        Returns the *global* connection id (instance connection offsets),
        matching :meth:`~repro.dbms.cluster.ClusterSession.submit`.
        """
        if not 0 <= instance < self.num_instances:
            raise SimulationError(f"instance {instance} out of range (fleet has {self.num_instances})")
        if query_id not in self.pending:
            raise SimulationError(f"query {query_id} is not pending in the simulator")
        target = self.instances[instance]
        if target.idle <= 0:
            raise SimulationError(f"instance {instance} has no idle connection in the simulated session")
        target.idle -= 1
        connection = target.num_connections - target.idle - 1
        self.pending.remove(query_id)
        self._placement[query_id] = instance
        target.running[query_id] = RunningQueryState(
            query=self.batch[query_id],
            parameters=parameters,
            connection=connection,
            submit_time=self.current_time,
            remaining_work=1.0,
            total_work=1.0,
        )
        return self._connection_offsets[instance] + connection

    def _feature_row(self, instance: _SimulatedInstance, state: RunningQueryState) -> np.ndarray:
        """Cached per-query feature row (dynamic slots rewritten per advance)."""
        query_id = state.query.query_id
        row = instance.feature_rows.get(query_id)
        if row is None:
            row = self.perf.featurizer.rows(
                [query_id], [state.parameters], [0.0], instance=instance.index
            )[0]
            instance.feature_rows[query_id] = row
        return row

    def _instance_prediction(
        self, instance: _SimulatedInstance
    ) -> tuple[float, list[RunningQueryState], int]:
        """Predicted (finish_time, states, earliest index) for one instance."""
        states = list(instance.running.values())
        features = np.stack([self._feature_row(instance, state) for state in states], axis=0)
        elapsed = np.array([self.current_time - state.submit_time for state in states])
        self.perf.featurizer.rewrite_dynamic_columns(features, elapsed)
        logits, times = self.perf.model.predict(features)
        index = int(np.argmax(logits))
        remaining = max(MIN_REMAINING, float(times[index]) * TIME_SCALE)
        return self.current_time + remaining, states, index

    def advance(self, limit: float | None = None) -> CompletionEvent | None:
        """Advance the unified clock to the earliest predicted completion.

        Semantics mirror :meth:`~repro.dbms.cluster.ClusterSession.advance`:
        each busy instance predicts its earliest finisher, the globally
        earliest one is materialised (instance index breaks exact ties), and
        with a ``limit`` the clock never moves past it (``None`` returned).
        """
        if self.num_running == 0:
            if limit is None:
                raise SimulationError("cannot advance: no query running in the simulator")
            self.current_time = max(self.current_time, limit)
            for instance in self.instances:
                instance.clock = self.current_time
            return None
        candidates: list[tuple[float, int, list[RunningQueryState], int]] = []
        for instance in self.instances:
            if not instance.running:
                continue
            finish_time, states, index = self._instance_prediction(instance)
            candidates.append((finish_time, instance.index, states, index))
        finish_time, winner, states, index = min(candidates, key=lambda entry: (entry[0], entry[1]))
        if limit is not None and finish_time > limit:
            self.current_time = limit
            for instance in self.instances:
                instance.clock = self.current_time
            return None
        self.current_time = finish_time
        for instance in self.instances:
            instance.clock = self.current_time
        return self._finish(self.instances[winner], states[index])

    def _finish(self, instance: _SimulatedInstance, state: RunningQueryState) -> CompletionEvent:
        """Materialise one predicted completion into log, state and event."""
        query_id = state.query.query_id
        del instance.running[query_id]
        instance.feature_rows.pop(query_id, None)
        instance.idle += 1
        self.finished[query_id] = self.current_time
        connection = self._connection_offsets[instance.index] + state.connection
        self.log.add(
            QueryExecutionRecord(
                query_id=query_id,
                query_name=state.query.name,
                template_id=state.query.template_id,
                connection=connection,
                parameters=state.parameters,
                submit_time=state.submit_time,
                finish_time=self.current_time,
                instance=instance.index,
            )
        )
        return CompletionEvent(
            query_id=query_id,
            finish_time=self.current_time,
            connection=connection,
            instance=instance.index,
        )
