"""A learned-simulator stand-in for a whole heterogeneous fleet.

:class:`SimulatedCluster` mirrors :class:`~repro.dbms.Cluster` the way the
single-engine ``LearnedSimulator`` mirrors a
:class:`~repro.dbms.DatabaseEngine`: it opens
:class:`SimulatedClusterSession` rounds that speak the cluster session
protocol — placement-aware ``submit(query_id, params, instance=)``,
per-instance logical clocks unified behind one round clock, deterministic
completion merging (earliest predicted finish wins, instance index breaks
ties), bounded ``advance(limit)`` and ``defer``/``release`` for streaming
arrivals — so the :class:`~repro.runtime.ExecutionRuntime`, the
:class:`~repro.core.cluster_env.ClusterSchedulingEnv` and the vectorized
rollout engine run against a simulated fleet unchanged.

Every advance asks the shared :class:`~repro.perf.PerformanceModel` one
question per busy instance: *of the queries running on this instance, which
finishes first and when?*  At ``num_instances == 1`` the arithmetic —
feature rows, prediction, clock updates, connection allocation — is
bit-for-bit the single-engine ``SimulatedSession``'s (digest-pinned in
``tests/test_perf.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..dbms import INSTANCE_FEATURE_DIM, QueryExecutionRecord, RoundLog, RunningParameters
from ..dbms.engine import CompletionEvent, RunningQueryState
from ..dbms.soa import SessionStateArrays
from ..dbms.faults import FAILURE_ERROR, FAILURE_OUTAGE, FAULT_STREAM, FailureProfile, QueryFate
from ..exceptions import SimulationError
from ..seeding import SeedSpawner
from ..workloads import BatchQuerySet, Query
from .features import MIN_REMAINING, TIME_SCALE
from .perfmodel import PerformanceModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dbms import Cluster

__all__ = ["SimulatedCluster", "SimulatedClusterSession"]


class _SimulatedInstance:
    """Per-instance execution state behind one simulated fleet round."""

    def __init__(self, index: int, num_connections: int) -> None:
        if num_connections < 1:
            raise SimulationError("num_connections must be >= 1")
        self.index = index
        self.num_connections = num_connections
        self.idle = num_connections
        self.clock = 0.0
        self.running: dict[int, RunningQueryState] = {}
        self.feature_rows: dict[int, np.ndarray] = {}

    @property
    def has_idle_connection(self) -> bool:
        return self.idle > 0


class SimulatedCluster:
    """Opens simulated fleet rounds served by one :class:`PerformanceModel`."""

    def __init__(
        self,
        perf: PerformanceModel,
        instance_connections: Sequence[int],
        name: str = "simulated-cluster",
        faults: FailureProfile | None = None,
        seed: int = 0,
    ) -> None:
        if not instance_connections:
            raise SimulationError("a simulated cluster needs at least one instance")
        if len(instance_connections) != perf.num_instances:
            raise SimulationError(
                f"performance model covers {perf.num_instances} instances, "
                f"got {len(instance_connections)} connection counts"
            )
        self.perf = perf
        self.instance_connections = tuple(int(count) for count in instance_connections)
        self.name = name
        self.faults = faults
        self.seeds = SeedSpawner(seed)
        self._round_counter = 0

    @classmethod
    def for_cluster(
        cls,
        perf: PerformanceModel,
        cluster: "Cluster",
        name: str | None = None,
        faults: FailureProfile | None = None,
    ) -> "SimulatedCluster":
        """A simulated twin of ``cluster`` (same topology, defaults and faults).

        The twin inherits the real cluster's :class:`FailureProfile` unless an
        explicit ``faults`` overrides it, so simulator pre-training exposes
        the policy to the same failure behaviour the serving fleet exhibits.
        """
        connections = [engine.profile.default_connections for engine in cluster.engines]
        return cls(
            perf,
            connections,
            name=name or f"simulated-{cluster.name}",
            faults=faults if faults is not None else cluster.faults,
        )

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        return len(self.instance_connections)

    def speed_factors(self) -> tuple[float, ...]:
        speeds = self.perf.featurizer.instance_speeds
        return speeds if speeds else (1.0,) * self.num_instances

    # ------------------------------------------------------------------ #
    # Backend protocol
    # ------------------------------------------------------------------ #
    def new_session(
        self,
        batch: BatchQuerySet,
        num_connections: int | None = None,
        strategy: str = "",
        round_id: int | None = None,
        faults: FailureProfile | None = None,
    ) -> "SimulatedClusterSession":
        """Open one simulated round across every instance.

        ``num_connections`` is *per instance* (the cluster convention);
        ``None`` uses each instance's default connection count.  Fault fates
        draw from a dedicated per-round stream mirroring the real engine's
        derivation, so the fault-free path stays bit-identical.
        """
        if round_id is None:
            round_id = self._round_counter
        self._round_counter = max(self._round_counter, round_id) + 1
        connections = [
            num_connections if num_connections is not None else default
            for default in self.instance_connections
        ]
        session_faults = faults if faults is not None else self.faults
        fault_rng = (
            self.seeds.derive(round_id, FAULT_STREAM) if session_faults is not None else None
        )
        return SimulatedClusterSession(
            cluster=self,
            batch=batch,
            instance_connections=connections,
            strategy=strategy,
            round_id=round_id,
            faults=session_faults,
            fault_rng=fault_rng,
        )

    def __repr__(self) -> str:
        return f"SimulatedCluster({self.name!r}, instances={self.num_instances})"


class SimulatedClusterSession:
    """One simulated scheduling round across a fleet of engine instances."""

    supports_lockstep = False

    def __init__(
        self,
        cluster: SimulatedCluster,
        batch: BatchQuerySet,
        instance_connections: Sequence[int],
        strategy: str = "",
        round_id: int = 0,
        faults: FailureProfile | None = None,
        fault_rng: np.random.Generator | None = None,
    ) -> None:
        if faults is not None and faults.has_random_faults and fault_rng is None:
            raise SimulationError("a FailureProfile with random faults needs a fault_rng stream")
        self.cluster = cluster
        self.perf = cluster.perf
        self.batch = batch
        self.round_id = round_id
        self.current_time = 0.0
        self.pending: list[int] = [query.query_id for query in batch]
        self.deferred: list[int] = []
        self.finished: dict[int, float] = {}
        #: Terminally failed queries (retries exhausted / never retried).
        self.failed: dict[int, float] = {}
        self._faults = faults
        self._fault_rng = fault_rng
        self._fates: dict[int, QueryFate] = {}
        self._fault_events: list[CompletionEvent] = []
        self.log = RoundLog(round_id=round_id, strategy=strategy or "simulated")
        self.instances = [
            _SimulatedInstance(index, count) for index, count in enumerate(instance_connections)
        ]
        self._placement: dict[int, int] = {}
        self._connection_offsets: list[int] = []
        offset = 0
        for count in instance_connections:
            self._connection_offsets.append(offset)
            offset += int(count)
        self.num_connections = offset
        #: SoA mirror of the observable per-query state (fast snapshot path).
        self.state_arrays = SessionStateArrays(len(batch))

    # ------------------------------------------------------------------ #
    # Cluster topology
    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        return len(self.instances)

    def instance_of(self, query_id: int) -> int:
        """The instance a running/finished query was placed on (-1 if never)."""
        return self._placement.get(query_id, -1)

    def idle_instances(self) -> list[int]:
        return [
            instance.index
            for instance in self.instances
            if instance.has_idle_connection and not self.instance_is_down(instance.index)
        ]

    # ------------------------------------------------------------------ #
    # Fault-injection API
    # ------------------------------------------------------------------ #
    def instance_is_down(self, instance: int) -> bool:
        """Whether ``instance`` is inside an outage window right now."""
        return self._faults is not None and self._faults.is_down(instance, self.current_time)

    def instance_health(self) -> list[bool]:
        """Per-instance up/down health (``False`` while inside an outage window)."""
        return [not self.instance_is_down(instance.index) for instance in self.instances]

    def next_fault_wakeup(self) -> float | None:
        """Earliest recovery instant among currently-downed instances."""
        if self._faults is None:
            return None
        wakeups = [
            recovery
            for instance in self.instances
            if (recovery := self._faults.recovery_time(instance.index, self.current_time)) is not None
        ]
        return min(wakeups) if wakeups else None

    def cancel(self, query_id: int) -> int:
        """Kill a running query: free its connection, return it to pending.

        Returns the freed *global* connection id (instance offsets applied).
        """
        placed = self._placement.get(query_id, -1)
        if placed < 0 or query_id not in self.instances[placed].running:
            raise SimulationError(f"query {query_id} is not running and cannot be cancelled")
        instance = self.instances[placed]
        state = instance.running.pop(query_id)
        instance.feature_rows.pop(query_id, None)
        instance.idle += 1
        self._fates.pop(query_id, None)
        self.pending.append(query_id)
        self.state_arrays.mark_pending(query_id)
        return self._connection_offsets[placed] + state.connection

    def mark_failed(self, query_id: int) -> None:
        """Terminally fail a pending/deferred query (retries exhausted)."""
        if query_id in self.pending:
            self.pending.remove(query_id)
        elif query_id in self.deferred:
            self.deferred.remove(query_id)
        else:
            raise SimulationError(f"query {query_id} is not pending/deferred and cannot be failed")
        self.failed[query_id] = self.current_time
        self.state_arrays.mark_failed(query_id)

    def _kill_instant(self, instance: int, until: float) -> float | None:
        """Earliest instant in ``(now, until]`` at which the instance's work dies."""
        if self._faults is None:
            return None
        if self._faults.is_down(instance, self.current_time):
            return self.current_time
        start = self._faults.next_outage_start(instance, self.current_time)
        if start is not None and start <= until:
            return start
        return None

    def _kill_instance(self, instance: _SimulatedInstance) -> None:
        """Kill every running query of one instance at the current instant."""
        for query_id in sorted(instance.running):
            state = instance.running.pop(query_id)
            instance.feature_rows.pop(query_id, None)
            instance.idle += 1
            self._fates.pop(query_id, None)
            self.pending.append(query_id)
            self.state_arrays.mark_pending(query_id)
            self._fault_events.append(
                CompletionEvent(
                    query_id=query_id,
                    finish_time=self.current_time,
                    connection=self._connection_offsets[instance.index] + state.connection,
                    instance=instance.index,
                    failed=True,
                    failure=FAILURE_OUTAGE,
                )
            )

    def instance_num_running(self) -> list[int]:
        return [len(instance.running) for instance in self.instances]

    def speed_factors(self) -> tuple[float, ...]:
        return self.cluster.speed_factors()

    def instance_context(self) -> np.ndarray:
        """Observable per-instance context, mirroring the real cluster's.

        The simulator has no buffer pool, so the buffer-fill column stays
        zero; speed, busy fraction and capacity share match the layout of
        :meth:`~repro.dbms.cluster.ClusterSession.instance_context`.
        """
        context = np.zeros((self.num_instances, INSTANCE_FEATURE_DIM), dtype=np.float64)
        speeds = self.speed_factors()
        total_connections = max(1, self.num_connections)
        for index, instance in enumerate(self.instances):
            context[index, 0] = speeds[index]
            context[index, 1] = len(instance.running) / instance.num_connections
            context[index, 2] = instance.num_connections / total_connections
        return context

    # ------------------------------------------------------------------ #
    # Session protocol: state
    # ------------------------------------------------------------------ #
    @property
    def is_done(self) -> bool:
        return not self.pending and not self.deferred and self.num_running == 0

    @property
    def running(self) -> dict[int, RunningQueryState]:
        """Aggregated running-state view across every instance."""
        merged: dict[int, RunningQueryState] = {}
        for instance in self.instances:
            merged.update(instance.running)
        return merged

    @property
    def has_idle_connection(self) -> bool:
        return bool(self.idle_instances())

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    @property
    def num_running(self) -> int:
        """In-flight queries, including failures buffered but not yet delivered."""
        return sum(len(instance.running) for instance in self.instances) + len(self._fault_events)

    @property
    def makespan(self) -> float:
        return max(self.finished.values(), default=0.0)

    def pending_queries(self) -> list[Query]:
        return [self.batch[i] for i in self.pending]

    def running_states(self) -> list[RunningQueryState]:
        return list(self.running.values())

    # ------------------------------------------------------------------ #
    # Session protocol: streaming arrivals
    # ------------------------------------------------------------------ #
    def defer(self, query_ids: "list[int]") -> None:
        for query_id in query_ids:
            if query_id not in self.pending:
                raise SimulationError(f"query {query_id} is not pending and cannot be deferred")
            self.pending.remove(query_id)
            self.deferred.append(query_id)
            self.state_arrays.mark_deferred(query_id)

    def release(self, query_id: int) -> None:
        if query_id not in self.deferred:
            raise SimulationError(f"query {query_id} is not deferred")
        self.deferred.remove(query_id)
        self.pending.append(query_id)
        self.state_arrays.mark_pending(query_id)

    def unarrived_ids(self) -> "tuple[int, ...]":
        return tuple(self.deferred)

    def arrival_time(self, query_id: int) -> float:
        return 0.0

    # ------------------------------------------------------------------ #
    # Session protocol: scheduling
    # ------------------------------------------------------------------ #
    def submit(self, query_id: int, parameters: RunningParameters, instance: int = 0) -> int:
        """Submit a pending query to ``instance`` at the current logical time.

        Returns the *global* connection id (instance connection offsets),
        matching :meth:`~repro.dbms.cluster.ClusterSession.submit`.
        """
        if not 0 <= instance < self.num_instances:
            raise SimulationError(f"instance {instance} out of range (fleet has {self.num_instances})")
        if query_id not in self.pending:
            raise SimulationError(f"query {query_id} is not pending in the simulator")
        if self.instance_is_down(instance):
            raise SimulationError(f"instance {instance} is down and accepts no submissions")
        target = self.instances[instance]
        if target.idle <= 0:
            raise SimulationError(f"instance {instance} has no idle connection in the simulated session")
        if self._faults is not None and self._faults.has_random_faults:
            assert self._fault_rng is not None
            fate = self._faults.draw_fate(self._fault_rng)
            if not fate.clean:
                self._fates[query_id] = fate
        target.idle -= 1
        connection = target.num_connections - target.idle - 1
        self.pending.remove(query_id)
        self._placement[query_id] = instance
        target.running[query_id] = RunningQueryState(
            query=self.batch[query_id],
            parameters=parameters,
            connection=connection,
            submit_time=self.current_time,
            remaining_work=1.0,
            total_work=1.0,
        )
        self.state_arrays.mark_running(query_id, self.current_time)
        return self._connection_offsets[instance] + connection

    def _feature_row(self, instance: _SimulatedInstance, state: RunningQueryState) -> np.ndarray:
        """Cached per-query feature row (dynamic slots rewritten per advance)."""
        query_id = state.query.query_id
        row = instance.feature_rows.get(query_id)
        if row is None:
            row = self.perf.featurizer.rows(
                [query_id], [state.parameters], [0.0], instance=instance.index
            )[0]
            instance.feature_rows[query_id] = row
        return row

    def _instance_prediction(
        self, instance: _SimulatedInstance
    ) -> tuple[float, list[RunningQueryState], int]:
        """Predicted (finish_time, states, earliest index) for one instance."""
        states = list(instance.running.values())
        features = np.stack([self._feature_row(instance, state) for state in states], axis=0)
        elapsed = np.array([self.current_time - state.submit_time for state in states])
        self.perf.featurizer.rewrite_dynamic_columns(features, elapsed)
        logits, times = self.perf.model.predict(features)
        index = int(np.argmax(logits))
        remaining = max(MIN_REMAINING, float(times[index]) * TIME_SCALE)
        if self._fates:
            # Mirror the fluid engine's fate semantics on predicted times: a
            # straggler runs ``hang_factor`` times longer, an errored attempt
            # dies after ``error_work_fraction`` of its predicted remainder.
            fate = self._fates.get(states[index].query.query_id)
            if fate is not None:
                assert self._faults is not None
                if fate.hang:
                    remaining *= self._faults.hang_factor
                if fate.error:
                    remaining *= self._faults.error_work_fraction
        return self.current_time + remaining, states, index

    def advance(self, limit: float | None = None) -> CompletionEvent | None:
        """Advance the unified clock to the earliest predicted completion.

        Semantics mirror :meth:`~repro.dbms.cluster.ClusterSession.advance`:
        each busy instance predicts its earliest finisher, the globally
        earliest one is materialised (instance index breaks exact ties), and
        with a ``limit`` the clock never moves past it (``None`` returned).
        """
        if self._fault_events:
            return self._fault_events.pop(0)
        if self.num_running == 0:
            if limit is None:
                raise SimulationError("cannot advance: no query running in the simulator")
            self.current_time = max(self.current_time, limit)
            for instance in self.instances:
                instance.clock = self.current_time
            return None
        candidates: list[tuple[float, int, "list[RunningQueryState] | None", int]] = []
        for instance in self.instances:
            if not instance.running:
                continue
            finish_time, states, index = self._instance_prediction(instance)
            kill_at = self._kill_instant(instance.index, finish_time)
            if kill_at is not None:
                # The instance dies before (or as) its earliest predicted
                # completion: the event at this instant is an outage kill.
                candidates.append((kill_at, instance.index, None, -1))
            else:
                candidates.append((finish_time, instance.index, states, index))
        finish_time, winner, states, index = min(candidates, key=lambda entry: (entry[0], entry[1]))
        if limit is not None and finish_time > limit:
            self.current_time = limit
            for instance in self.instances:
                instance.clock = self.current_time
            return None
        self.current_time = finish_time
        for instance in self.instances:
            instance.clock = self.current_time
        if states is None:
            self._kill_instance(self.instances[winner])
            return self._fault_events.pop(0)
        state = states[index]
        fate = self._fates.pop(state.query.query_id, None)
        if fate is not None and fate.error:
            return self._fail(self.instances[winner], state)
        return self._finish(self.instances[winner], state)

    def _fail(self, instance: _SimulatedInstance, state: RunningQueryState) -> CompletionEvent:
        """Materialise one predicted *errored* attempt: wasted work, no log."""
        query_id = state.query.query_id
        del instance.running[query_id]
        instance.feature_rows.pop(query_id, None)
        instance.idle += 1
        self.pending.append(query_id)
        self.state_arrays.mark_pending(query_id)
        return CompletionEvent(
            query_id=query_id,
            finish_time=self.current_time,
            connection=self._connection_offsets[instance.index] + state.connection,
            instance=instance.index,
            failed=True,
            failure=FAILURE_ERROR,
        )

    def _finish(self, instance: _SimulatedInstance, state: RunningQueryState) -> CompletionEvent:
        """Materialise one predicted completion into log, state and event."""
        query_id = state.query.query_id
        del instance.running[query_id]
        instance.feature_rows.pop(query_id, None)
        instance.idle += 1
        self.finished[query_id] = self.current_time
        self.state_arrays.mark_finished(query_id)
        connection = self._connection_offsets[instance.index] + state.connection
        self.log.add(
            QueryExecutionRecord(
                query_id=query_id,
                query_name=state.query.name,
                template_id=state.query.template_id,
                connection=connection,
                parameters=state.parameters,
                submit_time=state.submit_time,
                finish_time=self.current_time,
                instance=instance.index,
            )
        )
        return CompletionEvent(
            query_id=query_id,
            finish_time=self.current_time,
            connection=connection,
            instance=instance.index,
        )
