"""The concurrent-query prediction network (paper Section IV-C).

A multitask model over the per-query feature rows of
:class:`~repro.perf.features.PerformanceFeaturizer`: a classifier over the
concurrent queries (which finishes first?) plus a regressor for the earliest
remaining time, optionally with an attention layer modelling the mutual
influence of the concurrent queries.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from ..nn import AttentionEncoder, Linear, MLP, Module, Tensor, fastinfer, no_grad

__all__ = ["ConcurrentPredictionModel", "SimulatorMetrics"]


@dataclass
class SimulatorMetrics:
    """Validation metrics of the prediction model (Table III)."""

    accuracy: float
    mse: float
    num_examples: int

    def __repr__(self) -> str:
        return f"SimulatorMetrics(acc={self.accuracy:.1%}, mse={self.mse:.3f}, n={self.num_examples})"


class ConcurrentPredictionModel(Module):
    """Multitask model: earliest-finisher classification + remaining-time regression."""

    def __init__(
        self,
        feature_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        use_attention: bool = True,
        num_heads: int = 2,
    ) -> None:
        super().__init__()
        self.use_attention = use_attention
        self.input_proj = Linear(feature_dim, hidden_dim, rng)
        if use_attention:
            self.encoder = AttentionEncoder(hidden_dim, num_heads, 1, rng, norm="layer")
        self.classifier = MLP([hidden_dim, hidden_dim, 1], rng, activation="tanh")
        self.regressor = MLP([hidden_dim, hidden_dim, 1], rng, activation="tanh")
        self._warned_slow_path = False

    def _fast_path_ok(self) -> bool:
        """Capability check for the tape-free inference paths (warns once).

        Delegates to the same per-backend reason check the inference-backend
        registry uses; an encoder the fast path cannot replicate falls back
        to the tensor forward *audibly* instead of silently running orders of
        magnitude slower in the rollout hot loop.
        """
        if not self.use_attention:
            return True
        reason = fastinfer.fast_inference_reason(self.encoder)
        if reason is None:
            return True
        if not self._warned_slow_path:  # pragma: no cover - simulator uses LayerNorm
            warnings.warn(
                f"ConcurrentPredictionModel falling back to the tensor forward ({reason}); "
                "simulator advances will be much slower",
                RuntimeWarning,
                stacklevel=3,
            )
            self._warned_slow_path = True
        return False

    def forward(self, features: np.ndarray) -> tuple[Tensor, Tensor]:
        """Return ``(class_logits, remaining_times)`` for ``(k, feature_dim)`` inputs."""
        tokens = self.input_proj(Tensor(features)).tanh()
        if self.use_attention:
            tokens = self.encoder(tokens)
        logits = self.classifier(tokens).reshape(features.shape[0])
        times = self.regressor(tokens).reshape(features.shape[0])
        return logits, times

    def predict(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Tape-free inference returning plain arrays (the rollout hot path).

        Bit-identical to :meth:`forward` but evaluated with raw NumPy, which
        is what keeps the simulator's ``advance`` cheap when N vectorized
        environments each advance their own session every decision round.
        """
        if not self._fast_path_ok():
            with no_grad():  # pragma: no cover - the simulator always uses LayerNorm
                logits, times = self.forward(features)
            return logits.data, times.data
        tokens = np.tanh(fastinfer.linear_forward(self.input_proj, features))
        if self.use_attention:
            tokens = fastinfer.attention_encoder_forward(self.encoder, tokens)
        logits = fastinfer.mlp_forward(self.classifier, tokens).reshape(features.shape[0])
        times = fastinfer.mlp_forward(self.regressor, tokens).reshape(features.shape[0])
        return logits, times

    def predict_batched(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Tape-free inference over a ``(groups, k, feature_dim)`` stack.

        One stacked forward serves every simulated session that needs an
        advance this lockstep round (grouped by equal ``k``), instead of one
        model call per session.  The working dtype follows the input, so
        float64 feature stacks produce predictions bit-identical to
        :meth:`predict` / :meth:`forward` row by row — batched rollouts share
        the sequential path's dynamics exactly.
        """
        groups, k = features.shape[0], features.shape[1]
        if not self._fast_path_ok():
            rows = [self.predict(features[g]) for g in range(groups)]  # pragma: no cover
            return np.stack([r[0] for r in rows]), np.stack([r[1] for r in rows])
        tokens = np.tanh(fastinfer.linear_forward(self.input_proj, features))
        if self.use_attention:
            tokens = fastinfer.attention_encoder_forward_batched(self.encoder, tokens)
        logits = fastinfer.mlp_forward(self.classifier, tokens).reshape(groups, k)
        times = fastinfer.mlp_forward(self.regressor, tokens).reshape(groups, k)
        return logits, times
