"""Fault injection for the black-box DBMS substrate.

Engines the scheduler does not control fail: queries error out mid-flight,
turn into stragglers that hang far past their expected runtime, and whole
instances drop out of the fleet for maintenance windows or crashes.  A
:class:`FailureProfile` describes those behaviours declaratively so the same
fault semantics can be injected into the fluid-model engine, a heterogeneous
:class:`~repro.dbms.Cluster` and the learned
:class:`~repro.perf.SimulatedCluster` (pre-training sees the failures the
serving fleet will exhibit).

Everything is drawn from a *dedicated* per-round RNG stream
(``SeedSpawner(...).derive(round_id, FAULT_STREAM)``), never from the
engine's noise stream: a session with no profile attached performs zero
extra draws and stays bit-for-bit identical to the fault-free tree, and a
session with one reproduces the same failure sequence seed-for-seed.

Failure *fates* are drawn at submission time, in submission order — two
draws per submit (error, then hang) — so a retried query re-rolls its fate:
transient errors really are transient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConfigurationError

__all__ = [
    "FailureProfile",
    "OutageWindow",
    "QueryFate",
    "FAILURE_ERROR",
    "FAILURE_TIMEOUT",
    "FAILURE_OUTAGE",
    "FAULT_STREAM",
]

#: Entropy tag of the per-round fault stream (disjoint from the engine's
#: 0x5EED noise stream and the runtime's 0xA881 arrival stream).
FAULT_STREAM = 0xFA17

#: Failure reasons carried by failed completion events.
FAILURE_ERROR = "error"
FAILURE_TIMEOUT = "timeout"
FAILURE_OUTAGE = "outage"


@dataclass(frozen=True)
class OutageWindow:
    """One engine instance is down during ``[start, start + duration)``.

    Queries in flight on the instance when the window opens are killed (they
    surface as ``outage`` failures the runtime requeues elsewhere); the
    instance accepts no submissions until the window closes.
    """

    instance: int
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.instance < 0:
            raise ConfigurationError("outage instance must be >= 0")
        if self.start < 0:
            raise ConfigurationError("outage start must be >= 0")
        if self.duration <= 0:
            raise ConfigurationError("outage duration must be positive")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def covers(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class QueryFate:
    """The failure fate drawn for one submission attempt."""

    error: bool = False
    hang: bool = False

    @property
    def clean(self) -> bool:
        return not self.error and not self.hang


@dataclass(frozen=True)
class FailureProfile:
    """Declarative fault injection for one engine (or one fleet).

    Attributes
    ----------
    error_rate:
        Per-submission probability that the attempt errors out.  An errored
        attempt consumes ``error_work_fraction`` of the query's work (the
        engine wasted that time) and surfaces as a failed completion.
    error_work_fraction:
        Fraction of the query's (noisy) work executed before the error
        fires, in ``(0, 1]``.
    hang_rate:
        Per-submission probability that the attempt becomes a straggler:
        its work is multiplied by ``hang_factor``.  Stragglers *do* finish
        eventually — killing them early is the runtime's
        ``RetryPolicy.timeout`` job, not the engine's.
    hang_factor:
        Work multiplier applied to hung attempts (> 1).
    outages:
        Per-instance downtime windows (see :class:`OutageWindow`).  On a
        single engine only instance-0 windows apply.
    """

    error_rate: float = 0.0
    error_work_fraction: float = 0.5
    hang_rate: float = 0.0
    hang_factor: float = 4.0
    outages: tuple[OutageWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ConfigurationError("error_rate must be in [0, 1]")
        if not 0.0 < self.error_work_fraction <= 1.0:
            raise ConfigurationError("error_work_fraction must be in (0, 1]")
        if not 0.0 <= self.hang_rate <= 1.0:
            raise ConfigurationError("hang_rate must be in [0, 1]")
        if self.hang_factor <= 1.0:
            raise ConfigurationError("hang_factor must be > 1")
        object.__setattr__(self, "outages", tuple(self.outages))

    # ------------------------------------------------------------------ #
    # Fate draws
    # ------------------------------------------------------------------ #
    @property
    def has_random_faults(self) -> bool:
        """Whether any per-submission randomness is configured."""
        return self.error_rate > 0.0 or self.hang_rate > 0.0

    def draw_fate(self, rng: np.random.Generator) -> QueryFate:
        """Draw one submission attempt's fate (two draws, fixed order)."""
        if not self.has_random_faults:
            return QueryFate()
        error = bool(rng.random() < self.error_rate)
        hang = bool(rng.random() < self.hang_rate)
        return QueryFate(error=error, hang=hang)

    # ------------------------------------------------------------------ #
    # Outage windows
    # ------------------------------------------------------------------ #
    def windows_for(self, instance: int) -> tuple[OutageWindow, ...]:
        """Outage windows applying to ``instance``, in start order."""
        return tuple(
            sorted(
                (window for window in self.outages if window.instance == instance),
                key=lambda window: window.start,
            )
        )

    def is_down(self, instance: int, time: float) -> bool:
        """Whether ``instance`` is inside one of its outage windows at ``time``."""
        return any(window.covers(time) for window in self.outages if window.instance == instance)

    def next_outage_start(self, instance: int, after: float) -> float | None:
        """Earliest outage start for ``instance`` strictly after ``after``."""
        starts = [
            window.start
            for window in self.outages
            if window.instance == instance and window.start > after
        ]
        return min(starts) if starts else None

    def recovery_time(self, instance: int, time: float) -> float | None:
        """End of the outage covering ``instance`` at ``time`` (``None`` if up)."""
        ends = [
            window.end
            for window in self.outages
            if window.instance == instance and window.covers(time)
        ]
        return max(ends) if ends else None
