"""Shared data buffer model.

Queries running on the same DBMS share one buffer pool, so a query can reuse
pages loaded by an earlier or concurrently running query — one of the three
scheduling opportunities the paper's introduction highlights.  The model
tracks, per table, how many rows are currently resident, evicting the least
recently touched tables when capacity is exceeded.
"""

from __future__ import annotations

from ..exceptions import SimulationError

__all__ = ["BufferPool"]


class BufferPool:
    """An approximate LRU buffer of table rows."""

    def __init__(self, capacity_rows: float) -> None:
        if capacity_rows <= 0:
            raise SimulationError("buffer capacity must be positive")
        self.capacity_rows = float(capacity_rows)
        self._resident: dict[str, float] = {}
        self._last_touch: dict[str, float] = {}
        #: Bumped on every content change; engine sessions key their
        #: progress-rate memo on it (cached fractions depend only on
        #: ``_resident``, so an unchanged version means unchanged rates).
        self.version = 0

    @property
    def used_rows(self) -> float:
        return sum(self._resident.values())

    def cached_fraction(self, table: str, table_rows: float) -> float:
        """Fraction of ``table`` currently resident (0 when never scanned)."""
        if table_rows <= 0:
            return 0.0
        return min(1.0, self._resident.get(table, 0.0) / table_rows)

    def touch(self, table: str, rows: float, now: float) -> None:
        """Record that ``rows`` of ``table`` were scanned at time ``now``."""
        if rows < 0:
            raise SimulationError("cannot touch a negative number of rows")
        current = self._resident.get(table, 0.0)
        self._resident[table] = min(self.capacity_rows, max(current, min(rows, self.capacity_rows)))
        self._last_touch[table] = now
        self.version += 1
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        """Evict least-recently-touched tables until within capacity."""
        while self.used_rows > self.capacity_rows and len(self._resident) > 1:
            victim = min(self._last_touch, key=lambda table: self._last_touch[table])
            over = self.used_rows - self.capacity_rows
            if self._resident[victim] <= over:
                del self._resident[victim]
                del self._last_touch[victim]
            else:
                self._resident[victim] -= over
                break

    def clear(self) -> None:
        """Drop all cached contents (cold start for a new scheduling round)."""
        self._resident.clear()
        self._last_touch.clear()
        self.version += 1

    def resident_tables(self) -> dict[str, float]:
        """Snapshot of resident rows per table."""
        return dict(self._resident)
