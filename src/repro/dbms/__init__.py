"""Black-box DBMS substrate: profiles, buffer pool, fluid concurrency engine, logs."""

from .buffer import BufferPool
from .engine import CompletionEvent, DatabaseEngine, ExecutionSession, RunningQueryState
from .logs import ConcurrencySnapshot, ExecutionLog, QueryExecutionRecord, RoundLog
from .params import ConfigurationSpace, RunningParameters
from .profiles import DBMSProfile

__all__ = [
    "BufferPool",
    "CompletionEvent",
    "DatabaseEngine",
    "ExecutionSession",
    "RunningQueryState",
    "ConcurrencySnapshot",
    "ExecutionLog",
    "QueryExecutionRecord",
    "RoundLog",
    "ConfigurationSpace",
    "RunningParameters",
    "DBMSProfile",
]
