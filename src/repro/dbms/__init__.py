"""Black-box DBMS substrate: profiles, buffer pool, fluid engine, clusters, logs."""

from .buffer import BufferPool
from .cluster import Cluster, ClusterSession, INSTANCE_FEATURE_DIM
from .engine import CompletionEvent, DatabaseEngine, ExecutionSession, RunningQueryState
from .faults import (
    FAILURE_ERROR,
    FAILURE_OUTAGE,
    FAILURE_TIMEOUT,
    FailureProfile,
    OutageWindow,
    QueryFate,
)
from .logs import ConcurrencySnapshot, ExecutionLog, QueryExecutionRecord, RoundLog
from .params import ConfigurationSpace, RunningParameters
from .profiles import DBMSProfile
from .soa import SessionStateArrays

__all__ = [
    "BufferPool",
    "Cluster",
    "ClusterSession",
    "INSTANCE_FEATURE_DIM",
    "CompletionEvent",
    "DatabaseEngine",
    "ExecutionSession",
    "RunningQueryState",
    "FAILURE_ERROR",
    "FAILURE_OUTAGE",
    "FAILURE_TIMEOUT",
    "FailureProfile",
    "OutageWindow",
    "QueryFate",
    "ConcurrencySnapshot",
    "ExecutionLog",
    "QueryExecutionRecord",
    "RoundLog",
    "ConfigurationSpace",
    "RunningParameters",
    "DBMSProfile",
    "SessionStateArrays",
]
