"""Black-box DBMS substrate: profiles, buffer pool, fluid engine, clusters, logs."""

from .buffer import BufferPool
from .cluster import Cluster, ClusterSession, INSTANCE_FEATURE_DIM
from .engine import CompletionEvent, DatabaseEngine, ExecutionSession, RunningQueryState
from .logs import ConcurrencySnapshot, ExecutionLog, QueryExecutionRecord, RoundLog
from .params import ConfigurationSpace, RunningParameters
from .profiles import DBMSProfile

__all__ = [
    "BufferPool",
    "Cluster",
    "ClusterSession",
    "INSTANCE_FEATURE_DIM",
    "CompletionEvent",
    "DatabaseEngine",
    "ExecutionSession",
    "RunningQueryState",
    "ConcurrencySnapshot",
    "ExecutionLog",
    "QueryExecutionRecord",
    "RoundLog",
    "ConfigurationSpace",
    "RunningParameters",
    "DBMSProfile",
]
