"""Execution logs.

Logs are the only feedback channel a non-intrusive scheduler has: per-query
submit and finish times across historical scheduling rounds.  Everything the
paper derives from logs is implemented on top of :class:`ExecutionLog`:

* average execution times (MCF ordering, running-state features ``t_i|R_i``),
* per-configuration execution times (adaptive masking),
* pairwise concurrency overlaps (scheduling gain),
* concurrent-state snapshots (training data for the learned simulator and
  the IQ-PPO auxiliary task).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from .params import RunningParameters

__all__ = ["QueryExecutionRecord", "RoundLog", "ExecutionLog", "ConcurrencySnapshot"]


@dataclass(frozen=True)
class QueryExecutionRecord:
    """One query execution inside one scheduling round.

    ``instance`` identifies the engine instance the query ran on; plain
    single-engine rounds always record instance 0, cluster rounds record the
    placement chosen at submit time.  The tag is what lets the performance
    model reconstruct *per-instance* concurrency snapshots from fleet logs.
    """

    query_id: int
    query_name: str
    template_id: int
    connection: int
    parameters: RunningParameters
    submit_time: float
    finish_time: float
    instance: int = 0

    def __post_init__(self) -> None:
        if self.finish_time < self.submit_time:
            raise ValueError(
                f"query {self.query_name} finishes ({self.finish_time}) before it starts ({self.submit_time})"
            )

    @property
    def execution_time(self) -> float:
        return self.finish_time - self.submit_time

    def overlap_with(self, other: "QueryExecutionRecord") -> float:
        """Wall-clock overlap between this execution and ``other``."""
        start = max(self.submit_time, other.submit_time)
        end = min(self.finish_time, other.finish_time)
        return max(0.0, end - start)


@dataclass(frozen=True)
class ConcurrencySnapshot:
    """The state of all in-flight queries at one submission instant.

    ``elapsed`` holds, per running query, how long it has already been
    executing; ``earliest_index`` points at the running query that actually
    finished first after this instant, and ``earliest_remaining`` is how much
    longer it ran — the two supervision targets of the learned simulator.
    """

    time: float
    running_query_ids: tuple[int, ...]
    parameters: tuple[RunningParameters, ...]
    elapsed: tuple[float, ...]
    earliest_index: int
    earliest_remaining: float
    instance: int = 0


@dataclass
class RoundLog:
    """All query executions of a single scheduling round."""

    round_id: int
    strategy: str = ""
    records: list[QueryExecutionRecord] = field(default_factory=list)

    def add(self, record: QueryExecutionRecord) -> None:
        self.records.append(record)

    @property
    def makespan(self) -> float:
        """Latest finish time minus earliest submit time of the round."""
        if not self.records:
            return 0.0
        start = min(r.submit_time for r in self.records)
        end = max(r.finish_time for r in self.records)
        return end - start

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[QueryExecutionRecord]:
        return iter(self.records)

    def concurrency_snapshots(self, per_instance: bool = False) -> list[ConcurrencySnapshot]:
        """Reconstruct the concurrent-query state at every submission instant.

        With ``per_instance=True`` the reconstruction runs within each engine
        instance's records separately (queries placed on different instances
        of a fleet do not share resources), tagging every snapshot with its
        instance — the training examples of a cluster-capable performance
        model.  The default keeps the historical whole-round stream, which is
        identical on single-engine logs (everything is instance 0).
        """
        if not per_instance:
            return self._snapshots_of(sorted(self.records, key=lambda r: r.submit_time), instance=0)
        snapshots: list[ConcurrencySnapshot] = []
        by_instance: dict[int, list[QueryExecutionRecord]] = {}
        for record in self.records:
            by_instance.setdefault(record.instance, []).append(record)
        for instance in sorted(by_instance):
            records = sorted(by_instance[instance], key=lambda r: r.submit_time)
            snapshots.extend(self._snapshots_of(records, instance=instance))
        return snapshots

    @staticmethod
    def _snapshots_of(records: list[QueryExecutionRecord], instance: int) -> list[ConcurrencySnapshot]:
        snapshots: list[ConcurrencySnapshot] = []
        for record in records:
            now = record.submit_time
            running = [r for r in records if r.submit_time <= now < r.finish_time]
            if not running:
                continue
            remaining = [r.finish_time - now for r in running]
            earliest = int(np.argmin(remaining))
            snapshots.append(
                ConcurrencySnapshot(
                    time=now,
                    running_query_ids=tuple(r.query_id for r in running),
                    parameters=tuple(r.parameters for r in running),
                    elapsed=tuple(now - r.submit_time for r in running),
                    earliest_index=earliest,
                    earliest_remaining=float(remaining[earliest]),
                    instance=instance,
                )
            )
        return snapshots


class ExecutionLog:
    """A collection of :class:`RoundLog` entries across scheduling rounds."""

    def __init__(self, rounds: Iterable[RoundLog] | None = None) -> None:
        self._rounds: list[RoundLog] = list(rounds or [])

    def add_round(self, round_log: RoundLog) -> None:
        self._rounds.append(round_log)

    def extend(self, other: "ExecutionLog") -> None:
        """Append all rounds of ``other`` (online / incremental log growth)."""
        self._rounds.extend(other.rounds)

    @property
    def rounds(self) -> list[RoundLog]:
        return list(self._rounds)

    def __len__(self) -> int:
        return len(self._rounds)

    def __iter__(self) -> Iterator[RoundLog]:
        return iter(self._rounds)

    def all_records(self) -> list[QueryExecutionRecord]:
        return [record for round_log in self._rounds for record in round_log]

    # ------------------------------------------------------------------ #
    # Aggregations used by heuristics, masking and clustering
    # ------------------------------------------------------------------ #
    def average_execution_times(self) -> dict[int, float]:
        """Mean execution time per query id over all rounds (MCF's cost table)."""
        totals: dict[int, list[float]] = {}
        for record in self.all_records():
            totals.setdefault(record.query_id, []).append(record.execution_time)
        return {query_id: float(np.mean(times)) for query_id, times in totals.items()}

    def execution_times_by_configuration(self) -> dict[int, dict[RunningParameters, float]]:
        """Mean execution time per (query id, configuration) — masking knowledge."""
        buckets: dict[int, dict[RunningParameters, list[float]]] = {}
        for record in self.all_records():
            buckets.setdefault(record.query_id, {}).setdefault(record.parameters, []).append(
                record.execution_time
            )
        return {
            query_id: {params: float(np.mean(times)) for params, times in by_params.items()}
            for query_id, by_params in buckets.items()
        }

    def pairwise_overlaps(self) -> dict[tuple[int, int], list[tuple[float, float, float]]]:
        """For each unordered query pair, the list of concurrent executions.

        Each entry is ``(overlap, time_i, time_j)``: the wall-clock overlap and
        the two execution times observed in that round.  Only pairs that
        actually overlapped are included.
        """
        result: dict[tuple[int, int], list[tuple[float, float, float]]] = {}
        for round_log in self._rounds:
            records = round_log.records
            for a in range(len(records)):
                for b in range(a + 1, len(records)):
                    rec_a, rec_b = records[a], records[b]
                    overlap = rec_a.overlap_with(rec_b)
                    if overlap <= 0:
                        continue
                    key = (min(rec_a.query_id, rec_b.query_id), max(rec_a.query_id, rec_b.query_id))
                    if rec_a.query_id <= rec_b.query_id:
                        entry = (overlap, rec_a.execution_time, rec_b.execution_time)
                    else:
                        entry = (overlap, rec_b.execution_time, rec_a.execution_time)
                    result.setdefault(key, []).append(entry)
        return result

    def makespans(self) -> list[float]:
        return [round_log.makespan for round_log in self._rounds]

    def concurrency_snapshots(self, per_instance: bool = False) -> list[ConcurrencySnapshot]:
        """All concurrent-state snapshots across rounds (simulator training data)."""
        snapshots: list[ConcurrencySnapshot] = []
        for round_log in self._rounds:
            snapshots.extend(round_log.concurrency_snapshots(per_instance=per_instance))
        return snapshots
