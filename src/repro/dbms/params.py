"""Query running parameters (degree of parallelism, working memory).

The paper's action space couples *which query to run next* with *which
running-parameter configuration to run it under*.  A configuration space is
the cross product of the allowed worker counts and memory limits from
:class:`repro.config.SchedulerConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..config import SchedulerConfig
from ..exceptions import ConfigurationError

__all__ = ["RunningParameters", "ConfigurationSpace"]


@dataclass(frozen=True)
class RunningParameters:
    """One concrete running-parameter configuration for a query."""

    workers: int = 1
    memory_mb: int = 64

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.memory_mb <= 0:
            raise ConfigurationError(f"memory_mb must be positive, got {self.memory_mb}")

    def __str__(self) -> str:
        return f"{self.workers}w/{self.memory_mb}MB"


class ConfigurationSpace:
    """Enumerates the running-parameter configurations ``R`` of a scheduler.

    Configurations are ordered by (workers, memory) and addressed by integer
    index — the same index the policy network's action logits use.
    """

    def __init__(self, scheduler_config: SchedulerConfig) -> None:
        self._configs: list[RunningParameters] = [
            RunningParameters(workers=workers, memory_mb=memory)
            for workers in sorted(scheduler_config.worker_options)
            for memory in sorted(scheduler_config.memory_options)
        ]
        self._index = {config: i for i, config in enumerate(self._configs)}

    def __len__(self) -> int:
        return len(self._configs)

    def __iter__(self) -> "Iterator[RunningParameters]":
        return iter(self._configs)

    def __getitem__(self, index: int) -> RunningParameters:
        return self._configs[index]

    def index_of(self, config: RunningParameters) -> int:
        """Return the integer index of ``config``."""
        if config not in self._index:
            raise ConfigurationError(f"configuration {config} is not in the space")
        return self._index[config]

    @property
    def default(self) -> RunningParameters:
        """The cheapest configuration (fewest workers, least memory)."""
        return self._configs[0]

    @property
    def max_resources(self) -> RunningParameters:
        """The most resource-hungry configuration."""
        return self._configs[-1]

    def closest_to(self, target: RunningParameters, allowed: "list[int] | None" = None) -> RunningParameters:
        """Return the allowed configuration closest to ``target``.

        Used by cluster-level scheduling when a cluster-wide configuration
        conflicts with a query's own mask (Section IV-B): the query falls back
        to the nearest unmasked configuration.
        """
        candidates = self._configs if allowed is None else [self._configs[i] for i in allowed]
        if not candidates:
            raise ConfigurationError("no allowed configurations to choose from")

        def distance(config: RunningParameters) -> tuple[int, int]:
            return (abs(config.workers - target.workers), abs(config.memory_mb - target.memory_mb))

        return min(candidates, key=distance)
