"""A heterogeneous cluster of engine instances behind one logical clock.

The paper evaluates against three DBMS personalities, but a production
deployment rarely owns exactly one server: batches run against a *fleet* of
engine instances — mixed hardware generations, mixed profiles — and the
scheduler's decision space doubles: not only *which query next*, but *which
instance runs it*.  :class:`Cluster` is the dbms-layer substrate for that
scenario.

Design:

* a :class:`Cluster` holds N :class:`~repro.dbms.engine.DatabaseEngine`
  instances, each with its own :class:`~repro.dbms.profiles.DBMSProfile`
  (mixed X/Y/Z fleets are first-class) and its own seed derived from the
  cluster seed through :class:`repro.seeding.SeedSpawner`;
* a :class:`ClusterSession` opens one per-instance
  :class:`~repro.dbms.engine.ExecutionSession` per round.  Every instance
  keeps its *own* buffer pool, contention state and clock; the cluster
  session unifies them behind one logical time by always advancing to the
  globally earliest completion and idling the other instances forward to
  that instant;
* completions that tie on the same instant land in per-instance event
  buffers and are drained in instance order before the clock moves again —
  the same deterministic merge the runtime's global
  :class:`~repro.runtime.EventQueue` applies to arrivals.

A single-instance cluster is bit-for-bit identical to driving the engine
directly (digest-pinned in ``tests/test_cluster.py``): instance 0 derives
the same per-round noise stream, allocates the same connections and emits
the same log records.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from ..exceptions import ConfigurationError, SchedulingError, SimulationError
from ..seeding import SeedSpawner
from ..workloads import BatchQuerySet, Query
from .engine import CompletionEvent, DatabaseEngine, ExecutionSession, RunningQueryState
from .faults import FailureProfile
from .logs import ExecutionLog, QueryExecutionRecord, RoundLog
from .params import RunningParameters
from .profiles import DBMSProfile
from .soa import SessionStateArrays

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import ServiceConfig

__all__ = ["Cluster", "ClusterSession", "INSTANCE_FEATURE_DIM", "next_instance_in_rotation"]

#: Width of the per-instance context feature vector exposed to the encoder:
#: relative speed, busy-connection fraction, capacity share, buffer fill.
INSTANCE_FEATURE_DIM = 4

#: Floor for the reconstructed total work of a buffered tied completion
#: (keeps ``elapsed_fraction`` well-defined for zero-duration records).
_MIN_TOTAL_WORK = 1e-9


def next_instance_in_rotation(available: Sequence[int], cursor: int, num_instances: int) -> int:
    """First available instance at or after ``cursor``, wrapping around.

    The single definition of round-robin placement, shared by
    :meth:`Cluster.execute_order` and the
    :class:`~repro.core.baselines.RoundRobinPlacementScheduler` baseline so
    "round-robin" means the same thing in historical logs and evaluations.
    """
    idle = set(available)
    for offset in range(num_instances):
        candidate = (cursor + offset) % num_instances
        if candidate in idle:
            return candidate
    raise SchedulingError("no instance has an idle connection")


class ClusterSession:
    """One scheduling round across every instance of a cluster.

    Speaks the same session protocol as
    :class:`~repro.dbms.engine.ExecutionSession` (pending/deferred/running/
    finished bookkeeping, ``submit``/``advance``/``defer``/``release``, a
    merged :class:`~repro.dbms.logs.RoundLog`), extended with placement:
    ``submit`` takes the target ``instance`` and completions report the
    instance they happened on.  Connection ids in the merged log are
    globalised (instance offsets), so per-round logs stay unambiguous.
    """

    supports_lockstep = False

    def __init__(
        self,
        cluster: "Cluster",
        batch: BatchQuerySet,
        sessions: Sequence[ExecutionSession],
        round_id: int,
        strategy: str,
    ) -> None:
        self.cluster = cluster
        self.batch = batch
        self.sessions = list(sessions)
        self.round_id = round_id
        self.current_time = 0.0
        self.pending: list[int] = [query.query_id for query in batch]
        self.deferred: list[int] = []
        self.finished: dict[int, float] = {}
        self.log = RoundLog(round_id=round_id, strategy=strategy)
        self._placement: dict[int, int] = {}
        #: Terminally failed queries (retries exhausted / never retried).
        self.failed: dict[int, float] = {}
        # Per-instance buffers of completions that tied with the winning
        # instant, each captured with its execution record at materialisation
        # time (two ties on one instance would otherwise both resolve to that
        # instance's *last* log record); drained in instance order before the
        # clock moves again.  Failed completions carry no record (nothing was
        # logged), hence the ``QueryExecutionRecord | None``.
        self._instance_events: list[list[tuple[CompletionEvent, QueryExecutionRecord | None]]] = [
            [] for _ in self.sessions
        ]
        self._connection_offsets: list[int] = []
        offset = 0
        for session in self.sessions:
            self._connection_offsets.append(offset)
            offset += session.num_connections
        self.num_connections = offset
        #: Cluster-level SoA mirror of the observable per-query state.  Kept
        #: separate from the per-instance session arrays: a tied completion
        #: buffered in ``_instance_events`` has already left its instance's
        #: running set but is still observably RUNNING here until delivered.
        self.state_arrays = SessionStateArrays(len(batch))

    # ------------------------------------------------------------------ #
    # Cluster topology
    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        return len(self.sessions)

    def instance_of(self, query_id: int) -> int:
        """The instance a running/finished query was placed on (-1 if never)."""
        return self._placement.get(query_id, -1)

    def idle_instances(self) -> list[int]:
        """Instances with at least one idle connection (downed instances excluded)."""
        return [index for index, session in enumerate(self.sessions) if session.has_idle_connection]

    def instance_health(self) -> list[bool]:
        """Per-instance up/down health (``False`` while inside an outage window)."""
        return [not session.is_down for session in self.sessions]

    def next_fault_wakeup(self) -> float | None:
        """Earliest recovery instant among currently-downed instances.

        Parked instances (autoscale scale-down) report no recovery — the
        fleet controller unparks them explicitly — so they never appear here.
        """
        wakeups = [
            wakeup
            for session in self.sessions
            if (wakeup := session.next_fault_wakeup()) is not None
        ]
        return min(wakeups) if wakeups else None

    def park_instance(self, instance: int) -> None:
        """Scale-down: administratively take one instance out of the fleet.

        In-flight queries on the instance die through the normal outage-kill
        path on the next advance and the runtime requeues them on surviving
        capacity; the instance accepts no submissions until
        :meth:`unpark_instance`.
        """
        if not 0 <= instance < self.num_instances:
            raise SchedulingError(f"instance {instance} out of range (cluster has {self.num_instances})")
        self.sessions[instance].park()

    def unpark_instance(self, instance: int) -> None:
        """Scale-up: a parked instance's connections rejoin the idle pool."""
        if not 0 <= instance < self.num_instances:
            raise SchedulingError(f"instance {instance} out of range (cluster has {self.num_instances})")
        self.sessions[instance].unpark()

    def parked_instances(self) -> list[int]:
        """Instances currently parked by the elastic-fleet control plane."""
        return [index for index, session in enumerate(self.sessions) if session.is_parked]

    def cancel(self, query_id: int) -> int:
        """Kill a running query on whatever instance it was placed on.

        Returns the freed *global* connection id (instance offsets applied),
        matching the ids completion and failure events report.
        """
        instance = self._placement.get(query_id, -1)
        if instance < 0 or query_id not in self.sessions[instance].running:
            raise SchedulingError(f"query {query_id} is not running and cannot be cancelled")
        connection = self.sessions[instance].cancel(query_id)
        self.pending.append(query_id)
        self.state_arrays.mark_pending(query_id)
        return self._connection_offsets[instance] + connection

    def mark_failed(self, query_id: int) -> None:
        """Terminally fail a pending/deferred query (retries exhausted)."""
        if query_id in self.pending:
            self.pending.remove(query_id)
        elif query_id in self.deferred:
            self.deferred.remove(query_id)
        else:
            raise SchedulingError(f"query {query_id} is not pending/deferred and cannot be failed")
        self.failed[query_id] = self.current_time
        self.state_arrays.mark_failed(query_id)

    def instance_num_running(self) -> list[int]:
        """Fleet-wide running-query count per instance (all tenants).

        Observable non-intrusively: every submission and completion is an
        event the scheduler sees, so per-instance occupancy is known even
        for queries other tenants placed.
        """
        return [session.num_running for session in self.sessions]

    def speed_factors(self) -> tuple[float, ...]:
        """Per-instance hardware speed relative to the fleet mean."""
        return self.cluster.speed_factors()

    def instance_context(self) -> np.ndarray:
        """Observable per-instance context, shape ``(num_instances, 4)``.

        Columns: relative speed (profile, known to the operator), busy
        connection fraction, capacity share of the fleet's connections, and
        buffer-pool fill fraction — the load/warmth signals a placement
        policy needs.  Everything here is non-intrusively observable: the
        scheduler knows where it submitted queries and what the fleet looks
        like; it never reads engine internals.
        """
        context = np.zeros((self.num_instances, INSTANCE_FEATURE_DIM), dtype=np.float64)
        speeds = self.speed_factors()
        total_connections = max(1, self.num_connections)
        for index, session in enumerate(self.sessions):
            context[index, 0] = speeds[index]
            context[index, 1] = session.num_running / session.num_connections
            context[index, 2] = session.num_connections / total_connections
            context[index, 3] = min(1.0, session.buffer.used_rows / session.buffer.capacity_rows)
        return context

    # ------------------------------------------------------------------ #
    # Session protocol: state
    # ------------------------------------------------------------------ #
    @property
    def is_done(self) -> bool:
        return not self.pending and not self.deferred and self.num_running == 0

    @property
    def running(self) -> dict[int, RunningQueryState]:
        """Aggregated running-state view across every instance.

        Includes queries whose tied completion is buffered but not yet
        delivered: they have left their instance session's running dict, but
        until :meth:`advance` dispatches the event they are still in flight
        from the scheduler's point of view — dropping them here would make
        observers (the env snapshot) misreport a finished query as pending.
        Their reconstructed state carries zero remaining work.
        """
        merged: dict[int, RunningQueryState] = {}
        for session in self.sessions:
            merged.update(session.running)
        for events in self._instance_events:
            for event, record in events:
                if record is None:  # failed attempt: no record, nothing to reconstruct
                    continue
                merged[event.query_id] = RunningQueryState(
                    query=self.batch[event.query_id],
                    parameters=record.parameters,
                    connection=record.connection,
                    submit_time=record.submit_time,
                    remaining_work=0.0,
                    total_work=max(record.finish_time - record.submit_time, _MIN_TOTAL_WORK),
                )
        return merged

    @property
    def has_idle_connection(self) -> bool:
        return any(session.has_idle_connection for session in self.sessions)

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    @property
    def num_running(self) -> int:
        """In-flight queries, including tied completions not yet delivered.

        A buffered tied completion has left its instance session's running
        set, but from the scheduler's point of view the query is still in
        flight until :meth:`advance` delivers its event — counting it here
        keeps ``is_done`` false (the round cannot end with undrained events)
        and keeps the runtime's event loop advancing to deliver it.
        """
        buffered = sum(len(events) for events in self._instance_events)
        return sum(session.num_running for session in self.sessions) + buffered

    @property
    def makespan(self) -> float:
        return max(self.finished.values(), default=0.0)

    def pending_queries(self) -> list[Query]:
        return [self.batch[i] for i in self.pending]

    def running_states(self) -> list[RunningQueryState]:
        return list(self.running.values())

    # ------------------------------------------------------------------ #
    # Session protocol: streaming arrivals
    # ------------------------------------------------------------------ #
    def defer(self, query_ids: "list[int]") -> None:
        for query_id in query_ids:
            if query_id not in self.pending:
                raise SchedulingError(f"query {query_id} is not pending and cannot be deferred")
            self.pending.remove(query_id)
            self.deferred.append(query_id)
            self.state_arrays.mark_deferred(query_id)

    def release(self, query_id: int) -> None:
        if query_id not in self.deferred:
            raise SchedulingError(f"query {query_id} is not deferred")
        self.deferred.remove(query_id)
        self.pending.append(query_id)
        self.state_arrays.mark_pending(query_id)

    def unarrived_ids(self) -> "tuple[int, ...]":
        return tuple(self.deferred)

    def arrival_time(self, query_id: int) -> float:
        return 0.0

    # ------------------------------------------------------------------ #
    # Session protocol: scheduling
    # ------------------------------------------------------------------ #
    def submit(self, query_id: int, parameters: RunningParameters, instance: int = 0) -> int:
        """Submit a pending query to ``instance`` at the current logical time.

        Returns the *global* connection id (instance connection offsets), so
        log records across the fleet stay disjoint.
        """
        if not 0 <= instance < self.num_instances:
            raise SchedulingError(f"instance {instance} out of range (cluster has {self.num_instances})")
        if query_id not in self.pending:
            raise SchedulingError(f"query {query_id} is not pending")
        session = self.sessions[instance]
        if not session.has_idle_connection:
            raise SchedulingError(f"instance {instance} has no idle connection")
        local_connection = session.submit(query_id, parameters)
        self.pending.remove(query_id)
        self._placement[query_id] = instance
        self.state_arrays.mark_running(query_id, self.current_time)
        return self._connection_offsets[instance] + local_connection

    def advance(self, limit: float | None = None) -> CompletionEvent | None:
        """Advance the unified clock to the next completion and return it.

        Semantics mirror :meth:`ExecutionSession.advance`: with a ``limit``
        the clock never moves past it (partial progress on every instance,
        ``None`` returned); without one the globally earliest completion is
        materialised.  Instance index breaks exact-time ties, and
        simultaneous completions on other instances are buffered per
        instance and drained (in instance order) before time moves again.
        """
        buffered = self._pop_buffered()
        if buffered is not None:
            return buffered
        # Vectorized completion merging: one argmin over the per-instance
        # next-completion instants (idle instances report +inf).  np.argmin
        # returns the first minimum, which is exactly the lowest-instance
        # tie-breaking of the former ``min((time, index))`` Python loop —
        # pure comparisons, no arithmetic, so the pick is bit-identical.
        next_times = np.array(
            [
                time if (time := session.next_completion_time()) is not None else np.inf
                for session in self.sessions
            ],
            dtype=np.float64,
        )
        winner = int(np.argmin(next_times))
        winner_time = float(next_times[winner])
        if not np.isfinite(winner_time):
            if limit is None:
                raise SimulationError("cannot advance: no query is running")
            for session in self.sessions:
                session.advance(limit=limit)
            self.current_time = max(self.current_time, limit)
            return None
        if limit is not None and winner_time > limit:
            for session in self.sessions:
                session.advance(limit=limit)
            self.current_time = limit
            return None
        event = self.sessions[winner].advance()
        assert event is not None
        winner_record = None if event.failed else self.sessions[winner].log.records[-1]
        if event.failed:
            # An outage can kill several in-flight queries at once; only the
            # first failure is delivered now, but every victim is already
            # back in the instance's pending set — demote them in the
            # observable-state arrays so snapshots taken before their events
            # drain report them as pending, matching the AoS view.
            for victim in self.sessions[winner].buffered_failure_ids():
                self.state_arrays.mark_pending(victim)
        for index, session in enumerate(self.sessions):
            if index == winner:
                continue
            # Idle the peers forward to the winning instant; completions that
            # tie with it land in the per-instance buffers.
            while True:
                tied = session.advance(limit=winner_time)
                if tied is None:
                    break
                tied_record = None if tied.failed else session.log.records[-1]
                if tied.failed:
                    # Failed attempts carry no record: the query is back in
                    # the instance's pending set and observably pending now.
                    self.state_arrays.mark_pending(tied.query_id)
                self._instance_events[index].append((tied, tied_record))
        self.current_time = winner_time
        return self._record(event, winner_record, winner)

    def _pop_buffered(self) -> CompletionEvent | None:
        for index, events in enumerate(self._instance_events):
            if events:
                tied, record = events.pop(0)
                return self._record(tied, record, index)
        return None

    def _record(
        self, event: CompletionEvent, local: QueryExecutionRecord | None, instance: int
    ) -> CompletionEvent:
        """Globalise one instance completion into the cluster log and state."""
        connection = self._connection_offsets[instance] + event.connection
        if event.failed:
            # Nothing was logged or finished: the query returns to the
            # cluster-level pending set (the instance session already holds
            # it pending) and the failure propagates with globalised ids.
            self.pending.append(event.query_id)
            self.state_arrays.mark_pending(event.query_id)
            return CompletionEvent(
                query_id=event.query_id,
                finish_time=event.finish_time,
                connection=connection,
                instance=instance,
                failed=True,
                failure=event.failure,
            )
        assert local is not None
        self.finished[event.query_id] = event.finish_time
        self.state_arrays.mark_finished(event.query_id)
        self.log.add(
            QueryExecutionRecord(
                query_id=local.query_id,
                query_name=local.query_name,
                template_id=local.template_id,
                connection=connection,
                parameters=local.parameters,
                submit_time=local.submit_time,
                finish_time=local.finish_time,
                instance=instance,
            )
        )
        return CompletionEvent(
            query_id=event.query_id,
            finish_time=event.finish_time,
            connection=connection,
            instance=instance,
        )


class Cluster:
    """N heterogeneous engine instances opening unified scheduling rounds.

    Satisfies the same ``SessionBackend`` shape as a single
    :class:`~repro.dbms.engine.DatabaseEngine` (``new_session`` /
    ``estimate_isolated_time`` / ``execute_order`` / ``collect_logs``), so
    every layer above — the runtime, the environments, the facade — can take
    either interchangeably.
    """

    def __init__(
        self,
        engines: Sequence[DatabaseEngine],
        name: str = "cluster",
        faults: FailureProfile | None = None,
    ) -> None:
        if not engines:
            raise ConfigurationError("a cluster needs at least one engine instance")
        self.engines = list(engines)
        self.name = name
        self.faults = faults
        self._round_counter = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_profiles(
        cls,
        profiles: Sequence[DBMSProfile],
        seed: int = 0,
        name: str = "cluster",
        faults: FailureProfile | None = None,
    ) -> "Cluster":
        """Build a (possibly mixed-profile) fleet from per-instance profiles.

        Per-instance engine seeds descend from ``seed`` through the central
        :class:`~repro.seeding.SeedSpawner`, so identical cluster configs
        reproduce identical noise on every instance.
        """
        spawner = SeedSpawner(seed)
        engines = [
            DatabaseEngine(profile, seed=spawner.integer_seed("instance", index))
            for index, profile in enumerate(profiles)
        ]
        return cls(engines, name=name, faults=faults)

    @classmethod
    def homogeneous(
        cls,
        profile: DBMSProfile,
        num_instances: int,
        seed: int = 0,
        name: str = "cluster",
        faults: FailureProfile | None = None,
    ) -> "Cluster":
        """A fleet of ``num_instances`` identical-profile engines."""
        if num_instances < 1:
            raise ConfigurationError("num_instances must be >= 1")
        return cls.from_profiles([profile] * num_instances, seed=seed, name=name, faults=faults)

    @classmethod
    def from_names(
        cls,
        names: Sequence[str],
        seed: int = 0,
        name: str = "cluster",
        faults: FailureProfile | None = None,
    ) -> "Cluster":
        """Build a fleet from profile short-names (``("x", "x", "z")``)."""
        return cls.from_profiles(
            [DBMSProfile.by_name(n) for n in names], seed=seed, name=name, faults=faults
        )

    @classmethod
    def from_service_config(cls, service: "ServiceConfig", seed: int = 0) -> "Cluster":
        """Materialise the fleet declared in ``ServiceConfig.cluster_instances``."""
        if not service.cluster_instances:
            raise ConfigurationError("ServiceConfig.cluster_instances declares no fleet")
        return cls.from_names(service.cluster_instances, seed=seed, name="service-cluster")

    # ------------------------------------------------------------------ #
    # Topology
    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        return len(self.engines)

    @property
    def profiles(self) -> list[DBMSProfile]:
        return [engine.profile for engine in self.engines]

    def __iter__(self) -> Iterator[DatabaseEngine]:
        return iter(self.engines)

    def __len__(self) -> int:
        return len(self.engines)

    def speed_factors(self) -> tuple[float, ...]:
        """Per-instance profile speed relative to the fleet mean."""
        speeds = [engine.profile.speed for engine in self.engines]
        mean = sum(speeds) / len(speeds)
        return tuple(speed / mean for speed in speeds)

    # ------------------------------------------------------------------ #
    # Backend protocol
    # ------------------------------------------------------------------ #
    def new_session(
        self,
        batch: BatchQuerySet,
        num_connections: int | None = None,
        strategy: str = "",
        round_id: int | None = None,
        faults: FailureProfile | None = None,
    ) -> ClusterSession:
        """Open one unified round: one per-instance engine session each.

        ``num_connections`` is *per instance* (matching the single-engine
        meaning of ``SchedulerConfig.num_connections``); ``None`` uses each
        instance profile's default.  Every instance session is built over
        the full batch so any query can be placed anywhere, and all share
        the same ``round_id`` so per-instance noise streams are aligned with
        the single-engine case.  ``faults`` (or the cluster-level profile)
        threads into every instance session; each instance draws fault fates
        from its own engine's dedicated stream and honours only its own
        outage windows.
        """
        if round_id is None:
            round_id = self._round_counter
        self._round_counter = max(self._round_counter, round_id) + 1
        session_faults = faults if faults is not None else self.faults
        sessions = [
            engine.new_session(
                batch,
                num_connections=num_connections,
                strategy=strategy,
                round_id=round_id,
                faults=session_faults,
                fault_instance=index,
            )
            for index, engine in enumerate(self.engines)
        ]
        return ClusterSession(self, batch, sessions, round_id=round_id, strategy=strategy)

    def estimate_isolated_time(
        self,
        query: Query,
        parameters: RunningParameters,
        instance: int = 0,
    ) -> float:
        """Isolated probe on one instance (instance 0 = the reference)."""
        if not 0 <= instance < self.num_instances:
            raise SchedulingError(f"instance {instance} out of range (cluster has {self.num_instances})")
        return self.engines[instance].estimate_isolated_time(query, parameters)

    # ------------------------------------------------------------------ #
    # Convenience execution helpers (historical log collection)
    # ------------------------------------------------------------------ #
    def execute_order(
        self,
        batch: BatchQuerySet,
        order: "list[int]",
        parameters: "dict[int, RunningParameters] | RunningParameters",
        num_connections: int | None = None,
        strategy: str = "fixed-order",
        round_id: int | None = None,
    ) -> RoundLog:
        """Execute ``batch`` in ``order`` with round-robin placement.

        The cluster equivalent of a parameter-oblivious pipeline runner:
        queries are submitted in the given order to the next available
        instance in rotation whenever any connection frees up.
        """
        if sorted(order) != sorted(q.query_id for q in batch):
            raise SchedulingError("order must be a permutation of the batch query ids")
        session = self.new_session(batch, num_connections, strategy=strategy, round_id=round_id)
        queue = list(order)
        cursor = 0
        while not session.is_done:
            while queue and session.has_idle_connection:
                query_id = queue.pop(0)
                instance = next_instance_in_rotation(
                    session.idle_instances(), cursor, session.num_instances
                )
                cursor = (instance + 1) % session.num_instances
                params = parameters if isinstance(parameters, RunningParameters) else parameters[query_id]
                session.submit(query_id, params, instance=instance)
            if session.num_running:
                event = session.advance()
                if event is not None and event.failed:
                    # Fixed-order history collection never retries.
                    session.mark_failed(event.query_id)
            else:
                wakeup = session.next_fault_wakeup()
                if wakeup is None:
                    raise SchedulingError("execute_order stalled: nothing running and no recovery scheduled")
                session.advance(limit=wakeup)
        return session.log

    def collect_logs(
        self,
        batch: BatchQuerySet,
        orders: "list[list[int]]",
        parameters: RunningParameters,
        num_connections: int | None = None,
        strategy: str = "history",
    ) -> ExecutionLog:
        """Run several fixed-order rounds and return the combined log."""
        log = ExecutionLog()
        for round_index, order in enumerate(orders):
            round_log = self.execute_order(
                batch,
                order,
                parameters,
                num_connections=num_connections,
                strategy=strategy,
                round_id=round_index,
            )
            log.add_round(round_log)
        return log

    def __repr__(self) -> str:
        names = ", ".join(profile.name for profile in self.profiles)
        return f"Cluster({self.name!r}, instances=[{names}])"
