"""DBMS personalities.

The paper evaluates on three anonymised systems: DBMS-X and DBMS-Y are
centralised servers with different hardware generations, DBMS-Z is a
three-node distributed system with its own internal resource manager (which
is why the scheduling head-room on Z is smaller — Table I).  Each profile
parameterises the fluid concurrency model of :class:`repro.dbms.engine.DatabaseEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

__all__ = ["DBMSProfile"]


@dataclass(frozen=True)
class DBMSProfile:
    """Resource and behaviour parameters of one black-box DBMS.

    Attributes
    ----------
    name:
        Display name (``DBMS-X`` etc.).
    cpu_capacity:
        Number of single-worker CPU units available to concurrent queries.
    io_capacity:
        Number of concurrent full-speed I/O streams the storage layer serves.
    memory_capacity_mb:
        Total working memory shared by concurrent queries.
    buffer_pool_rows:
        Capacity of the shared data buffer, in (scaled) rows.
    sharing_strength:
        How strongly a warm buffer or a concurrent scan of the same table
        accelerates I/O (0 = no sharing benefit).
    contention_smoothing:
        0 → raw proportional contention; 1 → the DBMS's internal resource
        manager fully smooths contention (DBMS-Z behaviour).
    speed:
        Overall hardware speed multiplier applied to all rates.
    noise:
        Coefficient of variation of per-execution lognormal noise; concurrent
        execution is never perfectly repeatable.
    default_connections:
        The ``|C|`` the paper uses for this DBMS when not overridden.
    """

    name: str
    cpu_capacity: float
    io_capacity: float
    memory_capacity_mb: float
    buffer_pool_rows: float
    sharing_strength: float
    contention_smoothing: float
    speed: float
    noise: float
    default_connections: int

    def __post_init__(self) -> None:
        if self.cpu_capacity <= 0 or self.io_capacity <= 0:
            raise ConfigurationError("capacities must be positive")
        if not 0.0 <= self.sharing_strength <= 1.0:
            raise ConfigurationError("sharing_strength must be in [0, 1]")
        if not 0.0 <= self.contention_smoothing <= 1.0:
            raise ConfigurationError("contention_smoothing must be in [0, 1]")
        if self.speed <= 0:
            raise ConfigurationError("speed must be positive")
        if self.noise < 0:
            raise ConfigurationError("noise must be >= 0")
        if self.default_connections < 1:
            raise ConfigurationError("default_connections must be >= 1")

    # ------------------------------------------------------------------ #
    # Canonical profiles
    # ------------------------------------------------------------------ #
    @classmethod
    def dbms_x(cls) -> "DBMSProfile":
        """Centralised server, two Xeon Gold 5218 CPUs — largest scheduling head-room."""
        return cls(
            name="DBMS-X",
            cpu_capacity=12.0,
            io_capacity=7.0,
            memory_capacity_mb=2048.0,
            buffer_pool_rows=4.0e6,
            sharing_strength=0.45,
            contention_smoothing=0.0,
            speed=1.0,
            noise=0.08,
            default_connections=18,
        )

    @classmethod
    def dbms_y(cls) -> "DBMSProfile":
        """Centralised server, newer CPUs, slightly less contention."""
        return cls(
            name="DBMS-Y",
            cpu_capacity=16.0,
            io_capacity=9.0,
            memory_capacity_mb=3072.0,
            buffer_pool_rows=6.0e6,
            sharing_strength=0.40,
            contention_smoothing=0.15,
            speed=1.25,
            noise=0.10,
            default_connections=18,
        )

    @classmethod
    def dbms_z(cls) -> "DBMSProfile":
        """Distributed 3-node system with an internal resource manager."""
        return cls(
            name="DBMS-Z",
            cpu_capacity=36.0,
            io_capacity=18.0,
            memory_capacity_mb=8192.0,
            buffer_pool_rows=1.6e7,
            sharing_strength=0.25,
            contention_smoothing=0.65,
            speed=2.6,
            noise=0.05,
            default_connections=24,
        )

    @classmethod
    def by_name(cls, name: str) -> "DBMSProfile":
        """Look a profile up by its short name (``x`` / ``y`` / ``z``)."""
        key = name.lower().replace("dbms-", "").replace("dbms_", "")
        factories = {"x": cls.dbms_x, "y": cls.dbms_y, "z": cls.dbms_z}
        if key not in factories:
            raise ConfigurationError(f"unknown DBMS profile {name!r}")
        return factories[key]()
