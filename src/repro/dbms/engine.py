"""Fluid-model discrete-event engine for concurrent query execution.

This is the substitute for the paper's real DBMS-X/Y/Z servers.  The engine
is a *black box* from the scheduler's point of view: queries are submitted to
connections with running parameters, and the only feedback is which query
finished and when.  Internally a fluid model advances all running queries
between events:

* each query's work is a blend of CPU work and I/O work derived from its plan;
* CPU rates scale with the degree of parallelism via Amdahl's law and shrink
  under contention for the profile's CPU capacity;
* I/O rates shrink under contention for I/O bandwidth and grow when a query
  shares tables with concurrently running queries or finds them in the
  shared buffer pool;
* undersized working memory causes spills that slow memory-sensitive
  operators down;
* every execution is perturbed by lognormal noise so repeated rounds of the
  same schedule differ (the σ_ov the paper reports).

The model intentionally reproduces the three phenomena the paper's
introduction identifies as the sources of scheduling head-room: resource
contention, data sharing, and long-tail queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import SchedulingError, SimulationError
from ..seeding import SeedSpawner
from ..workloads import BatchQuerySet, Query
from .buffer import BufferPool
from .faults import FAILURE_ERROR, FAILURE_OUTAGE, FAULT_STREAM, FailureProfile, OutageWindow, QueryFate
from .logs import ExecutionLog, QueryExecutionRecord, RoundLog
from .params import RunningParameters
from .profiles import DBMSProfile
from .soa import SessionStateArrays

__all__ = ["DatabaseEngine", "ExecutionSession", "RunningQueryState", "CompletionEvent"]

_EPSILON = 1e-9
_SPILL_PENALTY = 0.8


@dataclass
class RunningQueryState:
    """Mutable execution state of one in-flight query."""

    query: Query
    parameters: RunningParameters
    connection: int
    submit_time: float
    remaining_work: float
    total_work: float

    @property
    def elapsed_fraction(self) -> float:
        """Fraction of the (noisy) work already completed."""
        return 1.0 - self.remaining_work / self.total_work if self.total_work > 0 else 1.0


@dataclass(frozen=True)
class CompletionEvent:
    """Returned by :meth:`ExecutionSession.advance`: one query finished.

    ``instance`` identifies the engine instance the query ran on; plain
    single-engine sessions always report instance 0, a
    :class:`~repro.dbms.cluster.ClusterSession` reports the placement chosen
    at submit time.

    ``failed`` marks an attempt that did *not* complete — the query errored
    out (``failure == "error"``) or its instance went down mid-flight
    (``failure == "outage"``).  Failed attempts are never logged or counted
    as finished; the query returns to the pending set and the caller (the
    runtime's retry machinery, or a history-collection loop) decides whether
    to resubmit or mark it terminally failed.
    """

    query_id: int
    finish_time: float
    connection: int
    instance: int = 0
    failed: bool = False
    failure: str = ""


class ExecutionSession:
    """One scheduling round against the engine.

    The session owns the clock: queries are submitted to idle connections at
    the current time, and :meth:`advance` moves the clock to the next query
    completion, returning the corresponding event.

    Sessions also speak the event-driven dialect used by
    :class:`repro.runtime.ExecutionRuntime`: queries can be *deferred* at the
    start of a round (they exist in the batch but cannot be submitted until
    :meth:`release`, which is how streaming arrivals enter a live round), and
    :meth:`advance` accepts a ``limit`` so the runtime can stop the clock at
    the next external event (e.g. a query arrival) instead of running through
    to the next completion.
    """

    #: Whether the vectorized engine may interleave this session's advances
    #: with batched model predictions (only the learned simulator can).
    supports_lockstep = False

    def __init__(
        self,
        profile: DBMSProfile,
        batch: BatchQuerySet,
        num_connections: int,
        rng: np.random.Generator,
        round_id: int = 0,
        strategy: str = "",
        warm_buffer: BufferPool | None = None,
        faults: FailureProfile | None = None,
        fault_rng: np.random.Generator | None = None,
        instance: int = 0,
    ) -> None:
        if num_connections < 1:
            raise SimulationError("num_connections must be >= 1")
        if faults is not None and faults.has_random_faults and fault_rng is None:
            raise SimulationError("a FailureProfile with random faults needs a fault_rng stream")
        self.profile = profile
        self.batch = batch
        self.num_connections = num_connections
        self.round_id = round_id
        self._rng = rng
        self.current_time = 0.0
        self.pending: list[int] = [q.query_id for q in batch]
        self.deferred: list[int] = []
        self.running: dict[int, RunningQueryState] = {}
        self.finished: dict[int, float] = {}
        #: Terminally failed queries (retries exhausted / never retried).
        self.failed: dict[int, float] = {}
        self._idle_connections: list[int] = list(range(num_connections))
        self.buffer = warm_buffer if warm_buffer is not None else BufferPool(profile.buffer_pool_rows)
        self.log = RoundLog(round_id=round_id, strategy=strategy)
        # Fault injection: fates are drawn from the dedicated fault stream at
        # submit time; a session without a profile performs zero extra draws
        # and stays bit-identical to the fault-free tree.
        self._faults = faults
        self._fault_rng = fault_rng
        self._instance = instance
        #: Outage windows governing this instance: the static profile windows
        #: plus at most one dynamic administrative window (autoscale park),
        #: kept sorted by start.  Rebuilt on park/unpark — scaling events are
        #: rare, window scans are hot.
        self._windows: tuple[OutageWindow, ...] = (
            faults.windows_for(instance) if faults is not None else ()
        )
        self._park_window: OutageWindow | None = None
        self._fates: dict[int, QueryFate] = {}
        self._fault_events: list[CompletionEvent] = []
        #: SoA mirror of the observable per-query state, updated O(1) per
        #: transition; the environment's fast snapshot path reads it.
        self.state_arrays = SessionStateArrays(len(batch))
        # Progress rates depend only on the running set (which queries, with
        # which parameters) and the buffer contents — never on remaining work
        # or the clock — so next_completion_time/advance pairs reuse one
        # computation.  Version counters invalidate the memo.
        self._running_version = 0
        self._rates_cache: tuple[tuple[int, int], dict[int, float]] | None = None
        # Per-query noise factors drawn once per round: the same query can be
        # faster or slower in different rounds regardless of the schedule.
        self._noise = {
            q.query_id: float(np.exp(rng.normal(0.0, profile.noise))) for q in batch
        }

    # ------------------------------------------------------------------ #
    # Scheduler-facing API
    # ------------------------------------------------------------------ #
    @property
    def is_done(self) -> bool:
        return (
            not self.pending
            and not self.deferred
            and not self.running
            and not self._fault_events
        )

    @property
    def has_idle_connection(self) -> bool:
        return bool(self._idle_connections) and not self.is_down

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    @property
    def num_running(self) -> int:
        """In-flight queries, including failures buffered but not yet delivered."""
        return len(self.running) + len(self._fault_events)

    def idle_connections(self) -> list[int]:
        return [] if self.is_down else list(self._idle_connections)

    # ------------------------------------------------------------------ #
    # Fault-injection API
    # ------------------------------------------------------------------ #
    @property
    def is_down(self) -> bool:
        """Whether this instance is inside an outage window (or parked) right now."""
        if not self._windows:
            return False
        now = self.current_time
        return any(window.covers(now) for window in self._windows)

    def instance_health(self) -> list[bool]:
        """Per-instance up/down health (single-engine sessions have one entry)."""
        return [not self.is_down]

    def next_fault_wakeup(self) -> float | None:
        """Recovery instant of the current outage, if the instance is down.

        The event-driven runtime uses this as an extra clock limit so a round
        stalled on a fleet-wide outage wakes up when capacity returns instead
        of deadlocking.  A *parked* instance (autoscale scale-down) has no
        scheduled recovery — its window never ends — so it reports none; the
        fleet controller brings it back explicitly.
        """
        if not self._windows:
            return None
        now = self.current_time
        ends = [
            window.end
            for window in self._windows
            if window.covers(now) and math.isfinite(window.end)
        ]
        return max(ends) if ends else None

    @property
    def is_parked(self) -> bool:
        """Whether the instance is administratively down (autoscale park)."""
        return self._park_window is not None

    def park(self) -> None:
        """Administratively take the instance down: a planned, open-ended outage.

        The elastic-fleet control plane uses this for scale-down.  A park is
        an :class:`~repro.dbms.faults.OutageWindow` with no scheduled end, so
        in-flight queries die through the normal outage-kill path on the next
        advance (the runtime requeues them without consuming retry budget)
        and the instance accepts no submissions until :meth:`unpark`.
        """
        if self._park_window is not None:
            raise SchedulingError(f"instance {self._instance} is already parked")
        window = OutageWindow(
            instance=self._instance, start=self.current_time, duration=math.inf
        )
        self._park_window = window
        self._windows = tuple(sorted((*self._windows, window), key=lambda w: w.start))

    def unpark(self) -> None:
        """Bring a parked instance back: its connections rejoin the idle pool."""
        window = self._park_window
        if window is None:
            raise SchedulingError(f"instance {self._instance} is not parked")
        self._park_window = None
        self._windows = tuple(w for w in self._windows if w is not window)

    def cancel(self, query_id: int) -> int:
        """Kill a running query: free its connection, return it to pending.

        The attempt's work is wasted — nothing is logged and nothing counts
        as finished.  This is the engine half of the runtime's
        timeout-kill-and-requeue policy for stragglers.  Returns the freed
        connection id (globalised on cluster sessions).
        """
        state = self.running.pop(query_id, None)
        if state is None:
            raise SchedulingError(f"query {query_id} is not running and cannot be cancelled")
        self._idle_connections.append(state.connection)
        self._idle_connections.sort()
        self._fates.pop(query_id, None)
        self.pending.append(query_id)
        self.state_arrays.mark_pending(query_id)
        self._running_version += 1
        return state.connection

    def mark_failed(self, query_id: int) -> None:
        """Terminally fail a pending/deferred query (retries exhausted)."""
        if query_id in self.pending:
            self.pending.remove(query_id)
        elif query_id in self.deferred:
            self.deferred.remove(query_id)
        else:
            raise SchedulingError(f"query {query_id} is not pending/deferred and cannot be failed")
        self.failed[query_id] = self.current_time
        self.state_arrays.mark_failed(query_id)

    def _outage_kill_instant(self, until: float) -> float | None:
        """Earliest instant in ``(now, until]`` at which running work must die."""
        if not self._windows or not self.running:
            return None
        for window in self._windows:
            if window.covers(self.current_time):
                return self.current_time
            if self.current_time < window.start <= until:
                return window.start
        return None

    def _kill_running(self, reason: str) -> None:
        """Kill every running query at the current instant (instance outage)."""
        for query_id in sorted(self.running):
            state = self.running.pop(query_id)
            self._idle_connections.append(state.connection)
            self._fates.pop(query_id, None)
            self.pending.append(query_id)
            self.state_arrays.mark_pending(query_id)
            self._fault_events.append(
                CompletionEvent(
                    query_id=query_id,
                    finish_time=self.current_time,
                    connection=state.connection,
                    failed=True,
                    failure=reason,
                )
            )
        self._idle_connections.sort()
        self._running_version += 1

    def buffered_failure_ids(self) -> list[int]:
        """Ids of killed queries whose failure events are still undelivered.

        After an outage kill, :meth:`advance` returns the buffered failures
        one at a time; until delivery the victims sit in the pending set.  A
        :class:`~repro.dbms.cluster.ClusterSession` reads this to demote its
        own observable-state arrays for victims beyond the first.
        """
        return [event.query_id for event in self._fault_events]

    def pending_queries(self) -> list[Query]:
        return [self.batch[i] for i in self.pending]

    def running_states(self) -> list[RunningQueryState]:
        return list(self.running.values())

    def defer(self, query_ids: "list[int]") -> None:
        """Move pending queries into the deferred (not yet arrived) state.

        Deferred queries belong to the round — their per-round noise is drawn
        at session construction like everyone else's — but they cannot be
        submitted until :meth:`release` marks them as arrived, and the round
        does not finish while any remain.
        """
        for query_id in query_ids:
            if query_id not in self.pending:
                raise SchedulingError(f"query {query_id} is not pending and cannot be deferred")
            self.pending.remove(query_id)
            self.deferred.append(query_id)
            self.state_arrays.mark_deferred(query_id)

    def release(self, query_id: int) -> None:
        """Mark a deferred query as arrived: it becomes pending at the current time."""
        if query_id not in self.deferred:
            raise SchedulingError(f"query {query_id} is not deferred")
        self.deferred.remove(query_id)
        self.pending.append(query_id)
        self.state_arrays.mark_pending(query_id)

    def unarrived_ids(self) -> "tuple[int, ...]":
        """Query ids present in the round but not yet arrived (deferred)."""
        return tuple(self.deferred)

    def arrival_time(self, query_id: int) -> float:
        """Raw sessions have no arrival schedule; everything arrives at zero."""
        return 0.0

    def submit(self, query_id: int, parameters: RunningParameters) -> int:
        """Submit a pending query to an idle connection at the current time.

        Returns the connection id the query was placed on.
        """
        if query_id not in self.pending:
            raise SchedulingError(f"query {query_id} is not pending")
        if self.is_down:
            raise SchedulingError(f"instance {self._instance} is down and accepts no submissions")
        if not self._idle_connections:
            raise SchedulingError("no idle connection available")
        connection = self._idle_connections.pop(0)
        query = self.batch[query_id]
        noisy_work = query.total_work * self._noise[query_id]
        if self._faults is not None and self._faults.has_random_faults:
            assert self._fault_rng is not None
            fate = self._faults.draw_fate(self._fault_rng)
            if fate.hang:
                noisy_work *= self._faults.hang_factor
            if fate.error:
                noisy_work *= self._faults.error_work_fraction
                self._fates[query_id] = fate
        self.pending.remove(query_id)
        self.running[query_id] = RunningQueryState(
            query=query,
            parameters=parameters,
            connection=connection,
            submit_time=self.current_time,
            remaining_work=noisy_work,
            total_work=noisy_work,
        )
        self.state_arrays.mark_running(query_id, self.current_time)
        self._running_version += 1
        return connection

    def next_completion_time(self) -> float | None:
        """Absolute time of the next completion, without advancing the clock.

        ``None`` when nothing is running.  The returned instant is exactly
        the finish time :meth:`advance` would produce from the current state
        (same float arithmetic), which is what lets a
        :class:`~repro.dbms.cluster.ClusterSession` pick the globally
        earliest event across per-instance clocks without perturbing them.
        """
        if self._fault_events:
            return self.current_time
        if not self.running:
            return None
        rates = self._progress_rates()
        delta = min(
            state.remaining_work / max(rates[query_id], _EPSILON)
            for query_id, state in self.running.items()
        )
        finish_time = self.current_time + delta
        kill_at = self._outage_kill_instant(finish_time)
        return kill_at if kill_at is not None else finish_time

    def advance(self, limit: float | None = None) -> CompletionEvent | None:
        """Advance the clock to the next query completion and return it.

        With a ``limit``, the clock never moves past that instant: if the next
        completion falls beyond it, all running queries progress up to
        ``limit`` and ``None`` is returned (the event-driven runtime uses this
        to stop at query arrivals).  With nothing running, a ``limit`` simply
        idles the clock forward to it.
        """
        if self._fault_events:
            return self._fault_events.pop(0)
        if not self.running:
            if limit is None:
                raise SimulationError("cannot advance: no query is running")
            self.current_time = max(self.current_time, limit)
            return None
        rates = self._progress_rates()
        time_to_finish = {
            query_id: state.remaining_work / max(rates[query_id], _EPSILON)
            for query_id, state in self.running.items()
        }
        finishing_id = min(time_to_finish, key=lambda query_id: time_to_finish[query_id])
        delta = time_to_finish[finishing_id]
        kill_at = self._outage_kill_instant(self.current_time + delta)
        if kill_at is not None and (limit is None or kill_at <= limit):
            partial = kill_at - self.current_time
            if partial > 0:
                for query_id, state in self.running.items():
                    state.remaining_work = max(0.0, state.remaining_work - rates[query_id] * partial)
            self.current_time = kill_at
            self._kill_running(FAILURE_OUTAGE)
            return self._fault_events.pop(0)
        if limit is not None and self.current_time + delta > limit:
            partial = limit - self.current_time
            if partial > 0:
                for query_id, state in self.running.items():
                    state.remaining_work = max(0.0, state.remaining_work - rates[query_id] * partial)
            self.current_time = limit
            return None
        self.current_time += delta
        for query_id, state in self.running.items():
            state.remaining_work = max(0.0, state.remaining_work - rates[query_id] * delta)

        state = self.running.pop(finishing_id)
        self._idle_connections.append(state.connection)
        self._idle_connections.sort()
        self._running_version += 1
        fate = self._fates.pop(finishing_id, None)
        if fate is not None and fate.error:
            # The attempt errored out after consuming its (truncated) work:
            # the connection frees, nothing is logged, and the query returns
            # to pending for the caller's retry machinery to resubmit.
            self.pending.append(finishing_id)
            self.state_arrays.mark_pending(finishing_id)
            return CompletionEvent(
                query_id=finishing_id,
                finish_time=self.current_time,
                connection=state.connection,
                failed=True,
                failure=FAILURE_ERROR,
            )
        self.finished[finishing_id] = self.current_time
        self.state_arrays.mark_finished(finishing_id)
        for table, rows in state.query.tables.items():
            self.buffer.touch(table, rows, self.current_time)
        self.log.add(
            QueryExecutionRecord(
                query_id=finishing_id,
                query_name=state.query.name,
                template_id=state.query.template_id,
                connection=state.connection,
                parameters=state.parameters,
                submit_time=state.submit_time,
                finish_time=self.current_time,
            )
        )
        return CompletionEvent(query_id=finishing_id, finish_time=self.current_time, connection=state.connection)

    @property
    def makespan(self) -> float:
        """Latest finish time observed so far."""
        return max(self.finished.values(), default=0.0)

    # ------------------------------------------------------------------ #
    # Fluid model internals
    # ------------------------------------------------------------------ #
    def _progress_rates(self) -> dict[int, float]:
        """Work-per-second rate of every running query under current load.

        Memoized on (running-set version, buffer version): rates depend only
        on *which* queries run with *which* parameters and on the buffer
        contents — never on remaining work or the clock — so the
        ``next_completion_time``/``advance`` double-compute (and every
        idle-forward peer advance in cluster merging) reuses one computation.
        The exact per-call float arithmetic is unchanged.
        """
        key = (self._running_version, self.buffer.version)
        if self._rates_cache is not None and self._rates_cache[0] == key:
            return self._rates_cache[1]
        rates = self._compute_progress_rates()
        self._rates_cache = (key, rates)
        return rates

    def _compute_progress_rates(self) -> dict[int, float]:
        states = list(self.running.values())
        if not states:
            return {}

        amdahl = {}
        for state in states:
            p = state.query.parallel_fraction
            workers = state.parameters.workers
            amdahl[state.query.query_id] = 1.0 / ((1.0 - p) + p / workers)

        cpu_demand = sum(
            amdahl[s.query.query_id] * s.query.cpu_fraction for s in states
        )
        io_demand = sum(s.query.io_fraction for s in states)
        cpu_scale = self._contention_scale(cpu_demand, self.profile.cpu_capacity)
        io_scale = self._contention_scale(io_demand, self.profile.io_capacity)

        memory_granted = sum(min(s.parameters.memory_mb, s.query.memory_demand_mb) for s in states)
        global_pressure = max(0.0, memory_granted / self.profile.memory_capacity_mb - 1.0)

        rates: dict[int, float] = {}
        for state in states:
            query = state.query
            cpu_rate = amdahl[query.query_id] * cpu_scale
            spill = self._spill_factor(state, global_pressure)
            cpu_rate /= 1.0 + spill
            io_rate = io_scale * (1.0 + self._sharing_boost(state, states))
            blended = query.cpu_fraction * cpu_rate + query.io_fraction * io_rate
            rates[query.query_id] = max(_EPSILON, blended * self.profile.speed)
        return rates

    def _contention_scale(self, demand: float, capacity: float) -> float:
        """Proportional-share contention, softened by the internal resource manager."""
        if demand <= capacity:
            return 1.0
        raw = capacity / demand
        smoothing = self.profile.contention_smoothing
        return (1.0 - smoothing) * raw + smoothing * np.sqrt(raw)

    def _spill_factor(self, state: RunningQueryState, global_pressure: float) -> float:
        """Slowdown from undersized working memory (spilling sorts/hashes)."""
        query = state.query
        if query.memory_demand_mb <= 0:
            return 0.0
        shortfall = max(0.0, query.memory_demand_mb - state.parameters.memory_mb) / query.memory_demand_mb
        return _SPILL_PENALTY * query.memory_sensitivity * (shortfall + 0.5 * global_pressure)

    def _sharing_boost(self, state: RunningQueryState, states: list[RunningQueryState]) -> float:
        """I/O acceleration from concurrent scans of shared tables and warm buffer."""
        query = state.query
        if not query.tables:
            return 0.0
        total_rows = sum(query.tables.values())
        if total_rows <= 0:
            return 0.0
        concurrent_tables: set[str] = set()
        for other in states:
            if other.query.query_id == query.query_id:
                continue
            concurrent_tables.update(other.query.tables)
        shared = 0.0
        for table, rows in query.tables.items():
            table_rows = rows
            concurrent_share = 0.8 if table in concurrent_tables else 0.0
            cached_share = self.buffer.cached_fraction(table, table_rows)
            shared += rows * max(concurrent_share, cached_share)
        return self.profile.sharing_strength * (shared / total_rows)


class DatabaseEngine:
    """Factory for :class:`ExecutionSession` rounds against one DBMS profile.

    ``faults`` attaches a :class:`~repro.dbms.faults.FailureProfile` to every
    round the engine opens (a per-round ``faults`` argument to
    :meth:`new_session` overrides it).  ``None`` — the default — keeps the
    engine perfectly reliable and bit-identical to the fault-free tree.
    """

    def __init__(self, profile: DBMSProfile, seed: int = 0, faults: FailureProfile | None = None) -> None:
        self.profile = profile
        self.seed = seed
        self.seeds = SeedSpawner(seed)
        self.faults = faults
        self._round_counter = 0

    def new_session(
        self,
        batch: BatchQuerySet,
        num_connections: int | None = None,
        strategy: str = "",
        round_id: int | None = None,
        keep_buffer_warm: bool = False,
        warm_buffer: BufferPool | None = None,
        faults: FailureProfile | None = None,
        fault_instance: int = 0,
    ) -> ExecutionSession:
        """Open a fresh scheduling round.

        Each round gets its own RNG stream derived from the engine seed and
        the round id, so the per-round execution noise is reproducible yet
        different across rounds.  Fault fates draw from a *separate* stream
        (``(seed, round_id, FAULT_STREAM)``), so injecting faults never
        perturbs the execution-noise draws.
        """
        if round_id is None:
            round_id = self._round_counter
        self._round_counter = max(self._round_counter, round_id) + 1
        # Entropy (seed, round_id, 0x5EED): the historical per-round stream,
        # now derived through the central SeedSpawner (bit-identical).
        rng = self.seeds.derive(round_id, 0x5EED)
        connections = num_connections or self.profile.default_connections
        buffer = warm_buffer if keep_buffer_warm else None
        session_faults = faults if faults is not None else self.faults
        fault_rng = (
            self.seeds.derive(round_id, FAULT_STREAM) if session_faults is not None else None
        )
        return ExecutionSession(
            profile=self.profile,
            batch=batch,
            num_connections=connections,
            rng=rng,
            round_id=round_id,
            strategy=strategy,
            warm_buffer=buffer,
            faults=session_faults,
            fault_rng=fault_rng,
            instance=fault_instance,
        )

    # ------------------------------------------------------------------ #
    # Convenience execution helpers
    # ------------------------------------------------------------------ #
    def execute_order(
        self,
        batch: BatchQuerySet,
        order: "list[int]",
        parameters: "dict[int, RunningParameters] | RunningParameters",
        num_connections: int | None = None,
        strategy: str = "fixed-order",
        round_id: int | None = None,
    ) -> RoundLog:
        """Execute ``batch`` submitting queries in ``order`` whenever a connection frees.

        Under an attached :class:`~repro.dbms.faults.FailureProfile` the
        fixed-order runner never retries: a failed attempt marks the query
        terminally failed (history collection records only what actually
        finished), and an outage idles the loop until the instance recovers.
        """
        if sorted(order) != sorted(q.query_id for q in batch):
            raise SchedulingError("order must be a permutation of the batch query ids")
        session = self.new_session(batch, num_connections, strategy=strategy, round_id=round_id)
        queue = list(order)
        while not session.is_done:
            while queue and session.has_idle_connection:
                query_id = queue.pop(0)
                params = parameters if isinstance(parameters, RunningParameters) else parameters[query_id]
                session.submit(query_id, params)
            if session.num_running:
                event = session.advance()
                if event is not None and event.failed:
                    session.mark_failed(event.query_id)
            else:
                wakeup = session.next_fault_wakeup()
                if wakeup is None:
                    raise SchedulingError("execute_order stalled: nothing running and no recovery scheduled")
                session.advance(limit=wakeup)
        return session.log

    def estimate_isolated_time(self, query: Query, parameters: RunningParameters) -> float:
        """Execute one query alone on an otherwise idle system (no noise).

        This is the "external knowledge" collection step of adaptive masking:
        the periodic nature of batch workloads lets the operator profile each
        query under every configuration.
        """
        batch = BatchQuerySet([query])
        probe = batch[0]
        rng = self.seeds.derive(0xC0FFEE)
        session = ExecutionSession(
            profile=self.profile,
            batch=batch,
            num_connections=1,
            rng=rng,
            strategy="isolated-probe",
        )
        session._noise = {probe.query_id: 1.0}
        session.submit(probe.query_id, parameters)
        event = session.advance()
        assert event is not None
        return event.finish_time

    def collect_logs(
        self,
        batch: BatchQuerySet,
        orders: "list[list[int]]",
        parameters: RunningParameters,
        num_connections: int | None = None,
        strategy: str = "history",
    ) -> ExecutionLog:
        """Run several fixed-order rounds and return the combined log.

        Used to build the "historical logs" that adaptive masking, scheduling
        gain clustering and the learned simulator are trained from.
        """
        log = ExecutionLog()
        for round_index, order in enumerate(orders):
            round_log = self.execute_order(
                batch,
                order,
                parameters,
                num_connections=num_connections,
                strategy=strategy,
                round_id=round_index,
            )
            log.add_round(round_log)
        return log
