"""Incrementally-maintained structure-of-arrays session state.

The scheduler-facing snapshot used to be rebuilt from scratch at every
decision step: ``n`` frozen ``QueryRuntimeInfo`` objects materialized, then
re-extracted with ``np.fromiter`` per feature channel.  Profiling showed this
AoS round-trip dominating the rollout hot loop once the policy forward became
cheap (tape-free NumPy inference).

:class:`SessionStateArrays` keeps the observable per-query state as flat
NumPy columns that every session backend (engine, cluster, simulator,
simulated cluster) updates in O(1) as transitions land — submit, completion,
failure, deferral.  The environment then assembles a
:class:`~repro.encoder.run_state.SnapshotArrays` view with a handful of
whole-array ops and zero per-query Python work.

Status codes are *backend-observable* states; the environment maps them onto
the three scheduler-visible ``QueryStatus`` values (FAILED reads as FINISHED,
DEFERRED as PENDING-but-unavailable) with one table lookup.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SessionStateArrays",
    "SOA_PENDING",
    "SOA_RUNNING",
    "SOA_FINISHED",
    "SOA_FAILED",
    "SOA_DEFERRED",
]

SOA_PENDING = 0
SOA_RUNNING = 1
SOA_FINISHED = 2
SOA_FAILED = 3
SOA_DEFERRED = 4


class SessionStateArrays:
    """Flat per-query state columns, updated O(1) per transition.

    ``status`` holds the ``SOA_*`` code of every query; ``submit_time`` the
    instant of the most recent (current) submission, meaningful while the
    query is running.  Sessions mutate these in place, so NumPy slice views
    handed to tenants stay live for free.
    """

    __slots__ = ("status", "submit_time")

    def __init__(self, num_queries: int) -> None:
        self.status = np.zeros(num_queries, dtype=np.int8)
        self.submit_time = np.zeros(num_queries, dtype=np.float64)

    @property
    def num_queries(self) -> int:
        return int(self.status.shape[0])

    def mark_running(self, query_id: int, submit_time: float) -> None:
        self.status[query_id] = SOA_RUNNING
        self.submit_time[query_id] = submit_time

    def mark_pending(self, query_id: int) -> None:
        self.status[query_id] = SOA_PENDING

    def mark_finished(self, query_id: int) -> None:
        self.status[query_id] = SOA_FINISHED

    def mark_failed(self, query_id: int) -> None:
        self.status[query_id] = SOA_FAILED

    def mark_deferred(self, query_id: int) -> None:
        self.status[query_id] = SOA_DEFERRED
