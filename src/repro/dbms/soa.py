"""Incrementally-maintained structure-of-arrays session state.

The scheduler-facing snapshot used to be rebuilt from scratch at every
decision step: ``n`` frozen ``QueryRuntimeInfo`` objects materialized, then
re-extracted with ``np.fromiter`` per feature channel.  Profiling showed this
AoS round-trip dominating the rollout hot loop once the policy forward became
cheap (tape-free NumPy inference).

:class:`SessionStateArrays` keeps the observable per-query state as flat
NumPy columns that every session backend (engine, cluster, simulator,
simulated cluster) updates in O(1) as transitions land — submit, completion,
failure, deferral.  The environment then assembles a
:class:`~repro.encoder.run_state.SnapshotArrays` view with a handful of
whole-array ops and zero per-query Python work.

Status codes are *backend-observable* states; the environment maps them onto
the three scheduler-visible ``QueryStatus`` values (FAILED reads as FINISHED,
DEFERRED as PENDING-but-unavailable) with one table lookup.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SessionStateArrays",
    "SOA_PENDING",
    "SOA_RUNNING",
    "SOA_FINISHED",
    "SOA_FAILED",
    "SOA_DEFERRED",
]

SOA_PENDING = 0
SOA_RUNNING = 1
SOA_FINISHED = 2
SOA_FAILED = 3
SOA_DEFERRED = 4


class SessionStateArrays:
    """Flat per-query state columns, updated O(1) per transition.

    ``status`` holds the ``SOA_*`` code of every query; ``submit_time`` the
    instant of the most recent (current) submission, meaningful while the
    query is running.  Sessions mutate these in place, so NumPy slice views
    handed to tenants stay live for free.

    ``row_version`` stamps every row with the value of a monotonic
    per-session counter at its last mutation.  Incremental inference caches
    (:mod:`repro.nn.backend`) compare stamped copies across decision steps to
    find the rows whose features may have changed; mutations that bypass the
    ``mark_*`` transitions (e.g. the runtime's failed-attempt counters) must
    call :meth:`touch` so dependent rows invalidate.
    """

    __slots__ = ("status", "submit_time", "row_version", "_version")

    def __init__(self, num_queries: int) -> None:
        self.status = np.zeros(num_queries, dtype=np.int8)
        self.submit_time = np.zeros(num_queries, dtype=np.float64)
        self.row_version = np.zeros(num_queries, dtype=np.int64)
        self._version = 0

    @property
    def num_queries(self) -> int:
        return int(self.status.shape[0])

    @property
    def version(self) -> int:
        """Value of the monotonic mutation counter (0 = never mutated)."""
        return self._version

    def touch(self, query_id: int) -> None:
        """Stamp ``query_id`` as mutated without changing its status.

        For observable per-query state that lives *outside* these columns
        (failed-attempt counters, retry availability) but still feeds the
        featurizer: bumping the row version keeps incremental inference
        caches honest.
        """
        self._version += 1
        self.row_version[query_id] = self._version

    def mark_running(self, query_id: int, submit_time: float) -> None:
        self.status[query_id] = SOA_RUNNING
        self.submit_time[query_id] = submit_time
        self._version += 1
        self.row_version[query_id] = self._version

    def mark_pending(self, query_id: int) -> None:
        self.status[query_id] = SOA_PENDING
        self._version += 1
        self.row_version[query_id] = self._version

    def mark_finished(self, query_id: int) -> None:
        self.status[query_id] = SOA_FINISHED
        self._version += 1
        self.row_version[query_id] = self._version

    def mark_failed(self, query_id: int) -> None:
        self.status[query_id] = SOA_FAILED
        self._version += 1
        self.row_version[query_id] = self._version

    def mark_deferred(self, query_id: int) -> None:
        self.status[query_id] = SOA_DEFERRED
        self._version += 1
        self.row_version[query_id] = self._version
