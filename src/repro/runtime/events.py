"""Event types flowing through the execution runtime.

Several kinds of events exist in an event-driven scheduling round:

* :class:`QueryArrival` — a streaming query becomes available to its tenant.
  Arrivals are *scheduled*: they sit in the :class:`~repro.runtime.EventQueue`
  until the engine clock reaches their time.
* :class:`QueryCompletion` — the engine reports that a query finished.
  Completions are *generated* by the fluid engine (or the learned simulator)
  on demand and dispatched to the tenant that owns the query.
* :class:`QueryFailure` — an attempt died (engine error, runtime timeout
  kill, or instance outage).  Carries whether the runtime will retry it.
* :class:`QueryRetry` — a failed query re-arrives after its backoff delay
  and becomes pending again (scheduled, like an arrival).
* :class:`QueryTimeout` — scheduled straggler check: if the attempt named by
  ``attempt`` is still running when the clock reaches ``time``, the runtime
  kills and requeues it.  Stale checks (the attempt already completed) are
  skipped silently.
* :class:`QueryShed` — an arrival the admission controller refused under
  overload.  The query is marked failed immediately (it never becomes
  pending) and counts in the tenant's shed ledger, not its retry budget.
* :class:`InstanceRecovery` — a synthetic wake-up: downed capacity returned
  and schedulers should look for decisions again.  It belongs to no tenant.

All query events carry tenant-local query ids: a tenant never sees another
tenant's global id space, which is what keeps per-tenant logs disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "QueryArrival",
    "QueryCompletion",
    "QueryFailure",
    "QueryRetry",
    "QueryTimeout",
    "QueryShed",
    "InstanceRecovery",
    "RuntimeEvent",
]


@dataclass(frozen=True)
class QueryArrival:
    """A query of ``tenant`` arrives (becomes pending) at ``time``."""

    time: float
    tenant: str
    query_id: int


@dataclass(frozen=True)
class QueryCompletion:
    """A query of ``tenant`` finished at ``time`` on ``connection``.

    ``instance`` is the engine instance the query ran on — always 0 on a
    single-engine backend, the chosen placement on a
    :class:`~repro.dbms.Cluster` backend.
    """

    time: float
    tenant: str
    query_id: int
    connection: int
    instance: int = 0


@dataclass(frozen=True)
class QueryFailure:
    """An attempt of ``tenant``'s query died at ``time``.

    ``reason`` is one of the :mod:`repro.dbms.faults` failure constants
    (``"error"`` / ``"timeout"`` / ``"outage"``); ``attempt`` counts the
    submissions so far (1-based, never reused — outage kills keep the
    counter monotonic even though they don't consume retry budget);
    ``will_retry`` tells whether the runtime scheduled a :class:`QueryRetry`
    (re-arriving at ``retry_at``) or marked the query terminally failed.
    """

    time: float
    tenant: str
    query_id: int
    connection: int
    instance: int = 0
    reason: str = "error"
    attempt: int = 1
    will_retry: bool = False
    retry_at: float | None = None


@dataclass(frozen=True)
class QueryRetry:
    """A failed query of ``tenant`` re-arrives (becomes pending) at ``time``."""

    time: float
    tenant: str
    query_id: int
    attempt: int = 1


@dataclass(frozen=True)
class QueryTimeout:
    """Scheduled straggler check for one submission attempt of ``tenant``."""

    time: float
    tenant: str
    query_id: int
    attempt: int = 1


@dataclass(frozen=True)
class QueryShed:
    """An arrival of ``tenant`` refused by admission control at ``time``.

    The query is terminally failed the instant it would have arrived — it
    never enters the pending set, consumes no connection and no retry
    budget.  Shed decisions are recorded per tenant so the
    :class:`~repro.runtime.ServiceReport` can report shed rate and the
    deadlock diagnostic can name over-aggressive admission policies.
    """

    time: float
    tenant: str
    query_id: int


@dataclass(frozen=True)
class InstanceRecovery:
    """Downed capacity returned at ``time``; owned by no tenant."""

    time: float
    tenant: str = ""
    instance: int = -1


RuntimeEvent = Union[
    QueryArrival,
    QueryCompletion,
    QueryFailure,
    QueryRetry,
    QueryTimeout,
    QueryShed,
    InstanceRecovery,
]
