"""Event types flowing through the execution runtime.

Two kinds of events exist in an event-driven scheduling round:

* :class:`QueryArrival` — a streaming query becomes available to its tenant.
  Arrivals are *scheduled*: they sit in the :class:`~repro.runtime.EventQueue`
  until the engine clock reaches their time.
* :class:`QueryCompletion` — the engine reports that a query finished.
  Completions are *generated* by the fluid engine (or the learned simulator)
  on demand and dispatched to the tenant that owns the query.

Both carry tenant-local query ids: a tenant never sees another tenant's
global id space, which is what keeps per-tenant logs disjoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = ["QueryArrival", "QueryCompletion", "RuntimeEvent"]


@dataclass(frozen=True)
class QueryArrival:
    """A query of ``tenant`` arrives (becomes pending) at ``time``."""

    time: float
    tenant: str
    query_id: int


@dataclass(frozen=True)
class QueryCompletion:
    """A query of ``tenant`` finished at ``time`` on ``connection``.

    ``instance`` is the engine instance the query ran on — always 0 on a
    single-engine backend, the chosen placement on a
    :class:`~repro.dbms.Cluster` backend.
    """

    time: float
    tenant: str
    query_id: int
    connection: int
    instance: int = 0


RuntimeEvent = Union[QueryArrival, QueryCompletion]
