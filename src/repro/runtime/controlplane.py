"""The serving control plane: tenant classes, admission control, elastic fleets.

Production serving separates the *problem* — who is asking for work, how
urgent it is, and how much capacity the fleet currently has — from the
*policy* that decides what to run where.  This module owns the problem side:

* :class:`TenantClass` describes a tenant's service tier: a priority used
  by admission exemption and fairness shaping, an optional per-query
  latency SLO the report grades attainment against, and an optional
  deadline after which retrying a failed query is pointless.
* :class:`AdmissionController` enforces an
  :class:`~repro.config.AdmissionPolicy`: a token bucket refilled in
  simulated time decides whether each open arrival is admitted or *shed*
  (marked failed immediately so the round drains), with per-tenant shed and
  admitted ledgers for the report.
* :class:`FleetController` enforces an
  :class:`~repro.config.AutoscalePolicy` by parking and unparking cluster
  instances mid-service.  A scale-down is a planned outage — the instance's
  running queries die through the existing
  :class:`~repro.dbms.OutageWindow` kill path and are requeued without
  consuming retry budget — and a scale-up is a recovery wakeup: the
  instance's connections simply rejoin the idle pool.
* :class:`ControlPlane` bundles the three with the
  :class:`~repro.config.RetryPolicy` so the
  :class:`~repro.runtime.ExecutionRuntime` routes every arrival, retry and
  scaling decision through one object instead of ad-hoc branches.

Everything here is opt-in: a default-constructed control plane admits every
arrival, never scales, and reproduces the legacy retry arithmetic exactly,
keeping the class-free tree bit-for-bit identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, NamedTuple

from ..config import AdmissionPolicy, AutoscalePolicy, RetryPolicy
from ..dbms.faults import FAILURE_OUTAGE
from ..exceptions import ConfigurationError

__all__ = [
    "TenantClass",
    "TokenBucket",
    "AdmissionController",
    "FleetController",
    "ScaleEvent",
    "RetryDecision",
    "ControlPlane",
]


@dataclass(frozen=True)
class TenantClass:
    """A tenant's service tier: priority, latency SLO, retry deadline.

    ``priority`` orders tenants for admission exemption
    (:attr:`~repro.config.AdmissionPolicy.exempt_priority`) and scales the
    fairness-shaping term (:attr:`~repro.config.SchedulerConfig.fairness_weight`);
    higher is more important.  ``latency_slo`` (seconds, per query) grades
    completions: a query whose arrival-to-finish latency exceeds it counts
    as an SLO miss in the :class:`~repro.runtime.ServiceReport` and triggers
    ``SchedulerConfig.slo_penalty`` reward shaping.  ``deadline`` (seconds
    after arrival) caps retries: once a query's deadline has passed, a
    failed attempt is not resubmitted — the answer would be useless anyway.
    Both targets default to ``None`` (ungraded / retry forever).
    """

    name: str
    priority: float = 0.0
    latency_slo: float | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant class name must not be empty")
        if self.latency_slo is not None and self.latency_slo <= 0:
            raise ConfigurationError("latency_slo must be positive (or None)")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError("deadline must be positive (or None)")


class TokenBucket:
    """A continuous-refill token bucket over simulated time.

    Starts full; refills at ``rate`` tokens per second up to ``capacity``.
    ``try_take`` consumes one token if available.  All arithmetic is in the
    runtime's simulated clock, so admission decisions are deterministic.
    """

    def __init__(self, rate: float, capacity: float) -> None:
        self.rate = rate
        self.capacity = capacity
        self._tokens = capacity
        self._last = 0.0

    @property
    def tokens(self) -> float:
        return self._tokens

    def try_take(self, now: float) -> bool:
        """Refill up to ``now`` and take one token if the bucket holds one."""
        if now > self._last:
            self._tokens = min(self.capacity, self._tokens + self.rate * (now - self._last))
            self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Token-bucket admission with per-tenant shed/admitted ledgers."""

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        self._bucket = TokenBucket(policy.rate, policy.burst)
        #: Arrivals admitted / shed per tenant name (current round).
        self.admitted: dict[str, int] = {}
        self.shed: dict[str, int] = {}

    def reset(self) -> None:
        """Forget the previous round: fresh bucket, empty ledgers."""
        self._bucket = TokenBucket(self.policy.rate, self.policy.burst)
        self.admitted = {}
        self.shed = {}

    @property
    def total_shed(self) -> int:
        return sum(self.shed.values())

    def admit(
        self,
        tenant: str,
        tenant_class: TenantClass | None,
        now: float,
        backlog: int,
    ) -> bool:
        """Decide one open arrival: token, backlog cap, priority exemption.

        ``backlog`` is the runtime-wide count of pending-but-unsubmitted
        queries at the arrival instant.  The decision is recorded in the
        per-tenant ledgers either way.
        """
        policy = self.policy
        if (
            policy.exempt_priority is not None
            and tenant_class is not None
            and tenant_class.priority >= policy.exempt_priority
        ):
            self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
            return True
        if policy.max_pending is not None and backlog >= policy.max_pending:
            self.shed[tenant] = self.shed.get(tenant, 0) + 1
            return False
        if self._bucket.try_take(now):
            self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
            return True
        self.shed[tenant] = self.shed.get(tenant, 0) + 1
        return False


@dataclass(frozen=True)
class ScaleEvent:
    """One elastic-fleet action: ``park`` (scale-down) or ``unpark`` (up)."""

    time: float
    instance: int
    action: str


class FleetController:
    """Backlog-driven elastic sizing over a park-capable cluster session.

    Watches backlog per *up* instance: above
    :attr:`~repro.config.AutoscalePolicy.target_backlog` the lowest-index
    parked instance is unparked, below
    :attr:`~repro.config.AutoscalePolicy.low_water` the highest-index up
    instance is parked, with a cooldown between actions so the fleet does
    not thrash.  Every action lands in the :attr:`events` ledger.
    """

    def __init__(self, policy: AutoscalePolicy) -> None:
        self.policy = policy
        self.events: list[ScaleEvent] = []
        self._last_scale = float("-inf")

    def reset(self) -> None:
        self.events = []
        self._last_scale = float("-inf")

    def _resolved_max(self, fleet_size: int) -> int:
        limit = self.policy.max_instances or fleet_size
        return min(limit, fleet_size)

    def on_round_open(self, shared: Any) -> None:
        """Apply the initial fleet size: park everything beyond it.

        ``initial_instances=None`` starts with ``max_instances`` up (the
        whole fleet when that is 0 too).
        """
        fleet = int(getattr(shared, "num_instances", 1))
        upper = self._resolved_max(fleet)
        start = self.policy.initial_instances if self.policy.initial_instances is not None else upper
        start = max(self.policy.min_instances, min(start, upper))
        for instance in range(fleet - 1, start - 1, -1):
            shared.park_instance(instance)
            self.events.append(ScaleEvent(time=0.0, instance=instance, action="park"))

    def tick(self, shared: Any, backlog: int, now: float) -> ScaleEvent | None:
        """One scaling decision; returns the action taken (``None`` if held)."""
        policy = self.policy
        if now - self._last_scale < policy.cooldown:
            return None
        fleet = int(shared.num_instances)
        parked = list(shared.parked_instances())
        up = fleet - len(parked)
        upper = self._resolved_max(fleet)
        per_instance = backlog / up if up > 0 else float("inf")
        if per_instance > policy.target_backlog and up < upper and parked:
            instance = min(parked)
            shared.unpark_instance(instance)
            event = ScaleEvent(time=now, instance=instance, action="unpark")
        elif per_instance < policy.low_water and up > policy.min_instances:
            parked_set = set(parked)
            instance = max(i for i in range(fleet) if i not in parked_set)
            shared.park_instance(instance)
            event = ScaleEvent(time=now, instance=instance, action="park")
        else:
            return None
        self._last_scale = now
        self.events.append(event)
        return event


class RetryDecision(NamedTuple):
    """Whether a failed attempt is resubmitted, and after what delay."""

    will_retry: bool
    delay: float


class ControlPlane:
    """Admission, retry and fleet-sizing decisions behind one interface.

    The runtime constructs a default control plane
    (``ControlPlane(retry=...)``) when none is supplied, which admits every
    arrival, never scales, and reproduces the legacy retry arithmetic
    bit-for-bit — the opt-in controllers only exist when their policies do.
    """

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        admission: AdmissionPolicy | None = None,
        autoscale: AutoscalePolicy | None = None,
    ) -> None:
        self.retry = retry
        self.admission: AdmissionController | None = (
            AdmissionController(admission) if admission is not None else None
        )
        self.fleet: FleetController | None = (
            FleetController(autoscale) if autoscale is not None else None
        )

    # -- lifecycle ------------------------------------------------------- #
    def reset_round(self) -> None:
        """Forget per-round state (ledgers, buckets, cooldowns)."""
        if self.admission is not None:
            self.admission.reset()
        if self.fleet is not None:
            self.fleet.reset()

    def on_round_open(self, shared: Any) -> None:
        """Install the initial fleet size on a freshly opened round."""
        if self.fleet is not None:
            self.fleet.on_round_open(shared)

    # -- admission ------------------------------------------------------- #
    @property
    def admits_all(self) -> bool:
        """Fast-path check: no admission policy means every arrival enters."""
        return self.admission is None

    def admit(
        self,
        tenant: str,
        tenant_class: TenantClass | None,
        now: float,
        backlog: int,
    ) -> bool:
        if self.admission is None:
            return True
        return self.admission.admit(tenant, tenant_class, now, backlog)

    def shed_counts(self) -> dict[str, int]:
        """Arrivals shed per tenant this round (empty without admission)."""
        if self.admission is None:
            return {}
        return dict(self.admission.shed)

    # -- retry ----------------------------------------------------------- #
    def decide_retry(
        self,
        reason: str,
        attempt: int,
        outage_kills: int,
        time: float = 0.0,
        give_up_at: float | None = None,
    ) -> RetryDecision:
        """Decide one failed attempt's future.

        Outage kills always requeue immediately (the fleet failed, not the
        query).  Otherwise the attempt budget is ``attempt`` minus the
        outage kills that inflated it, exactly the legacy arithmetic; a
        ``give_up_at`` deadline in the past vetoes the retry even when
        budget remains.
        """
        if reason == FAILURE_OUTAGE:
            return RetryDecision(True, 0.0)
        consumed = attempt - outage_kills
        if self.retry is None or consumed >= self.retry.max_attempts:
            return RetryDecision(False, 0.0)
        if give_up_at is not None and time >= give_up_at:
            return RetryDecision(False, 0.0)
        return RetryDecision(True, self.retry.delay_for(max(1, consumed)))

    # -- elastic fleet ---------------------------------------------------- #
    @property
    def has_autoscaler(self) -> bool:
        return self.fleet is not None

    def autoscale(self, shared: Any, backlog: int, now: float) -> ScaleEvent | None:
        """One fleet-sizing tick (no-op without an autoscale policy)."""
        if self.fleet is None:
            return None
        return self.fleet.tick(shared, backlog, now)

    def scale_events(self) -> tuple[ScaleEvent, ...]:
        """The round's scaling ledger (empty without an autoscale policy)."""
        if self.fleet is None:
            return ()
        return tuple(self.fleet.events)
