"""Per-tenant service metrics for event-driven scheduling rounds.

A closed batch is judged by one number (makespan); a multi-tenant service
with streaming arrivals needs per-tenant makespans *and* per-query latency
percentiles (time from arrival to completion), which is what operators of a
shared cluster actually answer for.  Fault-tolerant serving adds the failure
ledger: attempts that died, retries scheduled, straggler timeouts fired,
queries lost for good — and goodput, the completions the service actually
delivered per second of wall clock.

The control plane adds the overload story: arrivals *shed* by admission
control, per-query SLO grading against each tenant class's latency target,
and a per-class rollup (:class:`ClassReport`) so "did the interactive tier
hit its SLO while the batch tier absorbed the shedding?" is one lookup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SchedulingError
from .runtime import ExecutionRuntime

__all__ = ["TenantReport", "ClassReport", "ServiceReport"]


@dataclass(frozen=True)
class TenantReport:
    """Completion metrics of one tenant's round.

    ``num_queries`` counts *successful* completions; a tenant whose queries
    all failed (or never arrived) reports zeroed latency fields rather than
    NaN — see :meth:`ServiceReport.from_runtime`.

    ``num_shed`` counts arrivals refused by admission control (shed queries
    are also included in ``num_failed``: they were never served).
    ``num_slo_met`` / ``num_slo_eligible`` grade the tenant against its
    class's latency SLO — eligible work is every graded completion plus
    every shed arrival (a query the user never got an answer to cannot have
    met its SLO); both stay zero for classless tenants or classes without a
    latency target.
    """

    tenant: str
    num_queries: int
    makespan: float
    mean_latency: float
    p50_latency: float
    p90_latency: float
    p99_latency: float
    num_failed: int = 0
    num_failed_attempts: int = 0
    num_retries: int = 0
    num_timeouts: int = 0
    goodput: float = 0.0
    tenant_class: str = ""
    priority: float = 0.0
    num_shed: int = 0
    num_slo_met: int = 0
    num_slo_eligible: int = 0

    @property
    def slo_attainment(self) -> float:
        """Fraction of SLO-eligible work served within the latency target.

        1.0 when nothing was eligible (no class, or no latency SLO): a
        tenant with no target cannot have missed one.
        """
        if self.num_slo_eligible <= 0:
            return 1.0
        return self.num_slo_met / self.num_slo_eligible

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "num_queries": self.num_queries,
            "makespan": self.makespan,
            "mean_latency": self.mean_latency,
            "p50_latency": self.p50_latency,
            "p90_latency": self.p90_latency,
            "p99_latency": self.p99_latency,
            "num_failed": self.num_failed,
            "num_failed_attempts": self.num_failed_attempts,
            "num_retries": self.num_retries,
            "num_timeouts": self.num_timeouts,
            "goodput": self.goodput,
            "tenant_class": self.tenant_class,
            "priority": self.priority,
            "num_shed": self.num_shed,
            "num_slo_met": self.num_slo_met,
            "num_slo_eligible": self.num_slo_eligible,
            "slo_attainment": self.slo_attainment,
        }


@dataclass(frozen=True)
class ClassReport:
    """One tenant class's rollup across every tenant assigned to it."""

    tenant_class: str
    priority: float
    num_tenants: int
    num_queries: int
    num_failed: int
    num_shed: int
    num_slo_met: int
    num_slo_eligible: int
    goodput: float
    worst_p99_latency: float

    @property
    def slo_attainment(self) -> float:
        if self.num_slo_eligible <= 0:
            return 1.0
        return self.num_slo_met / self.num_slo_eligible

    @property
    def shed_rate(self) -> float:
        """Fraction of the class's offered work that was shed."""
        offered = self.num_queries + self.num_failed
        return self.num_shed / offered if offered > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "tenant_class": self.tenant_class,
            "priority": self.priority,
            "num_tenants": self.num_tenants,
            "num_queries": self.num_queries,
            "num_failed": self.num_failed,
            "num_shed": self.num_shed,
            "num_slo_met": self.num_slo_met,
            "num_slo_eligible": self.num_slo_eligible,
            "slo_attainment": self.slo_attainment,
            "shed_rate": self.shed_rate,
            "goodput": self.goodput,
            "worst_p99_latency": self.worst_p99_latency,
        }


@dataclass(frozen=True)
class ServiceReport:
    """Service-level summary across every tenant of a runtime round."""

    strategy: str
    total_time: float
    tenants: tuple[TenantReport, ...] = field(default_factory=tuple)
    #: Per-class rollups; empty when no tenant carries a class.
    classes: tuple[ClassReport, ...] = field(default_factory=tuple)

    @classmethod
    def from_runtime(cls, runtime: ExecutionRuntime, strategy: str = "service") -> "ServiceReport":
        """Summarise a finished runtime round.

        Well-formed for *every* tenant, including one with zero completed
        queries (all failed, or an empty stream): latency fields are zeroed
        instead of the NaN mean / ``IndexError`` percentile that
        ``np.percentile([])`` would produce.
        """
        if not runtime.is_done:
            raise SchedulingError("the runtime round has not finished yet")
        total_time = runtime.current_time
        reports = []
        for name, session in runtime.sessions().items():
            latencies = np.array(sorted(session.latencies().values()), dtype=np.float64)
            if latencies.size:
                mean_latency = float(latencies.mean())
                # Pin the interpolation method: NumPy changed the default
                # name ("linear" == the historical default) and baselines
                # depend on bit-stable percentiles across NumPy versions.
                p50, p90, p99 = (
                    float(np.percentile(latencies, q, method="linear")) for q in (50, 90, 99)
                )
            else:
                mean_latency = p50 = p90 = p99 = 0.0
            completed = len(session.finished)
            tenant_class = getattr(session, "tenant_class", None)
            num_shed = getattr(session, "num_shed", 0)
            slo_met = getattr(session, "num_slo_met", 0)
            slo_misses = getattr(session, "num_slo_misses", 0)
            if tenant_class is not None and tenant_class.latency_slo is not None:
                slo_eligible = slo_met + slo_misses + num_shed
            else:
                slo_met = 0
                slo_eligible = 0
            reports.append(
                TenantReport(
                    tenant=name,
                    num_queries=completed,
                    makespan=session.makespan,
                    mean_latency=mean_latency,
                    p50_latency=p50,
                    p90_latency=p90,
                    p99_latency=p99,
                    num_failed=len(getattr(session, "failed", ())),
                    num_failed_attempts=getattr(session, "num_failed_attempts", 0),
                    num_retries=getattr(session, "num_retries", 0),
                    num_timeouts=getattr(session, "num_timeouts", 0),
                    goodput=completed / total_time if total_time > 0 else 0.0,
                    tenant_class=tenant_class.name if tenant_class is not None else "",
                    priority=tenant_class.priority if tenant_class is not None else 0.0,
                    num_shed=num_shed,
                    num_slo_met=slo_met,
                    num_slo_eligible=slo_eligible,
                )
            )
        return cls(
            strategy=strategy,
            total_time=total_time,
            tenants=tuple(reports),
            classes=cls._rollup_classes(reports),
        )

    @staticmethod
    def _rollup_classes(tenants: "list[TenantReport]") -> tuple[ClassReport, ...]:
        """Aggregate tenant reports per tenant class, in first-seen order."""
        order: list[str] = []
        grouped: dict[str, list[TenantReport]] = {}
        for tenant in tenants:
            if not tenant.tenant_class:
                continue
            if tenant.tenant_class not in grouped:
                order.append(tenant.tenant_class)
                grouped[tenant.tenant_class] = []
            grouped[tenant.tenant_class].append(tenant)
        rollups = []
        for name in order:
            members = grouped[name]
            rollups.append(
                ClassReport(
                    tenant_class=name,
                    priority=members[0].priority,
                    num_tenants=len(members),
                    num_queries=sum(t.num_queries for t in members),
                    num_failed=sum(t.num_failed for t in members),
                    num_shed=sum(t.num_shed for t in members),
                    num_slo_met=sum(t.num_slo_met for t in members),
                    num_slo_eligible=sum(t.num_slo_eligible for t in members),
                    goodput=sum(t.goodput for t in members),
                    worst_p99_latency=max(t.p99_latency for t in members),
                )
            )
        return tuple(rollups)

    def class_report(self, name: str) -> ClassReport:
        """The rollup of one tenant class by name."""
        for rollup in self.classes:
            if rollup.tenant_class == name:
                return rollup
        raise SchedulingError(f"no tenant class {name!r} in this report")

    @property
    def max_makespan(self) -> float:
        return max((tenant.makespan for tenant in self.tenants), default=0.0)

    @property
    def total_completed(self) -> int:
        """Successful completions across every tenant."""
        return sum(tenant.num_queries for tenant in self.tenants)

    @property
    def total_failed(self) -> int:
        """Terminally failed queries across every tenant (shed included)."""
        return sum(tenant.num_failed for tenant in self.tenants)

    @property
    def total_shed(self) -> int:
        """Arrivals refused by admission control across every tenant."""
        return sum(tenant.num_shed for tenant in self.tenants)

    @property
    def total_failed_attempts(self) -> int:
        """Failed/killed attempts across every tenant (incl. retried ones)."""
        return sum(tenant.num_failed_attempts for tenant in self.tenants)

    @property
    def total_retries(self) -> int:
        return sum(tenant.num_retries for tenant in self.tenants)

    @property
    def total_timeouts(self) -> int:
        return sum(tenant.num_timeouts for tenant in self.tenants)

    @property
    def goodput(self) -> float:
        """Service-wide successful completions per second of wall clock."""
        return self.total_completed / self.total_time if self.total_time > 0 else 0.0

    @property
    def max_p99_latency(self) -> float:
        return max((tenant.p99_latency for tenant in self.tenants), default=0.0)

    def as_dict(self) -> dict:
        document = {
            "strategy": self.strategy,
            "total_time": self.total_time,
            "total_completed": self.total_completed,
            "total_failed": self.total_failed,
            "total_failed_attempts": self.total_failed_attempts,
            "total_retries": self.total_retries,
            "total_timeouts": self.total_timeouts,
            "goodput": self.goodput,
            "tenants": [tenant.as_dict() for tenant in self.tenants],
        }
        if self.classes:
            document["total_shed"] = self.total_shed
            document["classes"] = [rollup.as_dict() for rollup in self.classes]
        return document

    def __str__(self) -> str:
        lines = [f"ServiceReport(strategy={self.strategy}, total_time={self.total_time:.2f}s)"]
        for tenant in self.tenants:
            line = (
                f"  {tenant.tenant:<12} n={tenant.num_queries:<4} makespan={tenant.makespan:7.2f}s  "
                f"latency mean={tenant.mean_latency:6.2f}s p50={tenant.p50_latency:6.2f}s "
                f"p90={tenant.p90_latency:6.2f}s p99={tenant.p99_latency:6.2f}s"
            )
            if tenant.num_failed_attempts or tenant.num_failed:
                line += (
                    f"  faults: failed={tenant.num_failed} attempts={tenant.num_failed_attempts} "
                    f"retries={tenant.num_retries} timeouts={tenant.num_timeouts}"
                )
            if tenant.num_shed or tenant.num_slo_eligible:
                line += (
                    f"  slo: attainment={tenant.slo_attainment:.0%} shed={tenant.num_shed}"
                )
            lines.append(line)
        for rollup in self.classes:
            lines.append(
                f"  class {rollup.tenant_class:<10} (prio {rollup.priority:g}): "
                f"completed={rollup.num_queries} shed={rollup.num_shed} "
                f"slo_attainment={rollup.slo_attainment:.0%} goodput={rollup.goodput:.3f}/s"
            )
        return "\n".join(lines)
