"""Per-tenant service metrics for event-driven scheduling rounds.

A closed batch is judged by one number (makespan); a multi-tenant service
with streaming arrivals needs per-tenant makespans *and* per-query latency
percentiles (time from arrival to completion), which is what operators of a
shared cluster actually answer for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SchedulingError
from .runtime import ExecutionRuntime

__all__ = ["TenantReport", "ServiceReport"]


@dataclass(frozen=True)
class TenantReport:
    """Completion metrics of one tenant's round."""

    tenant: str
    num_queries: int
    makespan: float
    mean_latency: float
    p50_latency: float
    p90_latency: float
    p99_latency: float

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "num_queries": self.num_queries,
            "makespan": self.makespan,
            "mean_latency": self.mean_latency,
            "p50_latency": self.p50_latency,
            "p90_latency": self.p90_latency,
            "p99_latency": self.p99_latency,
        }


@dataclass(frozen=True)
class ServiceReport:
    """Service-level summary across every tenant of a runtime round."""

    strategy: str
    total_time: float
    tenants: tuple[TenantReport, ...] = field(default_factory=tuple)

    @classmethod
    def from_runtime(cls, runtime: ExecutionRuntime, strategy: str = "service") -> "ServiceReport":
        """Summarise a finished runtime round."""
        if not runtime.is_done:
            raise SchedulingError("the runtime round has not finished yet")
        reports = []
        for name, session in runtime.sessions().items():
            latencies = np.array(sorted(session.latencies().values()), dtype=np.float64)
            reports.append(
                TenantReport(
                    tenant=name,
                    num_queries=len(session.finished),
                    makespan=session.makespan,
                    mean_latency=float(latencies.mean()),
                    p50_latency=float(np.percentile(latencies, 50)),
                    p90_latency=float(np.percentile(latencies, 90)),
                    p99_latency=float(np.percentile(latencies, 99)),
                )
            )
        return cls(strategy=strategy, total_time=runtime.current_time, tenants=tuple(reports))

    @property
    def max_makespan(self) -> float:
        return max((tenant.makespan for tenant in self.tenants), default=0.0)

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "total_time": self.total_time,
            "tenants": [tenant.as_dict() for tenant in self.tenants],
        }

    def __str__(self) -> str:
        lines = [f"ServiceReport(strategy={self.strategy}, total_time={self.total_time:.2f}s)"]
        for tenant in self.tenants:
            lines.append(
                f"  {tenant.tenant:<12} n={tenant.num_queries:<4} makespan={tenant.makespan:7.2f}s  "
                f"latency mean={tenant.mean_latency:6.2f}s p50={tenant.p50_latency:6.2f}s "
                f"p90={tenant.p90_latency:6.2f}s p99={tenant.p99_latency:6.2f}s"
            )
        return "\n".join(lines)
