"""Per-tenant service metrics for event-driven scheduling rounds.

A closed batch is judged by one number (makespan); a multi-tenant service
with streaming arrivals needs per-tenant makespans *and* per-query latency
percentiles (time from arrival to completion), which is what operators of a
shared cluster actually answer for.  Fault-tolerant serving adds the failure
ledger: attempts that died, retries scheduled, straggler timeouts fired,
queries lost for good — and goodput, the completions the service actually
delivered per second of wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import SchedulingError
from .runtime import ExecutionRuntime

__all__ = ["TenantReport", "ServiceReport"]


@dataclass(frozen=True)
class TenantReport:
    """Completion metrics of one tenant's round.

    ``num_queries`` counts *successful* completions; a tenant whose queries
    all failed (or never arrived) reports zeroed latency fields rather than
    NaN — see :meth:`ServiceReport.from_runtime`.
    """

    tenant: str
    num_queries: int
    makespan: float
    mean_latency: float
    p50_latency: float
    p90_latency: float
    p99_latency: float
    num_failed: int = 0
    num_failed_attempts: int = 0
    num_retries: int = 0
    num_timeouts: int = 0
    goodput: float = 0.0

    def as_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "num_queries": self.num_queries,
            "makespan": self.makespan,
            "mean_latency": self.mean_latency,
            "p50_latency": self.p50_latency,
            "p90_latency": self.p90_latency,
            "p99_latency": self.p99_latency,
            "num_failed": self.num_failed,
            "num_failed_attempts": self.num_failed_attempts,
            "num_retries": self.num_retries,
            "num_timeouts": self.num_timeouts,
            "goodput": self.goodput,
        }


@dataclass(frozen=True)
class ServiceReport:
    """Service-level summary across every tenant of a runtime round."""

    strategy: str
    total_time: float
    tenants: tuple[TenantReport, ...] = field(default_factory=tuple)

    @classmethod
    def from_runtime(cls, runtime: ExecutionRuntime, strategy: str = "service") -> "ServiceReport":
        """Summarise a finished runtime round.

        Well-formed for *every* tenant, including one with zero completed
        queries (all failed, or an empty stream): latency fields are zeroed
        instead of the NaN mean / ``IndexError`` percentile that
        ``np.percentile([])`` would produce.
        """
        if not runtime.is_done:
            raise SchedulingError("the runtime round has not finished yet")
        total_time = runtime.current_time
        reports = []
        for name, session in runtime.sessions().items():
            latencies = np.array(sorted(session.latencies().values()), dtype=np.float64)
            if latencies.size:
                mean_latency = float(latencies.mean())
                p50, p90, p99 = (float(np.percentile(latencies, q)) for q in (50, 90, 99))
            else:
                mean_latency = p50 = p90 = p99 = 0.0
            completed = len(session.finished)
            reports.append(
                TenantReport(
                    tenant=name,
                    num_queries=completed,
                    makespan=session.makespan,
                    mean_latency=mean_latency,
                    p50_latency=p50,
                    p90_latency=p90,
                    p99_latency=p99,
                    num_failed=len(getattr(session, "failed", ())),
                    num_failed_attempts=getattr(session, "num_failed_attempts", 0),
                    num_retries=getattr(session, "num_retries", 0),
                    num_timeouts=getattr(session, "num_timeouts", 0),
                    goodput=completed / total_time if total_time > 0 else 0.0,
                )
            )
        return cls(strategy=strategy, total_time=total_time, tenants=tuple(reports))

    @property
    def max_makespan(self) -> float:
        return max((tenant.makespan for tenant in self.tenants), default=0.0)

    @property
    def total_completed(self) -> int:
        """Successful completions across every tenant."""
        return sum(tenant.num_queries for tenant in self.tenants)

    @property
    def total_failed(self) -> int:
        """Terminally failed queries across every tenant."""
        return sum(tenant.num_failed for tenant in self.tenants)

    @property
    def total_failed_attempts(self) -> int:
        """Failed/killed attempts across every tenant (incl. retried ones)."""
        return sum(tenant.num_failed_attempts for tenant in self.tenants)

    @property
    def total_retries(self) -> int:
        return sum(tenant.num_retries for tenant in self.tenants)

    @property
    def total_timeouts(self) -> int:
        return sum(tenant.num_timeouts for tenant in self.tenants)

    @property
    def goodput(self) -> float:
        """Service-wide successful completions per second of wall clock."""
        return self.total_completed / self.total_time if self.total_time > 0 else 0.0

    @property
    def max_p99_latency(self) -> float:
        return max((tenant.p99_latency for tenant in self.tenants), default=0.0)

    def as_dict(self) -> dict:
        return {
            "strategy": self.strategy,
            "total_time": self.total_time,
            "total_completed": self.total_completed,
            "total_failed": self.total_failed,
            "total_failed_attempts": self.total_failed_attempts,
            "total_retries": self.total_retries,
            "total_timeouts": self.total_timeouts,
            "goodput": self.goodput,
            "tenants": [tenant.as_dict() for tenant in self.tenants],
        }

    def __str__(self) -> str:
        lines = [f"ServiceReport(strategy={self.strategy}, total_time={self.total_time:.2f}s)"]
        for tenant in self.tenants:
            line = (
                f"  {tenant.tenant:<12} n={tenant.num_queries:<4} makespan={tenant.makespan:7.2f}s  "
                f"latency mean={tenant.mean_latency:6.2f}s p50={tenant.p50_latency:6.2f}s "
                f"p90={tenant.p90_latency:6.2f}s p99={tenant.p99_latency:6.2f}s"
            )
            if tenant.num_failed_attempts or tenant.num_failed:
                line += (
                    f"  faults: failed={tenant.num_failed} attempts={tenant.num_failed_attempts} "
                    f"retries={tenant.num_retries} timeouts={tenant.num_timeouts}"
                )
            lines.append(line)
        return "\n".join(lines)
