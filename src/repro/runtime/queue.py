"""A time-ordered event queue.

A thin, deterministic priority queue over :mod:`repro.runtime.events`: events
pop in time order, with insertion order breaking ties so that two arrivals at
the same instant are delivered in the order they were scheduled (tenant
registration order, then query index).  Determinism matters — the whole
reproduction is seed-for-seed reproducible and the runtime must not
introduce ordering noise.
"""

from __future__ import annotations

import heapq

from ..exceptions import SchedulingError
from .events import RuntimeEvent

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of runtime events keyed by ``(time, insertion order)``."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, RuntimeEvent]] = []
        self._counter = 0

    def push(self, event: RuntimeEvent) -> None:
        if event.time < 0:
            raise SchedulingError(f"event time must be >= 0, got {event.time}")
        heapq.heappush(self._heap, (event.time, self._counter, event))
        self._counter += 1

    def peek(self) -> RuntimeEvent | None:
        """The earliest event without removing it (``None`` when empty)."""
        return self._heap[0][2] if self._heap else None

    def peek_time(self) -> float | None:
        """Time of the earliest event (``None`` when empty)."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> RuntimeEvent:
        if not self._heap:
            raise SchedulingError("cannot pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def clear(self) -> None:
        self._heap.clear()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
