"""A time-ordered event queue.

A thin, deterministic priority queue over :mod:`repro.runtime.events`: events
pop in time order, with insertion order breaking ties so that two arrivals at
the same instant are delivered in the order they were scheduled (tenant
registration order, then query index).  Determinism matters — the whole
reproduction is seed-for-seed reproducible and the runtime must not
introduce ordering noise.

Two implementations share the same API and the same ``(time, insertion
order)`` total order:

* :class:`EventQueue` — a plain binary heap; the default.
* :class:`CalendarEventQueue` — a calendar (sharded-bucket) queue that
  partitions the timeline into fixed-width buckets, each holding its own
  small heap.  With many scheduled events (large streaming rounds, dense
  retry backoffs) per-operation heap depth shrinks to the bucket's
  occupancy; pop order is bit-identical to the binary heap (verified by
  digest in ``tests/test_hotpath.py``).
"""

from __future__ import annotations

import heapq
from typing import Iterable

from ..exceptions import SchedulingError
from .events import RuntimeEvent

__all__ = ["EventQueue", "CalendarEventQueue"]


class EventQueue:
    """Min-heap of runtime events keyed by ``(time, insertion order)``."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, RuntimeEvent]] = []
        self._counter = 0

    def push(self, event: RuntimeEvent) -> None:
        if event.time < 0:
            raise SchedulingError(f"event time must be >= 0, got {event.time}")
        heapq.heappush(self._heap, (event.time, self._counter, event))
        self._counter += 1

    def extend(self, events: Iterable[RuntimeEvent]) -> None:
        """Bulk-schedule events: one O(n) heapify instead of n sift-ups.

        Insertion counters are assigned in iteration order, so ties break
        exactly as they would under repeated :meth:`push`.
        """
        appended = False
        for event in events:
            if event.time < 0:
                raise SchedulingError(f"event time must be >= 0, got {event.time}")
            self._heap.append((event.time, self._counter, event))
            self._counter += 1
            appended = True
        if appended:
            heapq.heapify(self._heap)

    def peek(self) -> RuntimeEvent | None:
        """The earliest event without removing it (``None`` when empty)."""
        return self._heap[0][2] if self._heap else None

    def peek_time(self) -> float | None:
        """Time of the earliest event (``None`` when empty)."""
        return self._heap[0][0] if self._heap else None

    def pop(self) -> RuntimeEvent:
        if not self._heap:
            raise SchedulingError("cannot pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def pop_due(self, now: float) -> RuntimeEvent | None:
        """Pop the earliest event if it is due at ``now`` (one find-min).

        Collapses the runtime's former ``peek_time()``-then-``pop()`` pair
        into a single head access: returns ``None`` when the queue is empty
        or the earliest event lies in the future, otherwise pops it.
        """
        if self._heap and self._heap[0][0] <= now:
            return heapq.heappop(self._heap)[2]
        return None

    def clear(self) -> None:
        self._heap.clear()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class CalendarEventQueue:
    """Calendar (sharded-bucket) event queue, API-compatible with
    :class:`EventQueue`.

    The timeline is partitioned into fixed-width buckets keyed by
    ``floor(time / bucket_width)``; each bucket is a small heap of
    ``(time, insertion order, event)`` and a second heap orders the bucket
    keys.  Because buckets partition disjoint time ranges, the earliest
    entry of the earliest non-empty bucket is the global minimum, and the
    shared insertion counter preserves the exact ``(time, insertion
    order)`` total order of the binary-heap queue.
    """

    def __init__(self, bucket_width: float = 1.0) -> None:
        if bucket_width <= 0:
            raise SchedulingError(f"bucket width must be > 0, got {bucket_width}")
        self._width = float(bucket_width)
        self._buckets: dict[int, list[tuple[float, int, RuntimeEvent]]] = {}
        self._keys: list[int] = []
        self._counter = 0
        self._size = 0

    def push(self, event: RuntimeEvent) -> None:
        if event.time < 0:
            raise SchedulingError(f"event time must be >= 0, got {event.time}")
        key = int(event.time // self._width)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = []
            self._buckets[key] = bucket
            heapq.heappush(self._keys, key)
        heapq.heappush(bucket, (event.time, self._counter, event))
        self._counter += 1
        self._size += 1

    def extend(self, events: Iterable[RuntimeEvent]) -> None:
        """Bulk-schedule events (same tie-breaking as repeated pushes)."""
        for event in events:
            self.push(event)

    def _head_bucket(self) -> "list[tuple[float, int, RuntimeEvent]] | None":
        """Earliest non-empty bucket, discarding stale keys along the way."""
        while self._keys:
            bucket = self._buckets.get(self._keys[0])
            if bucket:
                return bucket
            stale = heapq.heappop(self._keys)
            self._buckets.pop(stale, None)
        return None

    def peek(self) -> RuntimeEvent | None:
        """The earliest event without removing it (``None`` when empty)."""
        bucket = self._head_bucket()
        return bucket[0][2] if bucket else None

    def peek_time(self) -> float | None:
        """Time of the earliest event (``None`` when empty)."""
        bucket = self._head_bucket()
        return bucket[0][0] if bucket else None

    def pop(self) -> RuntimeEvent:
        bucket = self._head_bucket()
        if bucket is None:
            raise SchedulingError("cannot pop from an empty event queue")
        event = heapq.heappop(bucket)[2]
        self._size -= 1
        if not bucket:
            key = heapq.heappop(self._keys)
            del self._buckets[key]
        return event

    def pop_due(self, now: float) -> RuntimeEvent | None:
        """Pop the earliest event if it is due at ``now`` (one find-min)."""
        bucket = self._head_bucket()
        if bucket is None or bucket[0][0] > now:
            return None
        return self.pop()

    def clear(self) -> None:
        self._buckets.clear()
        self._keys.clear()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0
