"""Event-driven execution runtime: multi-tenant sessions, streaming arrivals.

The runtime turns the repo's engine↔scheduler coupling from a pull-style
single-batch loop into an event-queue architecture:

* :class:`EventQueue` orders future events (streaming query arrivals);
  :class:`CalendarEventQueue` is a drop-in sharded-bucket variant with
  bit-identical pop order.
* :class:`ExecutionRuntime` advances the shared backend session (fluid
  engine or learned simulator) to the next completion-or-arrival event and
  dispatches it to the tenant that owns the query.
* :class:`RuntimeTenant` / :class:`TenantSession` give each tenant a
  session-protocol view scoped to its own query ids, so
  :class:`~repro.core.env.SchedulingEnv` drives a shared round exactly the
  way it drives a private one.
* :class:`ServiceReport` summarises per-tenant makespan and latency
  percentiles once a round drains.
"""

from ..config import RetryPolicy
from .events import (
    InstanceRecovery,
    QueryArrival,
    QueryCompletion,
    QueryFailure,
    QueryRetry,
    QueryTimeout,
    RuntimeEvent,
)
from .queue import CalendarEventQueue, EventQueue
from .report import ServiceReport, TenantReport
from .runtime import ExecutionRuntime, RuntimeTenant, TenantSession

__all__ = [
    "InstanceRecovery",
    "QueryArrival",
    "QueryCompletion",
    "QueryFailure",
    "QueryRetry",
    "QueryTimeout",
    "RetryPolicy",
    "RuntimeEvent",
    "CalendarEventQueue",
    "EventQueue",
    "ServiceReport",
    "TenantReport",
    "ExecutionRuntime",
    "RuntimeTenant",
    "TenantSession",
]
