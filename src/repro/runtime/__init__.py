"""Event-driven execution runtime: multi-tenant sessions, streaming arrivals.

The runtime turns the repo's engine↔scheduler coupling from a pull-style
single-batch loop into an event-queue architecture:

* :class:`EventQueue` orders future events (streaming query arrivals);
  :class:`CalendarEventQueue` is a drop-in sharded-bucket variant with
  bit-identical pop order.
* :class:`ExecutionRuntime` advances the shared backend session (fluid
  engine or learned simulator) to the next completion-or-arrival event and
  dispatches it to the tenant that owns the query.
* :class:`RuntimeTenant` / :class:`TenantSession` give each tenant a
  session-protocol view scoped to its own query ids, so
  :class:`~repro.core.env.SchedulingEnv` drives a shared round exactly the
  way it drives a private one.
* :class:`ControlPlane` (with :class:`TenantClass`,
  :class:`AdmissionController` and :class:`FleetController`) layers SLO
  classes, token-bucket admission / load shedding and elastic fleet
  autoscaling on top of the same event loop — all opt-in.
* :class:`ServiceReport` summarises per-tenant makespan and latency
  percentiles once a round drains; :class:`ClassReport` rolls the ledger up
  per tenant class (SLO attainment, shed rate, goodput).
"""

from ..config import AdmissionPolicy, AutoscalePolicy, RetryPolicy
from .controlplane import (
    AdmissionController,
    ControlPlane,
    FleetController,
    ScaleEvent,
    TenantClass,
    TokenBucket,
)
from .events import (
    InstanceRecovery,
    QueryArrival,
    QueryCompletion,
    QueryFailure,
    QueryRetry,
    QueryShed,
    QueryTimeout,
    RuntimeEvent,
)
from .queue import CalendarEventQueue, EventQueue
from .report import ClassReport, ServiceReport, TenantReport
from .runtime import ExecutionRuntime, RuntimeTenant, TenantSession

__all__ = [
    "InstanceRecovery",
    "QueryArrival",
    "QueryCompletion",
    "QueryFailure",
    "QueryRetry",
    "QueryShed",
    "QueryTimeout",
    "AdmissionPolicy",
    "AutoscalePolicy",
    "RetryPolicy",
    "RuntimeEvent",
    "CalendarEventQueue",
    "EventQueue",
    "AdmissionController",
    "ControlPlane",
    "FleetController",
    "ScaleEvent",
    "TenantClass",
    "TokenBucket",
    "ClassReport",
    "ServiceReport",
    "TenantReport",
    "ExecutionRuntime",
    "RuntimeTenant",
    "TenantSession",
]
