"""The event-driven execution runtime: multi-tenant rounds, many instances.

BQSched is non-intrusive: the scheduler only submits queries to connections
and observes completion events.  :class:`ExecutionRuntime` makes that
interface literal.  It owns ONE backend session per round — the fluid-model
engine, the learned simulator, or a :class:`~repro.dbms.Cluster` session
that itself spans N engine instances — and multiplexes it between N *tenants*:
independent batch query sets that share the engine's connections, buffer
pool and contention model while keeping their own pending sets, logs and
metrics.  The runtime advances the engine to the next event (a query
completion, or a scheduled streaming arrival from the
:class:`~repro.runtime.EventQueue`) and dispatches it to the owning tenant.

Tenants interact through :class:`TenantSession`, which speaks exactly the
session protocol :class:`~repro.core.env.SchedulingEnv` already consumes —
the environment is a thin runtime client, and single-tenant closed-batch
rounds through the runtime are bit-for-bit identical to driving the engine
session directly (verified by digest in ``tests/test_runtime.py``).

Global/local id mapping: tenant batches are concatenated in registration
order into one union batch, so tenant ``t`` with offset ``o`` owns global
ids ``[o, o + len(batch))``; every event a tenant sees carries its *local*
id, which is what keeps per-tenant logs disjoint and self-consistent.

Cluster routing: when the backend is a :class:`~repro.dbms.Cluster`, the
shared session routes submissions to engine *instances* (``submit`` takes a
placement) and each instance keeps its own completion buffer; the cluster
session merges those per-instance event streams into the single time-ordered
stream the runtime consumes, alongside the scheduled arrivals of the global
:class:`~repro.runtime.EventQueue`.  Completion events then carry the
instance they happened on, so tenants can attribute latency to placement.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..config import RetryPolicy
from ..dbms.engine import CompletionEvent, RunningQueryState
from ..dbms.faults import FAILURE_OUTAGE, FAILURE_TIMEOUT
from ..dbms.logs import QueryExecutionRecord, RoundLog
from ..exceptions import SchedulingError
from ..seeding import SeedSpawner
from ..workloads import ArrivalProcess, BatchQuerySet
from .controlplane import ControlPlane, TenantClass
from .events import (
    InstanceRecovery,
    QueryArrival,
    QueryCompletion,
    QueryFailure,
    QueryRetry,
    QueryShed,
    QueryTimeout,
    RuntimeEvent,
)
from .queue import CalendarEventQueue, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dbms.faults import FailureProfile
    from ..dbms.params import RunningParameters

__all__ = ["ExecutionRuntime", "RuntimeTenant", "TenantSession"]

#: Root of the arrival-sampling entropy tree; ``derive(round_id, offset)``
#: reproduces the historical ``default_rng((0xA881, round_id, offset))``.
_ARRIVAL_SEEDS = SeedSpawner(0xA881)


@dataclass
class _TenantState:
    """Registration-time description of one tenant."""

    name: str
    batch: BatchQuerySet
    arrivals: "ArrivalProcess | np.ndarray | None"
    offset: int
    session: "TenantSession | None" = None
    claimed: bool = False
    tenant_class: "TenantClass | None" = None


class ExecutionRuntime:
    """Advances one shared backend session and dispatches events to tenants.

    ``faults`` injects a :class:`~repro.dbms.faults.FailureProfile` into
    every round the runtime opens (passed through to the backend's
    ``new_session``); ``retry`` governs how failed attempts are handled —
    backoff re-arrivals through the event queue, straggler timeout kills,
    and the terminal-failure fallback once the attempt budget is exhausted.
    Instance-outage kills are *always* requeued (retry policy or not): an
    outage is the fleet's fault, not the query's.  Both default to ``None``,
    which keeps every code path bit-identical to the fault-free tree.

    Arrival handling, retry decisions and elastic fleet sizing all flow
    through one :class:`~repro.runtime.controlplane.ControlPlane`.  Pass
    ``control`` to turn on admission control (arrivals can be *shed* under
    overload) and autoscaling (instances park/unpark with the backlog); the
    default control plane admits everything, never scales, and reproduces
    the legacy retry arithmetic exactly.  ``retry`` and a ``control`` that
    carries its own policy are mutually exclusive — one owner per decision.
    """

    def __init__(
        self,
        backend: Any,
        retry: RetryPolicy | None = None,
        faults: "FailureProfile | None" = None,
        event_queue: "EventQueue | CalendarEventQueue | None" = None,
        control: "ControlPlane | None" = None,
    ) -> None:
        self.backend = backend
        if control is None:
            control = ControlPlane(retry=retry)
        elif retry is not None:
            if control.retry is not None and control.retry is not retry:
                raise SchedulingError(
                    "pass the retry policy through the control plane (or as retry=), not both"
                )
            control.retry = retry
        self.control = control
        self.retry = control.retry
        self.faults = faults
        self._tenants: dict[str, _TenantState] = {}
        self._offsets: list[int] = []
        self._order: list[str] = []
        #: Scheduled-event queue; callers may inject a
        #: :class:`~repro.runtime.CalendarEventQueue` — pop order is
        #: bit-identical, only the per-operation cost profile changes.
        self.events: "EventQueue | CalendarEventQueue" = (
            event_queue if event_queue is not None else EventQueue()
        )
        self._shared: Any = None
        #: Submissions so far per *global* query id (1-based after the first
        #: submit); strictly monotonic — attempt numbers are never reused, so
        #: a scheduled timeout check can always tell whether its attempt is
        #: still the live one.  Cleared when a fresh round opens.
        self._attempts: dict[int, int] = {}
        #: Outage kills per global query id: these don't count against
        #: ``RetryPolicy.max_attempts`` (the fleet failed, not the query).
        self._outage_kills: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Tenant registration
    # ------------------------------------------------------------------ #
    def register(
        self,
        name: str,
        batch: BatchQuerySet,
        arrivals: "ArrivalProcess | Sequence[float] | None" = None,
        tenant_class: "TenantClass | None" = None,
    ) -> "RuntimeTenant":
        """Register a tenant before any round opens.

        ``arrivals`` opens the tenant's batch into a stream: either an
        :class:`~repro.workloads.ArrivalProcess` (re-sampled every round) or
        explicit per-query arrival times.  ``None`` keeps the closed-batch
        scenario (everything pending at time zero).

        ``tenant_class`` assigns the tenant a service tier
        (:class:`~repro.runtime.controlplane.TenantClass`): its priority
        drives admission exemption and fairness shaping, its latency SLO is
        graded per completion, and its deadline caps retries.  ``None`` (the
        default) keeps the tenant classless and bit-identical to before.
        """
        if self._shared is not None:
            raise SchedulingError("tenants must register before the first round opens")
        if name in self._tenants:
            raise SchedulingError(f"tenant {name!r} is already registered")
        times: "ArrivalProcess | np.ndarray | None"
        if arrivals is not None and not isinstance(arrivals, ArrivalProcess):
            times = np.asarray(list(arrivals), dtype=np.float64)
            if times.shape != (len(batch),):
                raise SchedulingError("explicit arrival times must provide one time per query")
            if (times < 0).any():
                raise SchedulingError("arrival times must be >= 0")
        else:
            times = arrivals
        if tenant_class is not None and not isinstance(tenant_class, TenantClass):
            raise SchedulingError("tenant_class must be a TenantClass (or None)")
        offset = sum(len(state.batch) for state in self._tenants.values())
        self._tenants[name] = _TenantState(
            name=name, batch=batch, arrivals=times, offset=offset, tenant_class=tenant_class
        )
        self._offsets.append(offset)
        self._order.append(name)
        return RuntimeTenant(self, name)

    def tenant(self, name: str) -> "RuntimeTenant":
        """Handle for an already-registered tenant."""
        if name not in self._tenants:
            raise SchedulingError(f"unknown tenant {name!r}")
        return RuntimeTenant(self, name)

    @property
    def num_tenants(self) -> int:
        return len(self._tenants)

    @property
    def tenant_names(self) -> list[str]:
        return list(self._order)

    @property
    def shared_session(self) -> Any:
        """The backend session of the current round (read-only access)."""
        if self._shared is None:
            raise SchedulingError("no round is open")
        return self._shared

    def sessions(self) -> "dict[str, TenantSession]":
        """The live tenant sessions of the current round."""
        if self._shared is None:
            raise SchedulingError("no round is open")
        live = {}
        for name in self._order:
            session = self._tenants[name].session
            assert session is not None
            live[name] = session
        return live

    # ------------------------------------------------------------------ #
    # Round lifecycle
    # ------------------------------------------------------------------ #
    def open_for(
        self,
        name: str,
        batch: BatchQuerySet,
        num_connections: int | None = None,
        strategy: str = "",
        round_id: int | None = None,
    ) -> "TenantSession":
        """Open (or join) a round on behalf of tenant ``name``.

        The first tenant to ask opens the shared round with its parameters;
        the remaining tenants join it and their ``round_id``/``strategy``
        arguments are ignored.  Once every tenant's round is complete, the
        next call opens a fresh round.  A lone tenant may abandon an
        unfinished round (the RL training loop resets mid-episode during
        evaluation); with multiple live tenants that would corrupt the peers'
        rounds and raises instead.
        """
        if name not in self._tenants:
            raise SchedulingError(f"unknown tenant {name!r}")
        state = self._tenants[name]
        if len(batch) != len(state.batch):
            raise SchedulingError(
                f"tenant {name!r} registered {len(state.batch)} queries but requested {len(batch)}"
            )
        if self._shared is not None:
            if not state.claimed:
                state.claimed = True
                assert state.session is not None
                return state.session
            others_done = all(
                other.session is None or other.session.is_done
                for other in self._tenants.values()
                if other.name != name
            )
            if not others_done:
                raise SchedulingError(
                    f"tenant {name!r} cannot reopen: peers are still scheduling in the shared round"
                )
        self._open_round(num_connections=num_connections, strategy=strategy, round_id=round_id)
        state.claimed = True
        assert state.session is not None
        return state.session

    def _open_round(self, num_connections: int | None, strategy: str, round_id: int | None) -> None:
        union = BatchQuerySet([query for name in self._order for query in self._tenants[name].batch])
        if self.faults is None:
            self._shared = self.backend.new_session(
                union,
                num_connections=num_connections,
                strategy=strategy,
                round_id=round_id,
            )
        else:
            self._shared = self.backend.new_session(
                union,
                num_connections=num_connections,
                strategy=strategy,
                round_id=round_id,
                faults=self.faults,
            )
        self.events.clear()
        self._attempts.clear()
        self._outage_kills.clear()
        self.control.reset_round()
        opened_round_id = self._shared.log.round_id
        for state in self._tenants.values():
            times = self._arrival_times(state, opened_round_id)
            state.session = TenantSession(self, state, arrival_times=times)
            state.claimed = False
            if times is not None:
                deferred = [state.offset + i for i in range(len(state.batch)) if times[i] > 0.0]
                self._shared.defer(deferred)
                # Bulk-schedule the round's arrivals: one heapify instead of
                # one sift-up per deferred query.
                self.events.extend(
                    QueryArrival(time=float(times[i]), tenant=state.name, query_id=i)
                    for i in range(len(state.batch))
                    if times[i] > 0.0
                )
        # Elastic fleets start at their configured initial size: instances
        # beyond it are parked before any submission happens.
        self.control.on_round_open(self._shared)

    def _arrival_times(self, state: _TenantState, round_id: int) -> "np.ndarray | None":
        if state.arrivals is None:
            return None
        if isinstance(state.arrivals, ArrivalProcess):
            rng = _ARRIVAL_SEEDS.derive(round_id, state.offset)
            return np.asarray(state.arrivals.times(len(state.batch), rng), dtype=np.float64)
        return state.arrivals

    @property
    def _round_done(self) -> bool:
        return self._shared is not None and self._shared.is_done

    @property
    def is_done(self) -> bool:
        """Whether the current round has drained every tenant's work."""
        return self._round_done

    @property
    def current_time(self) -> float:
        return self.shared_session.current_time

    # ------------------------------------------------------------------ #
    # Event loop
    # ------------------------------------------------------------------ #
    def advance(self) -> RuntimeEvent:
        """Advance the engine to the next event, dispatch it, and return it.

        The next event is either the earliest query completion (or failure)
        the backend predicts, the earliest scheduled event (arrival, retry
        re-arrival, timeout check), or — on a faulty backend — the earliest
        instance recovery.  Ties resolve in favour of the completion (its
        finish instant is at or before the scheduled event's), which keeps
        the closed single-tenant path identical to driving the engine
        session directly.  Stale timeout checks are consumed silently and
        the loop keeps advancing until a real event surfaces.

        With an autoscaling control plane, every dispatched event is also a
        fleet-sizing tick: the backlog is re-measured and an instance may be
        parked or unparked before the event returns to the caller.
        """
        event = self._advance_event()
        if self.control.has_autoscaler:
            self.control.autoscale(
                self.shared_session, self._total_backlog(), self.shared_session.current_time
            )
        return event

    def _total_backlog(self) -> int:
        """Pending-but-unsubmitted queries across every tenant right now."""
        backlog = 0
        for state in self._tenants.values():
            if state.session is not None:
                backlog += len(state.session.pending)
        return backlog

    def _advance_event(self) -> RuntimeEvent:
        shared = self.shared_session
        while True:
            next_scheduled = self.events.peek_time()
            wakeup_fn = getattr(shared, "next_fault_wakeup", None)
            wakeup = wakeup_fn() if wakeup_fn is not None else None
            limits = [value for value in (next_scheduled, wakeup) if value is not None]
            limit = min(limits) if limits else None
            if shared.num_running:
                completion = shared.advance(limit=limit)
                if completion is not None:
                    return self._dispatch_completion(completion)
            elif limit is None:
                raise self._deadlock_error()
            else:
                shared.advance(limit=limit)
            # Single head access: pops the scheduled event iff it is due
            # (the queue is untouched between the peek above and here, so
            # this is exactly the former peek-then-pop pair collapsed).
            due = self.events.pop_due(shared.current_time)
            if due is not None:
                event = self._apply_scheduled_event(due)
                if event is not None:
                    return event
                # Stale timeout check: nothing happened — but popping it may
                # have idled the clock across a recovery boundary, and then
                # control must return to the schedulers (capacity is back).
                if wakeup is not None and shared.current_time >= wakeup:
                    return InstanceRecovery(time=shared.current_time)
                continue
            # The clock stopped at a fault wake-up: downed capacity returned.
            return InstanceRecovery(time=shared.current_time)

    def _deadlock_error(self) -> SchedulingError:
        """Diagnostic for a stalled round: who still holds undrained work.

        Shed (not-admitted) arrivals are named explicitly: an over-aggressive
        admission policy that starves the round should read as exactly that,
        not as a drain bug.
        """
        details = []
        for name in self._order:
            session = self._tenants[name].session
            if session is None or session.is_done:
                continue
            details.append(
                f"{name!r}: pending={len(session.pending)}, running={session.num_running}, "
                f"unarrived={len(session.unarrived_ids())}, awaiting_retry={len(session.retrying_ids())}, "
                f"shed={session.num_shed}"
            )
        undrained = "; ".join(details) if details else "none (shared session holds orphaned work)"
        shed_note = ""
        shed_counts = self.control.shed_counts()
        if any(shed_counts.values()):
            per_tenant = ", ".join(f"{name!r}: {count}" for name, count in sorted(shed_counts.items()))
            shed_note = (
                f" Admission control shed {sum(shed_counts.values())} arrival(s) this round "
                f"({per_tenant}) — shed queries never become pending, so an over-aggressive "
                "admission policy can leave tenants with nothing left to run."
            )
        return SchedulingError(
            "cannot advance: nothing is running, no event is scheduled and no recovery is "
            f"pending — the round is deadlocked. Undrained tenants: {undrained}.{shed_note}"
        )

    def _apply_scheduled_event(self, event: RuntimeEvent) -> "RuntimeEvent | None":
        """Apply an already-popped scheduled event (``None`` if it was stale)."""
        state = self._tenants[event.tenant]
        assert state.session is not None
        if isinstance(event, QueryArrival):
            if not self.control.admits_all and not self.control.admit(
                state.name, state.tenant_class, event.time, self._total_backlog()
            ):
                # Shed: the arrival is refused under overload.  The query is
                # terminally failed straight from deferred — it never becomes
                # pending, consumes no connection and no retry budget — and
                # the tenant's shed ledger records the decision.
                self.shared_session.mark_failed(state.offset + event.query_id)
                shed = QueryShed(time=event.time, tenant=state.name, query_id=event.query_id)
                state.session._on_shed(shed)
                return shed
            self.shared_session.release(state.offset + event.query_id)
            state.session._on_arrival(event)
            return event
        if isinstance(event, QueryRetry):
            self.shared_session.release(state.offset + event.query_id)
            state.session._on_retry(event)
            return event
        assert isinstance(event, QueryTimeout)
        return self._apply_timeout(event, state)

    def _apply_timeout(self, event: QueryTimeout, state: _TenantState) -> "QueryFailure | None":
        """Kill-and-requeue a straggler, unless the check is stale."""
        shared = self.shared_session
        global_id = state.offset + event.query_id
        if self._attempts.get(global_id, 0) != event.attempt or global_id not in shared.running:
            return None
        instance_of = getattr(shared, "instance_of", None)
        instance = instance_of(global_id) if instance_of is not None else 0
        connection = shared.cancel(global_id)
        return self._register_failure(
            state,
            event.query_id,
            time=shared.current_time,
            connection=connection,
            instance=max(0, instance),
            reason=FAILURE_TIMEOUT,
        )

    def _register_failure(
        self,
        state: _TenantState,
        local_id: int,
        time: float,
        connection: int,
        instance: int,
        reason: str,
    ) -> QueryFailure:
        """Decide one failed attempt's future: retry re-arrival or terminal.

        By the time this runs the shared session holds the query *pending*
        again (failed attempts always return there); retrying moves it to
        deferred until the scheduled :class:`QueryRetry` releases it.
        """
        global_id = state.offset + local_id
        attempt = self._attempts.get(global_id, 1)
        shared = self.shared_session
        if reason == FAILURE_OUTAGE:
            # Outage kills requeue immediately and don't consume any of the
            # retry budget: the dead instance is excluded naturally (it has
            # no idle connections until it recovers), so the resubmission
            # lands on surviving capacity.  The submission counter itself
            # stays monotonic — reusing attempt numbers would let a stale
            # pre-outage timeout check alias onto the fresh attempt.
            self._outage_kills[global_id] = self._outage_kills.get(global_id, 0) + 1
        give_up_at: float | None = None
        if state.tenant_class is not None and state.tenant_class.deadline is not None:
            assert state.session is not None
            give_up_at = state.session.arrival_time(local_id) + state.tenant_class.deadline
        will_retry, delay = self.control.decide_retry(
            reason=reason,
            attempt=attempt,
            outage_kills=self._outage_kills.get(global_id, 0),
            time=time,
            give_up_at=give_up_at,
        )
        retry_at: float | None = None
        if will_retry:
            retry_at = time + delay
            shared.defer([global_id])
            self.events.push(
                QueryRetry(time=retry_at, tenant=state.name, query_id=local_id, attempt=attempt + 1)
            )
        else:
            shared.mark_failed(global_id)
        event = QueryFailure(
            time=time,
            tenant=state.name,
            query_id=local_id,
            connection=connection,
            instance=instance,
            reason=reason,
            attempt=attempt,
            will_retry=will_retry,
            retry_at=retry_at,
        )
        assert state.session is not None
        state.session._on_failure(event)
        return event

    def _note_submit(self, state: _TenantState, local_id: int) -> None:
        """Count one submission attempt and arm its straggler timeout."""
        global_id = state.offset + local_id
        attempt = self._attempts.get(global_id, 0) + 1
        self._attempts[global_id] = attempt
        if self.retry is not None and self.retry.timeout is not None:
            self.events.push(
                QueryTimeout(
                    time=self.shared_session.current_time + self.retry.timeout,
                    tenant=state.name,
                    query_id=local_id,
                    attempt=attempt,
                )
            )

    def attempts_of(self, state: "_TenantState", local_id: int) -> int:
        """Submission attempts so far for a tenant-local query id."""
        return self._attempts.get(state.offset + local_id, 0)

    def _dispatch_completion(self, completion: CompletionEvent) -> "QueryCompletion | QueryFailure":
        state, local_id = self._locate(completion.query_id)
        if completion.failed:
            return self._register_failure(
                state,
                local_id,
                time=completion.finish_time,
                connection=completion.connection,
                instance=completion.instance,
                reason=completion.failure,
            )
        record = self.shared_session.log.records[-1]
        event = QueryCompletion(
            time=completion.finish_time,
            tenant=state.name,
            query_id=local_id,
            connection=completion.connection,
            instance=completion.instance,
        )
        assert state.session is not None
        state.session._on_completion(event, record)
        return event

    def _locate(self, global_id: int) -> tuple[_TenantState, int]:
        index = bisect_right(self._offsets, global_id) - 1
        if index < 0:
            raise SchedulingError(f"global query id {global_id} belongs to no tenant")
        state = self._tenants[self._order[index]]
        local_id = global_id - state.offset
        if not 0 <= local_id < len(state.batch):
            raise SchedulingError(f"global query id {global_id} belongs to no tenant")
        return state, local_id


class RuntimeTenant:
    """Per-tenant backend facade satisfying the ``SessionBackend`` protocol.

    Handing a :class:`RuntimeTenant` to :class:`~repro.core.env.SchedulingEnv`
    as its backend makes the environment a client of the shared runtime:
    ``new_session`` opens (or joins) the runtime's shared round and returns
    the tenant's :class:`TenantSession`.
    """

    def __init__(self, runtime: ExecutionRuntime, name: str) -> None:
        self.runtime = runtime
        self.name = name

    def new_session(
        self,
        batch: BatchQuerySet,
        num_connections: int | None = None,
        strategy: str = "",
        round_id: int | None = None,
    ) -> "TenantSession":
        return self.runtime.open_for(
            self.name,
            batch,
            num_connections=num_connections,
            strategy=strategy,
            round_id=round_id,
        )

    def __repr__(self) -> str:
        return f"RuntimeTenant({self.name!r}, tenants={self.runtime.num_tenants})"


class TenantSession:
    """One tenant's view of a shared runtime round.

    Exposes the same session protocol as the raw engine/simulator sessions
    (pending/running/finished bookkeeping, ``submit``, ``advance``, a round
    log) but scoped to the tenant's local query ids, delegating execution to
    the shared backend session through the runtime.  ``advance`` pumps the
    runtime's event loop until *this* tenant receives an event or can make a
    scheduling decision again.
    """

    def __init__(
        self,
        runtime: ExecutionRuntime,
        state: _TenantState,
        arrival_times: "np.ndarray | None",
    ) -> None:
        self._runtime = runtime
        self._state = state
        self.name = state.name
        self.batch = state.batch
        shared = runtime.shared_session
        # A tenant session lives exactly one round and the runtime installs
        # the backend session before constructing its tenants, so the shared
        # session can be pinned here instead of re-resolved per delegation.
        self._shared_session = shared
        self.num_connections = shared.num_connections
        self.log = RoundLog(round_id=shared.log.round_id, strategy=shared.log.strategy)
        self._arrival_times = arrival_times
        if arrival_times is None:
            self.pending = [query.query_id for query in state.batch]
            self._unarrived: set[int] = set()
        else:
            self.pending = [query.query_id for query in state.batch if arrival_times[query.query_id] <= 0.0]
            self._unarrived = {query.query_id for query in state.batch if arrival_times[query.query_id] > 0.0}
        self._running: set[int] = set()
        self.finished: dict[int, float] = {}
        #: Terminally failed queries (error/timeout retries exhausted).
        self.failed: dict[int, float] = {}
        #: Arrivals the admission controller refused, and when.  Shed queries
        #: also appear in ``failed`` (they are terminally failed the instant
        #: they would have arrived) — this ledger distinguishes load shedding
        #: from exhausted retries.
        self.shed: dict[int, float] = {}
        #: Queries awaiting a scheduled retry re-arrival, and when it fires.
        self._retrying: set[int] = set()
        self._retry_times: dict[int, float] = {}
        #: Failed attempts per query (errors, timeout kills, outage kills).
        self._failure_counts: dict[int, int] = {}
        self.num_failed_attempts = 0
        self.num_timeouts = 0
        self.num_retries = 0
        #: SLO grading (only counted when the tenant's class sets a
        #: ``latency_slo``): completions at or under the target vs over it.
        self.num_slo_met = 0
        self.num_slo_misses = 0
        # SoA fast-snapshot view: live slices of the shared session's state
        # arrays scoped to this tenant's global-id range, plus the two
        # columns only the tenant knows (failed attempts and when a
        # deferred/retrying query becomes available again).  Backends
        # without state arrays (e.g. test doubles) leave these ``None`` and
        # the environment falls back to the AoS snapshot path.
        shared_arrays = getattr(shared, "state_arrays", None)
        self._soa_state_arrays = shared_arrays
        self._soa_offset = state.offset
        if shared_arrays is not None:
            offset = state.offset
            count = len(state.batch)
            self.soa_status: "np.ndarray | None" = shared_arrays.status[offset : offset + count]
            self.soa_submit_time: "np.ndarray | None" = shared_arrays.submit_time[offset : offset + count]
            self.soa_row_version: "np.ndarray | None" = shared_arrays.row_version[offset : offset + count]
            self.soa_attempts: "np.ndarray | None" = np.zeros(count, dtype=np.int64)
            if arrival_times is None:
                self.soa_available_at: "np.ndarray | None" = np.zeros(count, dtype=np.float64)
            else:
                self.soa_available_at = np.asarray(arrival_times, dtype=np.float64).copy()
        else:
            self.soa_status = None
            self.soa_submit_time = None
            self.soa_row_version = None
            self.soa_attempts = None
            self.soa_available_at = None

    # -- identity ------------------------------------------------------- #
    @property
    def _shared(self) -> Any:
        return self._shared_session

    @property
    def supports_lockstep(self) -> bool:
        """Whether the vectorized lockstep fast path may drive this session.

        Only single-tenant closed rounds on a lockstep-capable backend (the
        learned simulator) qualify: with peers or scheduled arrivals the
        shared clock is not this tenant's to batch.
        """
        return (
            self._runtime.num_tenants == 1
            and not self._unarrived
            and not self._runtime.events
            and getattr(self._shared, "supports_lockstep", False)
        )

    # -- protocol properties -------------------------------------------- #
    @property
    def current_time(self) -> float:
        return self._shared.current_time

    @property
    def is_done(self) -> bool:
        return (
            not self.pending
            and not self._running
            and not self._unarrived
            and not self._retrying
        )

    @property
    def has_idle_connection(self) -> bool:
        return self._shared.has_idle_connection

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    @property
    def num_running(self) -> int:
        return len(self._running)

    @property
    def makespan(self) -> float:
        return max(self.finished.values(), default=0.0)

    @property
    def tenant_class(self) -> "TenantClass | None":
        """The tenant's service tier (``None`` when classless)."""
        return self._state.tenant_class

    @property
    def num_shed(self) -> int:
        """Arrivals the admission controller refused this round."""
        return len(self.shed)

    def unarrived_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._unarrived))

    def retrying_ids(self) -> tuple[int, ...]:
        """Queries whose failed attempt awaits its scheduled retry re-arrival."""
        return tuple(sorted(self._retrying))

    def retry_time(self, query_id: int) -> float:
        """When the query's scheduled retry re-arrives (0.0 if not retrying)."""
        return self._retry_times.get(query_id, 0.0)

    def attempts(self, query_id: int) -> int:
        """Submission attempts so far for one of this tenant's queries."""
        return self._runtime.attempts_of(self._state, query_id)

    def failure_counts(self) -> dict[int, int]:
        """Failed attempts per tenant-local query id (empty when fault-free)."""
        return dict(self._failure_counts)

    def instance_health(self) -> list[bool]:
        """Per-instance up/down health of the shared backend."""
        health_fn = getattr(self._shared, "instance_health", None)
        if health_fn is not None:
            return list(health_fn())
        return [True] * self.num_instances

    def arrival_time(self, query_id: int) -> float:
        """When the query arrives (0.0 in the closed scenario)."""
        if self._arrival_times is None:
            return 0.0
        return float(self._arrival_times[query_id])

    def pending_queries(self) -> list:
        return [self.batch[i] for i in self.pending]

    def running_states(self) -> list[RunningQueryState]:
        offset = self._state.offset
        states = []
        for global_id, state in self._shared.running.items():
            local_id = global_id - offset
            if local_id in self._running:
                if offset == 0:
                    states.append(state)
                else:
                    states.append(
                        RunningQueryState(
                            query=self.batch[local_id],
                            parameters=state.parameters,
                            connection=state.connection,
                            submit_time=state.submit_time,
                            remaining_work=state.remaining_work,
                            total_work=state.total_work,
                        )
                    )
        return states

    # -- cluster topology (delegated; single-backend defaults) ----------- #
    @property
    def num_instances(self) -> int:
        """Engine instances behind the shared session (1 on plain backends)."""
        return getattr(self._shared, "num_instances", 1)

    def idle_instances(self) -> list[int]:
        shared = self._shared
        if hasattr(shared, "idle_instances"):
            return shared.idle_instances()
        return [0] if shared.has_idle_connection else []

    def instance_of(self, query_id: int) -> int:
        """The instance a tenant-local query was placed on (-1 if never)."""
        shared = self._shared
        if hasattr(shared, "instance_of"):
            return shared.instance_of(self._state.offset + query_id)
        return 0 if query_id in self._running or query_id in self.finished else -1

    def instance_context(self) -> "np.ndarray | None":
        shared = self._shared
        if hasattr(shared, "instance_context"):
            return shared.instance_context()
        return None

    def instance_num_running(self) -> list[int]:
        """Fleet-wide per-instance occupancy (every tenant's queries)."""
        shared = self._shared
        if hasattr(shared, "instance_num_running"):
            return shared.instance_num_running()
        return [shared.num_running]

    def speed_factors(self) -> tuple[float, ...]:
        shared = self._shared
        if hasattr(shared, "speed_factors"):
            return shared.speed_factors()
        return (1.0,)

    # -- protocol methods ------------------------------------------------ #
    def submit(self, query_id: int, parameters: "RunningParameters", instance: "int | None" = None) -> int:
        """Submit a pending local query, optionally routed to an instance.

        ``instance=None`` keeps the single-backend call shape (and means
        instance 0 on a cluster backend); a non-zero placement requires a
        cluster-capable shared session.
        """
        if query_id not in self.pending:
            raise SchedulingError(f"query {query_id} is not pending for tenant {self.name!r}")
        global_id = self._state.offset + query_id
        if instance is None or (instance == 0 and self.num_instances == 1):
            connection = self._shared.submit(global_id, parameters)
        elif self.num_instances <= 1 and instance != 0:
            raise SchedulingError(f"backend has one instance; cannot place on instance {instance}")
        else:
            connection = self._shared.submit(global_id, parameters, instance=instance)
        self.pending.remove(query_id)
        self._running.add(query_id)
        self._runtime._note_submit(self._state, query_id)
        return connection

    def advance(self, limit: float | None = None) -> "RuntimeEvent | None":
        """Pump the runtime until this tenant gets an event or can decide.

        Peers' events are dispatched to them along the way.  Returns the
        event this tenant received, or ``None`` when a peer's completion
        freed a connection this tenant can now use.
        """
        if self.is_done:
            raise SchedulingError(f"tenant {self.name!r} has no more work in this round")
        while True:
            event = self._runtime.advance()
            if event.tenant == self.name:
                return event
            if self.has_pending and self._shared.has_idle_connection:
                return None

    # -- lockstep delegation (vectorized simulator rollouts) ------------- #
    @property
    def simulator(self) -> Any:
        return self._shared.simulator

    def advance_features(self) -> Any:
        return self._shared.advance_features()

    def apply_advance(self, states: Any, logits: Any, times: Any) -> None:
        completion = self._shared.apply_advance(states, logits, times)
        self._runtime._dispatch_completion(completion)

    # -- event sinks ------------------------------------------------------ #
    def _on_arrival(self, event: QueryArrival) -> None:
        self._unarrived.discard(event.query_id)
        self.pending.append(event.query_id)

    def _on_shed(self, event: QueryShed) -> None:
        # The runtime has already marked the query failed in the shared
        # session (straight from deferred); mirror that here so ``is_done``
        # and the report see a drained, not stranded, query.
        self._unarrived.discard(event.query_id)
        self.shed[event.query_id] = event.time
        self.failed[event.query_id] = event.time

    def _on_failure(self, event: QueryFailure) -> None:
        self._running.discard(event.query_id)
        self.num_failed_attempts += 1
        self._failure_counts[event.query_id] = self._failure_counts.get(event.query_id, 0) + 1
        if self.soa_attempts is not None:
            self.soa_attempts[event.query_id] += 1
            # Attempt counters live outside the shared state arrays, so the
            # mark_* transitions never stamp them; touch the row explicitly
            # or incremental inference caches would serve stale features.
            if self._soa_state_arrays is not None:
                self._soa_state_arrays.touch(self._soa_offset + event.query_id)
        if self.soa_available_at is not None and event.will_retry:
            self.soa_available_at[event.query_id] = event.retry_at if event.retry_at is not None else 0.0
            if self._soa_state_arrays is not None:
                self._soa_state_arrays.touch(self._soa_offset + event.query_id)
        if event.reason == FAILURE_TIMEOUT:
            self.num_timeouts += 1
        if event.will_retry:
            self.num_retries += 1
            self._retrying.add(event.query_id)
            if event.retry_at is not None:
                self._retry_times[event.query_id] = event.retry_at
        else:
            self.failed[event.query_id] = event.time

    def _on_retry(self, event: QueryRetry) -> None:
        self._retrying.discard(event.query_id)
        self._retry_times.pop(event.query_id, None)
        self.pending.append(event.query_id)

    def _on_completion(self, event: QueryCompletion, record: QueryExecutionRecord) -> None:
        self._running.discard(event.query_id)
        self.finished[event.query_id] = event.time
        tenant_class = self._state.tenant_class
        if tenant_class is not None and tenant_class.latency_slo is not None:
            latency = event.time - self.arrival_time(event.query_id)
            if latency <= tenant_class.latency_slo:
                self.num_slo_met += 1
            else:
                self.num_slo_misses += 1
        if self._state.offset == 0:
            self.log.add(record)
        else:
            self.log.add(
                QueryExecutionRecord(
                    query_id=event.query_id,
                    query_name=record.query_name,
                    template_id=record.template_id,
                    connection=record.connection,
                    parameters=record.parameters,
                    submit_time=record.submit_time,
                    finish_time=record.finish_time,
                    instance=record.instance,
                )
            )

    # -- metrics ----------------------------------------------------------- #
    def latencies(self) -> dict[int, float]:
        """Per-query latency: finish time minus arrival time."""
        return {
            query_id: finish - self.arrival_time(query_id)
            for query_id, finish in self.finished.items()
        }

    def __repr__(self) -> str:
        return (
            f"TenantSession({self.name!r}, pending={len(self.pending)}, "
            f"running={len(self._running)}, finished={len(self.finished)}, "
            f"unarrived={len(self._unarrived)})"
        )
