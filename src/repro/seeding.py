"""Deterministic seed derivation for every stochastic component.

Historically each component took an ad-hoc integer seed (the engine mixed
``(seed, round_id, 0x5EED)``, the runtime's arrival sampler used a private
constant, trainers called ``default_rng(seed)`` directly).  The streams were
reproducible, but the derivation rules lived scattered across modules and
nothing guaranteed two code paths would not collide on the same entropy.

:class:`SeedSpawner` centralises the rule: a spawner owns an *entropy tuple*
(rooted at the experiment seed from :class:`repro.config.BQSchedConfig`) and
derives children, generators and integer seeds by extending that tuple —
exactly the ``numpy.random.SeedSequence`` spawn-key mechanism, spelled so the
pre-existing streams are preserved bit-for-bit:

* ``SeedSpawner(seed).derive(round_id, 0x5EED)`` builds the same generator as
  the historical ``np.random.default_rng((seed, round_id, 0x5EED))`` (NumPy
  treats an int seed and a 1-tuple identically), so the execution digests
  pinned in ``tests/test_runtime.py`` and ``tests/test_cluster.py`` survive.
* string tags are hashed stably (SHA-256, not Python's randomised ``hash``),
  so named children like ``spawner.child("instance", 2)`` are reproducible
  across processes and Python versions.

Identical config ⇒ identical entropy tree ⇒ identical results on the env,
vec-env and runtime paths (regression-tested in ``tests/test_seeding.py``).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["SeedSpawner", "stable_tag_hash"]

_TAG_MASK = (1 << 32) - 1
_SEED_MASK = (1 << 63) - 1


def stable_tag_hash(tag: "str | int") -> int:
    """Map a tag to a stable 32-bit integer (ints pass through unchanged)."""
    if isinstance(tag, (int, np.integer)) and not isinstance(tag, bool):
        return int(tag)
    digest = hashlib.sha256(str(tag).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & _TAG_MASK


class SeedSpawner:
    """A node in the experiment's deterministic entropy tree."""

    def __init__(self, *entropy: "str | int") -> None:
        if not entropy:
            raise ValueError("SeedSpawner needs at least a root seed")
        self._entropy: tuple[int, ...] = tuple(stable_tag_hash(tag) for tag in entropy)

    @property
    def entropy(self) -> tuple[int, ...]:
        """The entropy tuple identifying this node."""
        return self._entropy

    def child(self, *tags: "str | int") -> "SeedSpawner":
        """A sub-spawner whose entropy extends this node's by ``tags``."""
        if not tags:
            raise ValueError("child() needs at least one tag")
        spawner = SeedSpawner.__new__(SeedSpawner)
        spawner._entropy = self._entropy + tuple(stable_tag_hash(tag) for tag in tags)
        return spawner

    def derive(self, *tags: "str | int") -> np.random.Generator:
        """A generator seeded by this node's entropy extended by ``tags``.

        ``derive()`` with no tags seeds from the node entropy itself —
        equivalent to the historical ``np.random.default_rng(seed)`` when the
        spawner is a root (NumPy seeds identically from ``s`` and ``(s,)``).
        """
        entropy = self._entropy + tuple(stable_tag_hash(tag) for tag in tags)
        return np.random.default_rng(entropy)

    def generator(self) -> np.random.Generator:
        """Shorthand for :meth:`derive` with no extra tags."""
        return self.derive()

    def integer_seed(self, *tags: "str | int") -> int:
        """A stable 63-bit integer seed for components that insist on ints."""
        entropy = self._entropy + tuple(stable_tag_hash(tag) for tag in tags)
        state = np.random.SeedSequence(entropy).generate_state(2, np.uint64)
        return int((int(state[0]) << 32) ^ int(state[1])) & _SEED_MASK

    def __repr__(self) -> str:
        return f"SeedSpawner(entropy={self._entropy!r})"
