"""Attention-based state representation (Section III-A of the paper).

Per-query tokens ``x_i`` are built from the (frozen) QueryFormer plan
embedding concatenated with the running-state features and passed through an
MLP.  A learnable *super query* token joins the sequence, a stack of
multi-head attention layers models the mutual influences among concurrent
queries, and the outputs are combined with pooled running-state features to
produce the final per-query representations ``x''_i`` (for the policy and
auxiliary heads) and the global representation ``x''_s`` (for the value
head).

The paper concatenates the raw running-state features of *all* queries into
``x''_s`` and of the *concurrent* queries into ``x''_i``.  Because the batch
size ``n`` varies across workloads, this implementation uses mean + max
pooling of those features instead of raw concatenation, which keeps the
network width independent of ``n`` while preserving the same information
channel (this is also what makes the learned policy transferable across
query-set sizes, a property the paper relies on for its adaptability
experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import EncoderConfig
from ..nn import AttentionEncoder, Linear, MLP, Module, Parameter, Tensor, concatenate
from ..nn import init as weight_init
from .run_state import RunStateFeaturizer, SchedulingSnapshot

__all__ = ["StateRepresentation", "StateEncoder"]


@dataclass
class StateRepresentation:
    """Output of the state encoder at one decision instant.

    Attributes
    ----------
    per_query:
        ``(n, state_dim)`` tensor of final per-query representations ``x''_i``.
    global_state:
        ``(state_dim,)`` tensor ``x''_s`` summarising the whole batch.
    """

    per_query: Tensor
    global_state: Tensor

    @property
    def num_queries(self) -> int:
        return self.per_query.shape[0]


class StateEncoder(Module):
    """Shared state-representation network θ_S."""

    def __init__(
        self,
        plan_embedding_dim: int,
        run_state_featurizer: RunStateFeaturizer,
        config: EncoderConfig,
        rng: np.random.Generator,
        use_attention: bool = True,
    ) -> None:
        super().__init__()
        self.config = config
        self.run_state_featurizer = run_state_featurizer
        self.use_attention = use_attention
        state_dim = config.state_dim
        input_dim = plan_embedding_dim + run_state_featurizer.feature_dim

        per_query_sizes = [input_dim] + [state_dim] * config.mlp_layers
        self.query_mlp = MLP(per_query_sizes, rng, activation="tanh", final_activation=True)
        self.super_query = Parameter(weight_init.normal((1, state_dim), rng, std=0.1), name="super_query")
        if use_attention:
            self.attention = AttentionEncoder(
                model_dim=state_dim,
                num_heads=config.state_heads,
                num_layers=config.state_layers,
                rng=rng,
                norm=config.norm,
            )
        pooled_dim = 2 * run_state_featurizer.feature_dim
        self.global_mlp = MLP([state_dim + pooled_dim, state_dim, state_dim], rng, activation="tanh", final_activation=True)
        self.query_out_mlp = MLP(
            [2 * state_dim + pooled_dim, state_dim, state_dim], rng, activation="tanh", final_activation=True
        )

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, plan_embeddings: np.ndarray, snapshot: SchedulingSnapshot) -> StateRepresentation:
        """Encode one scheduling state.

        Parameters
        ----------
        plan_embeddings:
            ``(n, plan_embedding_dim)`` frozen QueryFormer embeddings aligned
            with the snapshot's query ids.
        snapshot:
            The observable runtime state of every query.
        """
        run_features = self.run_state_featurizer.featurize_snapshot(snapshot)
        if plan_embeddings.shape[0] != run_features.shape[0]:
            raise ValueError("plan embeddings and snapshot must cover the same queries")

        tokens = self.query_mlp(Tensor(np.concatenate([plan_embeddings, run_features], axis=1)))
        sequence = concatenate([tokens, self.super_query], axis=0)
        # The ablation variant (Figure 7, "w/o attention-based state
        # representation") skips the mutual-influence modelling entirely.
        encoded = self.attention(sequence) if self.use_attention else sequence
        num_queries = run_features.shape[0]
        encoded_queries = encoded[np.arange(num_queries)]
        encoded_super = encoded[num_queries]

        pooled_all = self._pool(run_features)
        global_state = self.global_mlp(concatenate([encoded_super, Tensor(pooled_all)], axis=0))

        running_ids = snapshot.running_ids
        if running_ids:
            pooled_running = self._pool(run_features[running_ids])
        else:
            pooled_running = np.zeros_like(pooled_all)
        broadcast_super = encoded_super.reshape(1, -1) * Tensor(np.ones((num_queries, 1)))
        broadcast_pool = Tensor(np.tile(pooled_running, (num_queries, 1)))
        per_query = self.query_out_mlp(
            concatenate([encoded_queries, broadcast_super, broadcast_pool], axis=1)
        )
        return StateRepresentation(per_query=per_query, global_state=global_state)

    @staticmethod
    def _pool(features: np.ndarray) -> np.ndarray:
        """Fixed-width summary (mean ‖ max) of a variable-size feature set."""
        if features.size == 0:
            raise ValueError("cannot pool an empty feature set")
        return np.concatenate([features.mean(axis=0), features.max(axis=0)])
