"""Attention-based state representation (Section III-A of the paper).

Per-query tokens ``x_i`` are built from the (frozen) QueryFormer plan
embedding concatenated with the running-state features and passed through an
MLP.  A learnable *super query* token joins the sequence, a stack of
multi-head attention layers models the mutual influences among concurrent
queries, and the outputs are combined with pooled running-state features to
produce the final per-query representations ``x''_i`` (for the policy and
auxiliary heads) and the global representation ``x''_s`` (for the value
head).

The paper concatenates the raw running-state features of *all* queries into
``x''_s`` and of the *concurrent* queries into ``x''_i``.  Because the batch
size ``n`` varies across workloads, this implementation uses mean + max
pooling of those features instead of raw concatenation, which keeps the
network width independent of ``n`` while preserving the same information
channel (this is also what makes the learned policy transferable across
query-set sizes, a property the paper relies on for its adaptability
experiments).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import EncoderConfig
from ..nn import AttentionEncoder, MLP, Module, Parameter, Tensor, concatenate, fastinfer
from ..nn import init as weight_init
from .run_state import RunStateFeaturizer, SchedulingSnapshot, SnapshotArrays

__all__ = ["StateRepresentation", "BatchedStateRepresentation", "StateEncoder"]


@dataclass
class StateRepresentation:
    """Output of the state encoder at one decision instant.

    Attributes
    ----------
    per_query:
        ``(n, state_dim)`` tensor of final per-query representations ``x''_i``.
    global_state:
        ``(state_dim,)`` tensor ``x''_s`` summarising the whole batch.
    """

    per_query: Tensor
    global_state: Tensor

    @property
    def num_queries(self) -> int:
        return self.per_query.shape[0]


@dataclass
class BatchedStateRepresentation:
    """Output of one stacked encoder forward over B decision instants.

    Attributes
    ----------
    per_query:
        ``(batch, n, state_dim)`` tensor of per-query representations.
    global_state:
        ``(batch, state_dim)`` tensor of per-snapshot global representations.
    """

    per_query: Tensor
    global_state: Tensor

    @property
    def batch_size(self) -> int:
        return self.per_query.shape[0]

    @property
    def num_queries(self) -> int:
        return self.per_query.shape[1]


class StateEncoder(Module):
    """Shared state-representation network θ_S."""

    def __init__(
        self,
        plan_embedding_dim: int,
        run_state_featurizer: RunStateFeaturizer,
        config: EncoderConfig,
        rng: np.random.Generator,
        use_attention: bool = True,
    ) -> None:
        super().__init__()
        self.config = config
        self.run_state_featurizer = run_state_featurizer
        self.use_attention = use_attention
        state_dim = config.state_dim
        input_dim = plan_embedding_dim + run_state_featurizer.feature_dim

        per_query_sizes = [input_dim] + [state_dim] * config.mlp_layers
        self.query_mlp = MLP(per_query_sizes, rng, activation="tanh", final_activation=True)
        self.super_query = Parameter(weight_init.normal((1, state_dim), rng, std=0.1), name="super_query")
        if use_attention:
            self.attention = AttentionEncoder(
                model_dim=state_dim,
                num_heads=config.state_heads,
                num_layers=config.state_layers,
                rng=rng,
                norm=config.norm,
            )
        pooled_dim = 2 * run_state_featurizer.feature_dim
        self.global_mlp = MLP([state_dim + pooled_dim, state_dim, state_dim], rng, activation="tanh", final_activation=True)
        self.query_out_mlp = MLP(
            [2 * state_dim + pooled_dim, state_dim, state_dim], rng, activation="tanh", final_activation=True
        )

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, plan_embeddings: np.ndarray, snapshot: SchedulingSnapshot) -> StateRepresentation:
        """Encode one scheduling state.

        Parameters
        ----------
        plan_embeddings:
            ``(n, plan_embedding_dim)`` frozen QueryFormer embeddings aligned
            with the snapshot's query ids.
        snapshot:
            The observable runtime state of every query.
        """
        run_features = self.run_state_featurizer.featurize_snapshot(snapshot)
        if plan_embeddings.shape[0] != run_features.shape[0]:
            raise ValueError("plan embeddings and snapshot must cover the same queries")

        tokens = self.query_mlp(Tensor(np.concatenate([plan_embeddings, run_features], axis=1)))
        sequence = concatenate([tokens, self.super_query], axis=0)
        # The ablation variant (Figure 7, "w/o attention-based state
        # representation") skips the mutual-influence modelling entirely.
        encoded = self.attention(sequence) if self.use_attention else sequence
        num_queries = run_features.shape[0]
        encoded_queries = encoded[np.arange(num_queries)]
        encoded_super = encoded[num_queries]

        pooled_all = self._pool(run_features)
        global_state = self.global_mlp(concatenate([encoded_super, Tensor(pooled_all)], axis=0))

        running_ids = snapshot.running_ids
        if running_ids:
            pooled_running = self._pool(run_features[running_ids])
        else:
            pooled_running = np.zeros_like(pooled_all)
        broadcast_super = encoded_super.reshape(1, -1) * Tensor(np.ones((num_queries, 1)))
        broadcast_pool = Tensor(np.tile(pooled_running, (num_queries, 1)))
        per_query = self.query_out_mlp(
            concatenate([encoded_queries, broadcast_super, broadcast_pool], axis=1)
        )
        return StateRepresentation(per_query=per_query, global_state=global_state)

    def _batch_inputs(
        self,
        plan_embeddings: np.ndarray,
        snapshots: "list[SchedulingSnapshot]",
        input_dtype: "type | None" = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Shared featurisation for the batched paths.

        Returns ``(inputs, run_features, pooled_all, pooled_running)`` where
        ``inputs`` is the ``(batch, n, plan+feature)`` token input and the
        pooled arrays are the fixed-width running-state summaries.  Both
        tensors are preallocated and filled in place — array-backed snapshots
        featurize straight into the stacked buffer, and ``input_dtype``
        (e.g. ``np.float32`` for the sampling path) casts token inputs during
        assembly instead of through a separate ``astype`` copy; per-element
        rounding is identical either way.
        """
        if not snapshots:
            raise ValueError("encode_batch needs at least one snapshot")
        featurizer = self.run_state_featurizer
        batch = len(snapshots)
        first = snapshots[0]
        num_queries = first.num_queries if isinstance(first, SnapshotArrays) else len(first.infos)
        if plan_embeddings.shape[0] != num_queries:
            raise ValueError("plan embeddings and snapshots must cover the same queries")
        run_features = np.empty((batch, num_queries, featurizer.feature_dim), dtype=np.float64)
        all_arrays = all(isinstance(snapshot, SnapshotArrays) for snapshot in snapshots)
        if all_arrays:
            featurizer.featurize_arrays_stack(snapshots, out=run_features)
        else:
            for index, snapshot in enumerate(snapshots):
                if isinstance(snapshot, SnapshotArrays):
                    featurizer.featurize_arrays(snapshot, out=run_features[index])
                else:
                    run_features[index] = featurizer.featurize_snapshot(snapshot)
        plan_dim = plan_embeddings.shape[1]
        inputs = np.empty(
            (batch, num_queries, plan_dim + featurizer.feature_dim),
            dtype=input_dtype if input_dtype is not None else np.float64,
        )
        inputs[:, :, :plan_dim] = plan_embeddings
        inputs[:, :, plan_dim:] = run_features
        pooled_all = np.concatenate([run_features.mean(axis=1), run_features.max(axis=1)], axis=1)
        if all_arrays and input_dtype is np.float32:
            # Sampling path: one masked reduction over the (batch, n) stack
            # instead of a fancy-indexed _pool call per snapshot.  The masked
            # mean sums over the full row (zeros where not running), which
            # reorders the float64 accumulation relative to the per-subset
            # mean — rounding-level differences the sampling path tolerates;
            # the learning path below keeps the exact per-snapshot pooling.
            running = np.stack([snapshot.status for snapshot in snapshots]) == 1
            counts = running.sum(axis=1)
            weights = running[:, :, None]
            means = (run_features * weights).sum(axis=1)
            means /= np.maximum(counts, 1)[:, None]
            maxes = np.where(weights, run_features, -np.inf).max(axis=1)
            pooled_running = np.concatenate([means, maxes], axis=1)
            pooled_running[counts == 0] = 0.0
        else:
            pooled_running = np.empty_like(pooled_all)
            for index, snapshot in enumerate(snapshots):
                running_ids = snapshot.running_ids
                if running_ids:
                    pooled_running[index] = self._pool(run_features[index][running_ids])
                else:
                    pooled_running[index] = 0.0
        return inputs, run_features, pooled_all, pooled_running

    def encode_batch(
        self, plan_embeddings: np.ndarray, snapshots: "list[SchedulingSnapshot]"
    ) -> BatchedStateRepresentation:
        """Encode B scheduling states with one stacked forward pass.

        All snapshots must cover the same query batch (same ``n``); the plan
        embeddings are shared across the stack.  This is the vectorized hot
        path: one 3-D attention + MLP-head forward replaces B sequential
        :meth:`forward` calls.
        """
        inputs, run_features, pooled_all, pooled_running = self._batch_inputs(plan_embeddings, snapshots)
        batch, num_queries = run_features.shape[0], run_features.shape[1]
        tokens = self.query_mlp(Tensor(inputs))
        super_tokens = self.super_query.reshape(1, 1, -1) * Tensor(np.ones((batch, 1, 1)))
        sequence = concatenate([tokens, super_tokens], axis=1)
        encoded = self.attention(sequence) if self.use_attention else sequence
        encoded_queries = encoded[:, :num_queries]
        encoded_super = encoded[:, num_queries]

        global_state = self.global_mlp(concatenate([encoded_super, Tensor(pooled_all)], axis=1))

        broadcast_super = encoded_super.reshape(batch, 1, -1) * Tensor(np.ones((1, num_queries, 1)))
        broadcast_pool = Tensor(np.broadcast_to(pooled_running[:, None, :], (batch, num_queries, pooled_running.shape[1])).copy())
        per_query = self.query_out_mlp(
            concatenate([encoded_queries, broadcast_super, broadcast_pool], axis=2)
        )
        return BatchedStateRepresentation(per_query=per_query, global_state=global_state)

    def encode_batch_arrays(
        self, plan_embeddings: np.ndarray, snapshots: "list[SchedulingSnapshot]"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Tape-free twin of :meth:`encode_batch` returning plain arrays.

        Used by action *sampling* during vectorized rollouts, where no
        gradient is ever needed and the autograd tensor overhead dominates
        the arithmetic.  Sampling also tolerates reduced precision, so the
        whole forward runs in float32 (the optimizer and every learning-path
        forward stay float64).  BatchNorm running statistics are updated as
        in the tensor forward (see :mod:`repro.nn.fastinfer`).
        """
        inputs, run_features, pooled_all, pooled_running = self._batch_inputs(
            plan_embeddings, snapshots, input_dtype=np.float32
        )
        batch, num_queries = run_features.shape[0], run_features.shape[1]
        pooled_all = pooled_all.astype(np.float32)
        pooled_running = pooled_running.astype(np.float32)
        tokens = fastinfer.mlp_forward(self.query_mlp, inputs)
        super_tokens = np.broadcast_to(
            self.super_query.data.astype(np.float32).reshape(1, 1, -1),
            (batch, 1, self.super_query.data.shape[1]),
        )
        sequence = np.concatenate([tokens, super_tokens], axis=1)
        encoded = fastinfer.attention_encoder_forward_batched(self.attention, sequence) if self.use_attention else sequence
        encoded_queries = encoded[:, :num_queries]
        encoded_super = encoded[:, num_queries]

        global_state = fastinfer.mlp_forward(
            self.global_mlp, np.concatenate([encoded_super, pooled_all], axis=1)
        )
        broadcast_super = np.broadcast_to(encoded_super[:, None, :], encoded_queries.shape)
        broadcast_pool = np.broadcast_to(
            pooled_running[:, None, :], (batch, num_queries, pooled_running.shape[1])
        )
        per_query = fastinfer.mlp_forward(
            self.query_out_mlp,
            np.concatenate([encoded_queries, broadcast_super, broadcast_pool], axis=2),
        )
        return per_query, global_state

    @staticmethod
    def _pool(features: np.ndarray) -> np.ndarray:
        """Fixed-width summary (mean ‖ max) of a variable-size feature set."""
        if features.size == 0:
            raise ValueError("cannot pool an empty feature set")
        return np.concatenate([features.mean(axis=0), features.max(axis=0)])
