"""QueryFormer-style tree Transformer over physical plans.

Following Zhao et al. (VLDB 2022) as used by BQSched: every plan node is
embedded from its operator / table / predicate / statistics features, a
*super node* connected to all others gathers the plan-level representation,
structural information enters through a height encoding and a tree-bias
added to the attention scores (closer nodes attend more strongly), and the
super node's output embedding is the plan embedding ``e_i``.

The paper uses a QueryFormer pre-trained on query logs; in this reproduction
the encoder is initialised randomly and kept frozen during RL (its role is to
provide a structure-preserving projection of the plan into a dense vector),
while the downstream MLPs and attention layers learn on top of it.  The
encoder is still a fully trainable module, so the simulator's prediction
model and the gain model can fine-tune it when desired.
"""

from __future__ import annotations

import numpy as np

from ..config import EncoderConfig
from ..nn import AttentionEncoder, Embedding, Linear, MLP, Module, Tensor, concatenate, no_grad
from ..plans import PhysicalPlan, PlanFeaturizer

__all__ = ["QueryFormer", "PlanEmbeddingCache"]


class QueryFormer(Module):
    """Tree Transformer encoder producing one embedding per physical plan."""

    def __init__(self, featurizer: PlanFeaturizer, config: EncoderConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.featurizer = featurizer
        self.config = config
        hidden = config.node_hidden_dim
        self.input_proj = Linear(featurizer.feature_dim, hidden, rng)
        self.height_embedding = Embedding(config.max_height + 1, hidden, rng)
        self.super_token = Embedding(1, hidden, rng)
        self.encoder = AttentionEncoder(
            model_dim=hidden,
            num_heads=config.tree_heads,
            num_layers=config.tree_layers,
            rng=rng,
            norm=config.norm,
        )
        self.output_proj = MLP([hidden, config.plan_embedding_dim], rng, activation="tanh", final_activation=True)
        #: additive attention bias per unit of tree distance
        self.distance_penalty = 0.5

    def forward(self, plan: PhysicalPlan) -> Tensor:
        """Encode one plan into its ``plan_embedding_dim`` vector."""
        features = self.featurizer.featurize(plan)
        heights = np.clip(features.heights, 0, self.config.max_height)
        node_tokens = self.input_proj(Tensor(features.node_features)) + self.height_embedding(heights)
        super_token = self.super_token(np.array([0]))
        tokens = concatenate([node_tokens, super_token], axis=0)
        bias = self._tree_bias(features.distances)
        encoded = self.encoder(tokens, bias=bias)
        plan_embedding = encoded[features.num_nodes]
        return self.output_proj(plan_embedding)

    def _tree_bias(self, distances: np.ndarray) -> np.ndarray:
        """Attention bias: ``-penalty * tree distance``; the super node sits at distance 1."""
        num_nodes = distances.shape[0]
        padded = np.ones((num_nodes + 1, num_nodes + 1))
        padded[:num_nodes, :num_nodes] = distances
        np.fill_diagonal(padded, 0.0)
        return -self.distance_penalty * padded


class PlanEmbeddingCache:
    """Caches frozen plan embeddings for a batch query set.

    Plan trees never change during scheduling, so the embeddings are computed
    once (without building autograd tapes) and reused at every decision step,
    exactly like serving a pre-trained QueryFormer.
    """

    def __init__(self, queryformer: QueryFormer) -> None:
        self.queryformer = queryformer
        self._cache: dict[int, np.ndarray] = {}

    def embedding(self, query_id: int, plan: PhysicalPlan) -> np.ndarray:
        """Return (and memoise) the plan embedding for ``query_id``."""
        if query_id not in self._cache:
            with no_grad():
                self._cache[query_id] = np.array(self.queryformer(plan).data, copy=True)
        return self._cache[query_id]

    def embeddings_for(self, queries) -> np.ndarray:
        """Stacked embeddings for an iterable of :class:`repro.workloads.Query`."""
        return np.stack([self.embedding(q.query_id, q.plan) for q in queries], axis=0)

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
