"""Query and state encoders: QueryFormer plan encoder + attention-based state."""

from .queryformer import PlanEmbeddingCache, QueryFormer
from .run_state import (
    QueryRuntimeInfo,
    QueryStatus,
    RunStateFeaturizer,
    SchedulingSnapshot,
    SnapshotArrays,
)
from .state import BatchedStateRepresentation, StateEncoder, StateRepresentation

__all__ = [
    "PlanEmbeddingCache",
    "QueryFormer",
    "QueryRuntimeInfo",
    "QueryStatus",
    "RunStateFeaturizer",
    "SchedulingSnapshot",
    "SnapshotArrays",
    "StateEncoder",
    "StateRepresentation",
    "BatchedStateRepresentation",
]
