"""Running-state features and the scheduler-visible state snapshot.

The non-intrusive scheduler observes, for every query in the batch, only its
execution status (pending / running / finished), the running parameters it
was submitted with, how long it has been running, and the average execution
time extracted from logs.  These are the features ``f_i`` of Section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..exceptions import SchedulingError

__all__ = ["QueryStatus", "QueryRuntimeInfo", "SchedulingSnapshot", "RunStateFeaturizer"]


class QueryStatus(str, Enum):
    """Execution status of one query within the current scheduling round."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass(frozen=True)
class QueryRuntimeInfo:
    """Observable runtime state of one query at a decision instant.

    ``available`` / ``time_to_available`` describe the streaming-arrival
    scenario: a query that has not yet arrived is reported as pending but
    unavailable (the action mask excludes it), with the time until its
    arrival exposed for arrival-aware featurizers.  Closed batches leave the
    defaults, which keep features bit-identical to the pre-runtime encoder.
    """

    query_id: int
    status: QueryStatus
    config_index: int = -1
    elapsed: float = 0.0
    expected_time: float = 0.0
    available: bool = True
    time_to_available: float = 0.0
    #: Failed attempts so far (fault-tolerant serving); 0 — the default —
    #: keeps closed fault-free rounds bit-compatible with the paper setting.
    attempts: int = 0

    def __post_init__(self) -> None:
        if self.elapsed < 0:
            raise SchedulingError(f"elapsed time must be >= 0 for query {self.query_id}")
        if self.attempts < 0:
            raise SchedulingError(f"attempts must be >= 0 for query {self.query_id}")
        if self.status is not QueryStatus.PENDING and self.config_index < 0:
            raise SchedulingError(
                f"query {self.query_id} is {self.status.value} but has no configuration"
            )
        if self.time_to_available < 0:
            raise SchedulingError(f"time_to_available must be >= 0 for query {self.query_id}")
        if not self.available and self.status is not QueryStatus.PENDING:
            raise SchedulingError(
                f"query {self.query_id} is {self.status.value} but marked as not yet arrived"
            )


@dataclass(frozen=True)
class SchedulingSnapshot:
    """The full observable state at one decision instant.

    ``infos`` is aligned with the batch query ids (index ``i`` describes
    query ``i``).  This object is what the attention-based state encoder and
    the learned simulator consume.

    ``instance_context`` carries per-engine-instance context rows when the
    round runs on a :class:`~repro.dbms.Cluster` (one tuple per instance:
    relative speed, busy fraction, capacity share, buffer fill — see
    :data:`repro.dbms.INSTANCE_FEATURE_DIM`).  Single-engine rounds leave it
    empty, keeping the snapshot bit-compatible with the closed-batch paper
    setting.

    ``instance_health`` carries per-instance up/down flags while any
    instance is inside an outage window (fault-tolerant serving); the empty
    default means "everything up" and keeps fault-free snapshots
    bit-compatible.
    """

    time: float
    infos: tuple[QueryRuntimeInfo, ...]
    instance_context: tuple[tuple[float, ...], ...] = ()
    instance_health: tuple[bool, ...] = ()

    @property
    def num_queries(self) -> int:
        return len(self.infos)

    def ids_with_status(self, status: QueryStatus) -> list[int]:
        return [info.query_id for info in self.infos if info.status is status]

    @property
    def pending_ids(self) -> list[int]:
        """Ids of queries that are pending *and* available for submission.

        In the streaming scenario, queries that have not arrived yet are
        reported as pending but unavailable; they are excluded here so that
        schedulers iterating the pending set only ever pick schedulable
        queries.  Closed batches (everything available) are unaffected.
        """
        return [
            info.query_id
            for info in self.infos
            if info.status is QueryStatus.PENDING and info.available
        ]

    @property
    def unarrived_ids(self) -> list[int]:
        """Ids of queries that have not yet arrived (streaming scenario)."""
        return [info.query_id for info in self.infos if not info.available]

    @property
    def running_ids(self) -> list[int]:
        return self.ids_with_status(QueryStatus.RUNNING)

    @property
    def finished_ids(self) -> list[int]:
        return self.ids_with_status(QueryStatus.FINISHED)


_STATUS_ORDER = {QueryStatus.PENDING: 0, QueryStatus.RUNNING: 1, QueryStatus.FINISHED: 2}


class RunStateFeaturizer:
    """Encodes :class:`QueryRuntimeInfo` into the dense feature vector ``f_i``.

    Layout: status one-hot (3) ‖ configuration one-hot (``num_configs``) ‖
    normalised elapsed time ‖ normalised expected execution time
    [‖ normalised time-to-arrival].

    The optional arrival channel (``arrival_channel=True``) supports the
    streaming scenario, where the pending set grows as queries arrive: the
    extra entry is ``tanh(time_to_available / time_scale)`` — zero for every
    query that is already available, so closed batches are unaffected.  It is
    off by default to keep the feature layout (and trained policies)
    bit-compatible with the paper's closed-batch encoder.

    The optional instance-context channel (``instance_context_dim > 0``)
    supports cluster scheduling: the snapshot's flattened per-instance
    context rows (load, buffer warmth, profile speed) are appended to every
    query token, so the batch-level attention sees placement state alongside
    query state.  In cluster mode the (instance, configuration) pair is
    one-hot encoded jointly through ``num_configs = instances * configs``,
    which degenerates to the paper's layout at one instance.
    """

    def __init__(
        self,
        num_configs: int,
        time_scale: float = 10.0,
        arrival_channel: bool = False,
        instance_context_dim: int = 0,
        failure_channel: bool = False,
    ) -> None:
        if num_configs < 1:
            raise SchedulingError("num_configs must be >= 1")
        if time_scale <= 0:
            raise SchedulingError("time_scale must be positive")
        if instance_context_dim < 0:
            raise SchedulingError("instance_context_dim must be >= 0")
        self.num_configs = num_configs
        self.time_scale = time_scale
        self.arrival_channel = arrival_channel
        self.instance_context_dim = instance_context_dim
        self.failure_channel = failure_channel

    @property
    def feature_dim(self) -> int:
        return (
            3
            + self.num_configs
            + 2
            + (1 if self.arrival_channel else 0)
            + (1 if self.failure_channel else 0)
            + self.instance_context_dim
        )

    @property
    def _failure_slot(self) -> int:
        """Column of the failure channel (valid only when enabled)."""
        return 3 + self.num_configs + 2 + (1 if self.arrival_channel else 0)

    def featurize(self, info: QueryRuntimeInfo) -> np.ndarray:
        vector = np.zeros(self.feature_dim, dtype=np.float64)
        status_index = [QueryStatus.PENDING, QueryStatus.RUNNING, QueryStatus.FINISHED].index(info.status)
        vector[status_index] = 1.0
        if info.config_index >= 0:
            if info.config_index >= self.num_configs:
                raise SchedulingError(
                    f"config index {info.config_index} out of range (num_configs={self.num_configs})"
                )
            vector[3 + info.config_index] = 1.0
        vector[3 + self.num_configs] = np.tanh(info.elapsed / self.time_scale)
        vector[3 + self.num_configs + 1] = np.tanh(info.expected_time / self.time_scale)
        if self.arrival_channel:
            vector[3 + self.num_configs + 2] = np.tanh(info.time_to_available / self.time_scale)
        if self.failure_channel:
            vector[self._failure_slot] = np.tanh(info.attempts / 3.0)
        # Instance-context slots stay zero here: the per-info featurizer has
        # no snapshot to read them from (featurize_snapshot fills them in).
        return vector

    def _context_row(self, snapshot: SchedulingSnapshot) -> np.ndarray:
        """Flattened instance-context row shared by every query token."""
        row = np.zeros(self.instance_context_dim, dtype=np.float64)
        if snapshot.instance_context:
            flat = np.concatenate([np.asarray(entry, dtype=np.float64) for entry in snapshot.instance_context])
            if flat.shape[0] != self.instance_context_dim:
                raise SchedulingError(
                    f"snapshot instance context has {flat.shape[0]} entries, "
                    f"featurizer expects {self.instance_context_dim}"
                )
            row = flat
        return row

    def featurize_snapshot(self, snapshot: SchedulingSnapshot) -> np.ndarray:
        """Return the ``(n, feature_dim)`` matrix of running-state features.

        Vectorized over the whole snapshot (one array op per feature channel
        instead of one Python call per query); produces bit-identical rows to
        :meth:`featurize`.
        """
        infos = snapshot.infos
        n = len(infos)
        features = np.zeros((n, self.feature_dim), dtype=np.float64)
        status_index = np.fromiter((_STATUS_ORDER[info.status] for info in infos), dtype=np.int64, count=n)
        features[np.arange(n), status_index] = 1.0
        config_index = np.fromiter((info.config_index for info in infos), dtype=np.int64, count=n)
        if (config_index >= self.num_configs).any():
            bad = int(config_index[config_index >= self.num_configs][0])
            raise SchedulingError(f"config index {bad} out of range (num_configs={self.num_configs})")
        has_config = config_index >= 0
        features[np.nonzero(has_config)[0], 3 + config_index[has_config]] = 1.0
        elapsed = np.fromiter((info.elapsed for info in infos), dtype=np.float64, count=n)
        expected = np.fromiter((info.expected_time for info in infos), dtype=np.float64, count=n)
        features[:, 3 + self.num_configs] = np.tanh(elapsed / self.time_scale)
        features[:, 3 + self.num_configs + 1] = np.tanh(expected / self.time_scale)
        if self.arrival_channel:
            to_available = np.fromiter((info.time_to_available for info in infos), dtype=np.float64, count=n)
            features[:, 3 + self.num_configs + 2] = np.tanh(to_available / self.time_scale)
        if self.failure_channel:
            attempts = np.fromiter((info.attempts for info in infos), dtype=np.float64, count=n)
            features[:, self._failure_slot] = np.tanh(attempts / 3.0)
        if self.instance_context_dim:
            features[:, self.feature_dim - self.instance_context_dim :] = self._context_row(snapshot)
        return features
