"""Running-state features and the scheduler-visible state snapshot.

The non-intrusive scheduler observes, for every query in the batch, only its
execution status (pending / running / finished), the running parameters it
was submitted with, how long it has been running, and the average execution
time extracted from logs.  These are the features ``f_i`` of Section III-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property

import numpy as np

from ..exceptions import SchedulingError

__all__ = [
    "QueryStatus",
    "QueryRuntimeInfo",
    "SchedulingSnapshot",
    "SnapshotArrays",
    "RunStateFeaturizer",
]


class QueryStatus(str, Enum):
    """Execution status of one query within the current scheduling round."""

    PENDING = "pending"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass(frozen=True)
class QueryRuntimeInfo:
    """Observable runtime state of one query at a decision instant.

    ``available`` / ``time_to_available`` describe the streaming-arrival
    scenario: a query that has not yet arrived is reported as pending but
    unavailable (the action mask excludes it), with the time until its
    arrival exposed for arrival-aware featurizers.  Closed batches leave the
    defaults, which keep features bit-identical to the pre-runtime encoder.
    """

    query_id: int
    status: QueryStatus
    config_index: int = -1
    elapsed: float = 0.0
    expected_time: float = 0.0
    available: bool = True
    time_to_available: float = 0.0
    #: Failed attempts so far (fault-tolerant serving); 0 — the default —
    #: keeps closed fault-free rounds bit-compatible with the paper setting.
    attempts: int = 0

    def __post_init__(self) -> None:
        if self.elapsed < 0:
            raise SchedulingError(f"elapsed time must be >= 0 for query {self.query_id}")
        if self.attempts < 0:
            raise SchedulingError(f"attempts must be >= 0 for query {self.query_id}")
        if self.status is not QueryStatus.PENDING and self.config_index < 0:
            raise SchedulingError(
                f"query {self.query_id} is {self.status.value} but has no configuration"
            )
        if self.time_to_available < 0:
            raise SchedulingError(f"time_to_available must be >= 0 for query {self.query_id}")
        if not self.available and self.status is not QueryStatus.PENDING:
            raise SchedulingError(
                f"query {self.query_id} is {self.status.value} but marked as not yet arrived"
            )


@dataclass(frozen=True)
class SchedulingSnapshot:
    """The full observable state at one decision instant.

    ``infos`` is aligned with the batch query ids (index ``i`` describes
    query ``i``).  This object is what the attention-based state encoder and
    the learned simulator consume.

    ``instance_context`` carries per-engine-instance context rows when the
    round runs on a :class:`~repro.dbms.Cluster` (one tuple per instance:
    relative speed, busy fraction, capacity share, buffer fill — see
    :data:`repro.dbms.INSTANCE_FEATURE_DIM`).  Single-engine rounds leave it
    empty, keeping the snapshot bit-compatible with the closed-batch paper
    setting.

    ``instance_health`` carries per-instance up/down flags while any
    instance is inside an outage window (fault-tolerant serving); the empty
    default means "everything up" and keeps fault-free snapshots
    bit-compatible.

    ``priority`` / ``deadline_slack`` describe the observing tenant's SLO
    class (control-plane serving): its scheduling priority and the seconds
    remaining until its deadline at snapshot time (0.0 when no deadline is
    set).  The defaults keep classless snapshots bit-compatible.
    """

    time: float
    infos: tuple[QueryRuntimeInfo, ...]
    instance_context: tuple[tuple[float, ...], ...] = ()
    instance_health: tuple[bool, ...] = ()
    priority: float = 0.0
    deadline_slack: float = 0.0

    @property
    def num_queries(self) -> int:
        return len(self.infos)

    def ids_with_status(self, status: QueryStatus) -> list[int]:
        return [info.query_id for info in self.infos if info.status is status]

    @cached_property
    def pending_ids(self) -> list[int]:
        """Ids of queries that are pending *and* available for submission.

        In the streaming scenario, queries that have not arrived yet are
        reported as pending but unavailable; they are excluded here so that
        schedulers iterating the pending set only ever pick schedulable
        queries.  Closed batches (everything available) are unaffected.

        Cached: snapshots are immutable, so hot loops that read the pending
        set several times per decision step pay the O(n) scan once.
        """
        return [
            info.query_id
            for info in self.infos
            if info.status is QueryStatus.PENDING and info.available
        ]

    @cached_property
    def unarrived_ids(self) -> list[int]:
        """Ids of queries that have not yet arrived (streaming scenario)."""
        return [info.query_id for info in self.infos if not info.available]

    @cached_property
    def running_ids(self) -> list[int]:
        return self.ids_with_status(QueryStatus.RUNNING)

    @cached_property
    def finished_ids(self) -> list[int]:
        return self.ids_with_status(QueryStatus.FINISHED)


_STATUS_ORDER = {QueryStatus.PENDING: 0, QueryStatus.RUNNING: 1, QueryStatus.FINISHED: 2}
_STATUS_FROM_CODE = (QueryStatus.PENDING, QueryStatus.RUNNING, QueryStatus.FINISHED)


class SnapshotArrays:
    """Structure-of-arrays twin of :class:`SchedulingSnapshot`.

    Hot loops (vectorized rollouts, the serving runtime) build one of these
    per decision step from incrementally-maintained session arrays instead of
    materializing ``n`` frozen :class:`QueryRuntimeInfo` objects; the
    featurizer consumes the columns directly (:meth:`RunStateFeaturizer.
    featurize_arrays`) with zero per-query Python work.

    The class duck-types the read API of :class:`SchedulingSnapshot`
    (``time`` / ``infos`` / ``pending_ids`` / ``running_ids`` / …), so
    schedulers, policies and tests written against the AoS snapshot work
    unchanged — the object-level view is built lazily and cached on first
    access.  Array columns use the observable status codes of
    ``_STATUS_ORDER`` (0 = pending, 1 = running, 2 = finished).
    """

    __slots__ = (
        "time",
        "status",
        "config_index",
        "elapsed",
        "expected_time",
        "available",
        "time_to_available",
        "attempts",
        "instance_context_array",
        "instance_health_array",
        "priority",
        "deadline_slack",
        "state_key",
        "row_version",
        "_infos",
        "_pending_ids",
        "_unarrived_ids",
        "_running_ids",
        "_finished_ids",
        "_snapshot",
    )

    def __init__(
        self,
        time: float,
        status: np.ndarray,
        config_index: np.ndarray,
        elapsed: np.ndarray,
        expected_time: np.ndarray,
        available: np.ndarray,
        time_to_available: np.ndarray,
        attempts: np.ndarray,
        instance_context_array: np.ndarray | None = None,
        instance_health_array: np.ndarray | None = None,
        state_key: object | None = None,
        row_version: np.ndarray | None = None,
        priority: float = 0.0,
        deadline_slack: float = 0.0,
    ) -> None:
        self.time = time
        self.status = status
        self.config_index = config_index
        self.elapsed = elapsed
        self.expected_time = expected_time
        self.available = available
        self.time_to_available = time_to_available
        self.attempts = attempts
        self.instance_context_array = instance_context_array
        self.instance_health_array = instance_health_array
        self.priority = priority
        self.deadline_slack = deadline_slack
        #: Identity of the live session this snapshot was taken from, plus a
        #: captured copy of its per-row mutation stamps.  Incremental
        #: inference backends (:mod:`repro.nn.backend`) key their per-session
        #: caches on ``state_key`` and diff ``row_version`` across steps to
        #: find the rows to re-project; ``None`` (the default) simply opts a
        #: snapshot out of cross-step caching.
        self.state_key = state_key
        self.row_version = row_version
        self._infos: tuple[QueryRuntimeInfo, ...] | None = None
        self._pending_ids: list[int] | None = None
        self._unarrived_ids: list[int] | None = None
        self._running_ids: list[int] | None = None
        self._finished_ids: list[int] | None = None
        self._snapshot: SchedulingSnapshot | None = None

    # ------------------------------------------------------------------ #
    # SchedulingSnapshot read API (lazy, cached)
    # ------------------------------------------------------------------ #
    @property
    def num_queries(self) -> int:
        return int(self.status.shape[0])

    @property
    def infos(self) -> tuple[QueryRuntimeInfo, ...]:
        if self._infos is None:
            self._infos = tuple(
                QueryRuntimeInfo(
                    query_id=i,
                    status=_STATUS_FROM_CODE[code],
                    config_index=int(self.config_index[i]),
                    elapsed=float(self.elapsed[i]),
                    expected_time=float(self.expected_time[i]),
                    available=bool(self.available[i]),
                    time_to_available=float(self.time_to_available[i]),
                    attempts=int(self.attempts[i]),
                )
                for i, code in enumerate(self.status.tolist())
            )
        return self._infos

    @property
    def instance_context(self) -> tuple[tuple[float, ...], ...]:
        if self.instance_context_array is None:
            return ()
        return tuple(tuple(row) for row in self.instance_context_array.tolist())

    @property
    def instance_health(self) -> tuple[bool, ...]:
        if self.instance_health_array is None:
            return ()
        return tuple(bool(flag) for flag in self.instance_health_array.tolist())

    def ids_with_status(self, status: QueryStatus) -> list[int]:
        code = _STATUS_ORDER[status]
        result: list[int] = np.nonzero(self.status == code)[0].tolist()
        return result

    @property
    def pending_ids(self) -> list[int]:
        if self._pending_ids is None:
            self._pending_ids = np.nonzero((self.status == 0) & self.available)[0].tolist()
        return self._pending_ids

    @property
    def unarrived_ids(self) -> list[int]:
        if self._unarrived_ids is None:
            self._unarrived_ids = np.nonzero(~self.available)[0].tolist()
        return self._unarrived_ids

    @property
    def running_ids(self) -> list[int]:
        if self._running_ids is None:
            self._running_ids = np.nonzero(self.status == 1)[0].tolist()
        return self._running_ids

    @property
    def finished_ids(self) -> list[int]:
        if self._finished_ids is None:
            self._finished_ids = np.nonzero(self.status == 2)[0].tolist()
        return self._finished_ids

    def to_snapshot(self) -> SchedulingSnapshot:
        """The equivalent AoS :class:`SchedulingSnapshot` (built once, cached)."""
        if self._snapshot is None:
            self._snapshot = SchedulingSnapshot(
                time=self.time,
                infos=self.infos,
                instance_context=self.instance_context,
                instance_health=self.instance_health,
                priority=self.priority,
                deadline_slack=self.deadline_slack,
            )
        return self._snapshot


class RunStateFeaturizer:
    """Encodes :class:`QueryRuntimeInfo` into the dense feature vector ``f_i``.

    Layout: status one-hot (3) ‖ configuration one-hot (``num_configs``) ‖
    normalised elapsed time ‖ normalised expected execution time
    [‖ normalised time-to-arrival].

    The optional arrival channel (``arrival_channel=True``) supports the
    streaming scenario, where the pending set grows as queries arrive: the
    extra entry is ``tanh(time_to_available / time_scale)`` — zero for every
    query that is already available, so closed batches are unaffected.  It is
    off by default to keep the feature layout (and trained policies)
    bit-compatible with the paper's closed-batch encoder.

    The optional instance-context channel (``instance_context_dim > 0``)
    supports cluster scheduling: the snapshot's flattened per-instance
    context rows (load, buffer warmth, profile speed) are appended to every
    query token, so the batch-level attention sees placement state alongside
    query state.  In cluster mode the (instance, configuration) pair is
    one-hot encoded jointly through ``num_configs = instances * configs``,
    which degenerates to the paper's layout at one instance.

    The optional SLO channel (``slo_channel=True``) supports control-plane
    serving with tenant classes: two extra entries broadcast the observing
    tenant's ``tanh(priority / 4.0)`` and ``tanh(deadline_slack /
    time_scale)`` to every query token, letting one shared policy condition
    on which service tier it is scheduling for and how much deadline head
    room is left.  Like the other channels it is off by default, keeping the
    layout bit-compatible with classless policies.
    """

    def __init__(
        self,
        num_configs: int,
        time_scale: float = 10.0,
        arrival_channel: bool = False,
        instance_context_dim: int = 0,
        failure_channel: bool = False,
        slo_channel: bool = False,
    ) -> None:
        if num_configs < 1:
            raise SchedulingError("num_configs must be >= 1")
        if time_scale <= 0:
            raise SchedulingError("time_scale must be positive")
        if instance_context_dim < 0:
            raise SchedulingError("instance_context_dim must be >= 0")
        self.num_configs = num_configs
        self.time_scale = time_scale
        self.arrival_channel = arrival_channel
        self.instance_context_dim = instance_context_dim
        self.failure_channel = failure_channel
        self.slo_channel = slo_channel

    @property
    def feature_dim(self) -> int:
        return (
            3
            + self.num_configs
            + 2
            + (1 if self.arrival_channel else 0)
            + (1 if self.failure_channel else 0)
            + (2 if self.slo_channel else 0)
            + self.instance_context_dim
        )

    @property
    def _failure_slot(self) -> int:
        """Column of the failure channel (valid only when enabled)."""
        return 3 + self.num_configs + 2 + (1 if self.arrival_channel else 0)

    @property
    def _slo_slot(self) -> int:
        """First column of the SLO channel pair (valid only when enabled)."""
        return self._failure_slot + (1 if self.failure_channel else 0)

    def featurize(self, info: QueryRuntimeInfo) -> np.ndarray:
        vector = np.zeros(self.feature_dim, dtype=np.float64)
        vector[_STATUS_ORDER[info.status]] = 1.0
        if info.config_index >= 0:
            if info.config_index >= self.num_configs:
                raise SchedulingError(
                    f"config index {info.config_index} out of range (num_configs={self.num_configs})"
                )
            vector[3 + info.config_index] = 1.0
        vector[3 + self.num_configs] = np.tanh(info.elapsed / self.time_scale)
        vector[3 + self.num_configs + 1] = np.tanh(info.expected_time / self.time_scale)
        if self.arrival_channel:
            vector[3 + self.num_configs + 2] = np.tanh(info.time_to_available / self.time_scale)
        if self.failure_channel:
            vector[self._failure_slot] = np.tanh(info.attempts / 3.0)
        # Instance-context and SLO slots stay zero here: the per-info
        # featurizer has no snapshot to read them from (featurize_snapshot
        # fills them in).
        return vector

    def _context_row(self, snapshot: SchedulingSnapshot) -> np.ndarray:
        """Flattened instance-context row shared by every query token."""
        row = np.zeros(self.instance_context_dim, dtype=np.float64)
        if snapshot.instance_context:
            flat = np.concatenate([np.asarray(entry, dtype=np.float64) for entry in snapshot.instance_context])
            if flat.shape[0] != self.instance_context_dim:
                raise SchedulingError(
                    f"snapshot instance context has {flat.shape[0]} entries, "
                    f"featurizer expects {self.instance_context_dim}"
                )
            row = flat
        return row

    def featurize_snapshot(self, snapshot: "SchedulingSnapshot | SnapshotArrays") -> np.ndarray:
        """Return the ``(n, feature_dim)`` matrix of running-state features.

        Vectorized over the whole snapshot (one array op per feature channel
        instead of one Python call per query); produces bit-identical rows to
        :meth:`featurize`.  :class:`SnapshotArrays` snapshots dispatch to the
        zero-extraction :meth:`featurize_arrays` fast path.
        """
        if isinstance(snapshot, SnapshotArrays):
            return self.featurize_arrays(snapshot)
        infos = snapshot.infos
        n = len(infos)
        features = np.zeros((n, self.feature_dim), dtype=np.float64)
        status_index = np.fromiter((_STATUS_ORDER[info.status] for info in infos), dtype=np.int64, count=n)
        features[np.arange(n), status_index] = 1.0
        config_index = np.fromiter((info.config_index for info in infos), dtype=np.int64, count=n)
        if (config_index >= self.num_configs).any():
            bad = int(config_index[config_index >= self.num_configs][0])
            raise SchedulingError(f"config index {bad} out of range (num_configs={self.num_configs})")
        has_config = config_index >= 0
        features[np.nonzero(has_config)[0], 3 + config_index[has_config]] = 1.0
        elapsed = np.fromiter((info.elapsed for info in infos), dtype=np.float64, count=n)
        expected = np.fromiter((info.expected_time for info in infos), dtype=np.float64, count=n)
        features[:, 3 + self.num_configs] = np.tanh(elapsed / self.time_scale)
        features[:, 3 + self.num_configs + 1] = np.tanh(expected / self.time_scale)
        if self.arrival_channel:
            to_available = np.fromiter((info.time_to_available for info in infos), dtype=np.float64, count=n)
            features[:, 3 + self.num_configs + 2] = np.tanh(to_available / self.time_scale)
        if self.failure_channel:
            attempts = np.fromiter((info.attempts for info in infos), dtype=np.float64, count=n)
            features[:, self._failure_slot] = np.tanh(attempts / 3.0)
        if self.slo_channel:
            features[:, self._slo_slot] = np.tanh(getattr(snapshot, "priority", 0.0) / 4.0)
            features[:, self._slo_slot + 1] = np.tanh(
                getattr(snapshot, "deadline_slack", 0.0) / self.time_scale
            )
        if self.instance_context_dim:
            features[:, self.feature_dim - self.instance_context_dim :] = self._context_row(snapshot)
        return features

    def featurize_arrays(self, arrays: SnapshotArrays, out: "np.ndarray | None" = None) -> np.ndarray:
        """Vectorized featurization straight from :class:`SnapshotArrays`.

        No per-query extraction at all: every feature channel is one array op
        over the incrementally-maintained session columns.  Bit-identical to
        :meth:`featurize_snapshot` on the equivalent AoS snapshot (the same
        float64 ops run on the same values).  ``out``, when given, must be a
        float64 ``(n, feature_dim)`` buffer; it is zeroed and filled in place
        so batched callers can featurize straight into a stacked tensor.
        """
        n = arrays.num_queries
        if out is None:
            features = np.zeros((n, self.feature_dim), dtype=np.float64)
        else:
            features = out
            features[:] = 0.0
        features[np.arange(n), arrays.status.astype(np.int64, copy=False)] = 1.0
        config_index = arrays.config_index
        if (config_index >= self.num_configs).any():
            bad = int(config_index[config_index >= self.num_configs][0])
            raise SchedulingError(f"config index {bad} out of range (num_configs={self.num_configs})")
        has_config = config_index >= 0
        features[np.nonzero(has_config)[0], 3 + config_index[has_config]] = 1.0
        features[:, 3 + self.num_configs] = np.tanh(arrays.elapsed / self.time_scale)
        features[:, 3 + self.num_configs + 1] = np.tanh(arrays.expected_time / self.time_scale)
        if self.arrival_channel:
            features[:, 3 + self.num_configs + 2] = np.tanh(arrays.time_to_available / self.time_scale)
        if self.failure_channel:
            attempts = arrays.attempts.astype(np.float64, copy=False)
            features[:, self._failure_slot] = np.tanh(attempts / 3.0)
        if self.slo_channel:
            features[:, self._slo_slot] = np.tanh(arrays.priority / 4.0)
            features[:, self._slo_slot + 1] = np.tanh(arrays.deadline_slack / self.time_scale)
        if self.instance_context_dim:
            context = arrays.instance_context_array
            row = np.zeros(self.instance_context_dim, dtype=np.float64)
            if context is not None and context.size:
                flat = np.ascontiguousarray(context, dtype=np.float64).reshape(-1)
                if flat.shape[0] != self.instance_context_dim:
                    raise SchedulingError(
                        f"snapshot instance context has {flat.shape[0]} entries, "
                        f"featurizer expects {self.instance_context_dim}"
                    )
                row = flat
            features[:, self.feature_dim - self.instance_context_dim :] = row
        return features

    def featurize_arrays_stack(self, stack: "list[SnapshotArrays]", out: np.ndarray) -> np.ndarray:
        """Featurize a whole stack of :class:`SnapshotArrays` in one pass.

        ``out`` is a float64 ``(len(stack), n, feature_dim)`` buffer.  Every
        channel runs one array op over the ``(batch, n)`` stack instead of
        one per snapshot; each plane is bit-identical to
        :meth:`featurize_arrays` on the corresponding snapshot (the same
        elementwise ufuncs on the same values, just stacked).
        """
        batch = len(stack)
        out[:] = 0.0
        rows = np.arange(batch)[:, None]
        cols = np.arange(stack[0].num_queries)[None, :]
        status = np.stack([arrays.status for arrays in stack]).astype(np.int64, copy=False)
        out[rows, cols, status] = 1.0
        config_index = np.stack([arrays.config_index for arrays in stack])
        if (config_index >= self.num_configs).any():
            bad = int(config_index[config_index >= self.num_configs][0])
            raise SchedulingError(f"config index {bad} out of range (num_configs={self.num_configs})")
        has_config = config_index >= 0
        bi, qi = np.nonzero(has_config)
        out[bi, qi, 3 + config_index[bi, qi]] = 1.0
        elapsed = np.stack([arrays.elapsed for arrays in stack])
        expected = np.stack([arrays.expected_time for arrays in stack])
        out[:, :, 3 + self.num_configs] = np.tanh(elapsed / self.time_scale)
        out[:, :, 3 + self.num_configs + 1] = np.tanh(expected / self.time_scale)
        if self.arrival_channel:
            to_available = np.stack([arrays.time_to_available for arrays in stack])
            out[:, :, 3 + self.num_configs + 2] = np.tanh(to_available / self.time_scale)
        if self.failure_channel:
            attempts = np.stack([arrays.attempts for arrays in stack]).astype(np.float64, copy=False)
            out[:, :, self._failure_slot] = np.tanh(attempts / 3.0)
        if self.slo_channel:
            priority = np.array([arrays.priority for arrays in stack], dtype=np.float64)
            slack = np.array([arrays.deadline_slack for arrays in stack], dtype=np.float64)
            out[:, :, self._slo_slot] = np.tanh(priority / 4.0)[:, None]
            out[:, :, self._slo_slot + 1] = np.tanh(slack / self.time_scale)[:, None]
        if self.instance_context_dim:
            offset = self.feature_dim - self.instance_context_dim
            for index, arrays in enumerate(stack):
                context = arrays.instance_context_array
                if context is not None and context.size:
                    flat = np.ascontiguousarray(context, dtype=np.float64).reshape(-1)
                    if flat.shape[0] != self.instance_context_dim:
                        raise SchedulingError(
                            f"snapshot instance context has {flat.shape[0]} entries, "
                            f"featurizer expects {self.instance_context_dim}"
                        )
                    out[index, :, offset:] = flat
        return out
