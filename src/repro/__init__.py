"""BQSched reproduction: a non-intrusive RL scheduler for batch concurrent queries.

The public API re-exports the pieces a downstream user needs to schedule a
batch query set end-to-end:

* :mod:`repro.workloads` — synthetic TPC-DS / TPC-H / JOB query catalogues.
* :mod:`repro.dbms` — the black-box concurrent execution substrate.
* :mod:`repro.core` — BQSched itself plus heuristic and LSched baselines.
* :mod:`repro.bench` — the experiment harness reproducing the paper's tables
  and figures.

Quickstart::

    from repro import BQSched, DatabaseEngine, DBMSProfile, make_workload

    workload = make_workload("tpcds", scale_factor=1.0, seed=0)
    engine = DatabaseEngine(DBMSProfile.dbms_x(), seed=0)
    scheduler = BQSched.from_workload(workload, engine, seed=0)
    scheduler.train(num_episodes=50)
    result = scheduler.schedule(workload.batch_query_set())
    print(result.makespan)
"""

from .version import __version__
from .config import (
    AdmissionPolicy,
    AutoscalePolicy,
    BQSchedConfig,
    EncoderConfig,
    PPOConfig,
    RetryPolicy,
    SchedulerConfig,
    ServiceConfig,
    SimulatorConfig,
)
from .exceptions import (
    BQSchedError,
    ConfigurationError,
    SchedulingError,
    SimulationError,
    WorkloadError,
)
from .workloads import (
    ArrivalProcess,
    BatchQuerySet,
    BurstyArrivals,
    ClosedArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    Query,
    TraceArrivals,
    Workload,
    make_arrival_process,
    make_workload,
)
from .dbms import (
    Cluster,
    DatabaseEngine,
    DBMSProfile,
    ExecutionLog,
    FailureProfile,
    OutageWindow,
    RunningParameters,
)
from .runtime import (
    ClassReport,
    ControlPlane,
    ExecutionRuntime,
    RuntimeTenant,
    ServiceReport,
    TenantClass,
    TenantSession,
)
from .seeding import SeedSpawner
from .core import (
    BQSched,
    ClusterSchedulingEnv,
    FIFOScheduler,
    GreedyCostPlacementScheduler,
    LeastOutstandingWorkScheduler,
    LSchedScheduler,
    MCFScheduler,
    RandomScheduler,
    RoundRobinPlacementScheduler,
    SchedulingEnv,
    SchedulingResult,
)

__all__ = [
    "__version__",
    "AdmissionPolicy",
    "AutoscalePolicy",
    "BQSchedConfig",
    "EncoderConfig",
    "PPOConfig",
    "RetryPolicy",
    "SchedulerConfig",
    "ServiceConfig",
    "SimulatorConfig",
    "BQSchedError",
    "ConfigurationError",
    "SchedulingError",
    "SimulationError",
    "WorkloadError",
    "ArrivalProcess",
    "BatchQuerySet",
    "BurstyArrivals",
    "ClosedArrivals",
    "FlashCrowdArrivals",
    "PoissonArrivals",
    "Query",
    "TraceArrivals",
    "Workload",
    "make_arrival_process",
    "make_workload",
    "ClassReport",
    "ControlPlane",
    "ExecutionRuntime",
    "RuntimeTenant",
    "ServiceReport",
    "TenantClass",
    "TenantSession",
    "Cluster",
    "DatabaseEngine",
    "DBMSProfile",
    "ExecutionLog",
    "FailureProfile",
    "OutageWindow",
    "RunningParameters",
    "SeedSpawner",
    "BQSched",
    "ClusterSchedulingEnv",
    "FIFOScheduler",
    "GreedyCostPlacementScheduler",
    "LeastOutstandingWorkScheduler",
    "LSchedScheduler",
    "MCFScheduler",
    "RandomScheduler",
    "RoundRobinPlacementScheduler",
    "SchedulingEnv",
    "SchedulingResult",
]
