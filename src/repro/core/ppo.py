"""Proximal Policy Optimisation trainer (the backbone of Section III-B).

:class:`PPOTrainer` is the base on-policy trainer: it collects complete
scheduling episodes from a :class:`repro.core.env.SchedulingEnv`, computes
GAE advantages, and optimises the clipped surrogate objective plus a value
loss and an entropy bonus.  PPG and IQ-PPO subclass it and add their
respective auxiliary phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import PPOConfig
from ..nn import Adam, Tensor, clip_grad_norm, concatenate, kl_divergence
from .env import SchedulingEnv
from .policy import ActorCriticNetwork
from .rollout import RolloutBuffer, Transition
from .types import StrategyEvaluation

__all__ = ["PPOTrainer", "TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-update learning curves, used by the ablation figure (Figure 7)."""

    steps: list[int] = field(default_factory=list)
    train_rewards: list[float] = field(default_factory=list)
    train_makespans: list[float] = field(default_factory=list)
    eval_makespans: list[float] = field(default_factory=list)
    policy_losses: list[float] = field(default_factory=list)
    value_losses: list[float] = field(default_factory=list)
    aux_losses: list[float] = field(default_factory=list)

    def best_eval(self) -> float:
        return float(np.min(self.eval_makespans)) if self.eval_makespans else float("nan")


class PPOTrainer:
    """Plain PPO over the scheduling environment."""

    algorithm = "ppo"

    def __init__(
        self,
        policy: ActorCriticNetwork,
        plan_embeddings: np.ndarray,
        env: SchedulingEnv,
        config: PPOConfig,
        seed: int = 0,
        eval_env: SchedulingEnv | None = None,
    ) -> None:
        self.policy = policy
        self.plan_embeddings = plan_embeddings
        self.env = env
        self.eval_env = eval_env or env
        self.config = config
        self.rng = np.random.default_rng(seed)
        self.optimizer = Adam(policy.parameters(), lr=config.learning_rate)
        self.history = TrainingHistory()
        self._total_steps = 0
        self._updates_since_aux = 0
        self._round_counter = 0

    # ------------------------------------------------------------------ #
    # Rollout collection
    # ------------------------------------------------------------------ #
    def collect_rollouts(self, num_episodes: int) -> RolloutBuffer:
        """Sample ``num_episodes`` complete scheduling rounds with the current policy."""
        buffer = RolloutBuffer(gamma=self.config.gamma, gae_lambda=self.config.gae_lambda)
        clusters = self.env.clusters
        for _ in range(num_episodes):
            snapshot = self.env.reset(round_id=self._round_counter)
            self._round_counter += 1
            done = False
            while not done:
                mask = self.env.action_mask()
                decision = self.policy.act(
                    self.plan_embeddings, snapshot, mask, self.rng, greedy=False, clusters=clusters
                )
                step = self.env.step(decision.action)
                buffer.add(
                    Transition(
                        snapshot=snapshot,
                        action=decision.action,
                        log_prob=decision.log_prob,
                        value=decision.value,
                        reward=step.reward,
                        done=step.done,
                        mask=mask,
                        time=snapshot.time,
                    )
                )
                snapshot = step.snapshot
                done = step.done
                self._total_steps += 1
            result = self.env.result()
            buffer.finish_episode(result.round_log, result.makespan)
        return buffer

    # ------------------------------------------------------------------ #
    # Optimisation
    # ------------------------------------------------------------------ #
    def update(self, buffer: RolloutBuffer) -> dict[str, float]:
        """One PPO update over the collected buffer."""
        buffer.normalized_advantages()
        clusters = self.env.clusters
        policy_losses, value_losses = [], []
        for _ in range(self.config.epochs_per_update):
            batch = buffer.sample(self.config.minibatch_size, self.rng)
            losses = []
            for transition in batch:
                log_prob, entropy, value, _ = self.policy.evaluate_action(
                    self.plan_embeddings,
                    transition.snapshot,
                    transition.action,
                    transition.mask,
                    clusters=clusters,
                )
                ratio = (log_prob - transition.log_prob).exp()
                advantage = transition.advantage
                surrogate1 = ratio * advantage
                surrogate2 = ratio.clip(1.0 - self.config.clip_epsilon, 1.0 + self.config.clip_epsilon) * advantage
                # -min(s1, s2) expressed as max(-s1, -s2) so the tape stays simple.
                clip_term = concatenate(
                    [(surrogate1 * -1.0).reshape(1), (surrogate2 * -1.0).reshape(1)], axis=0
                ).max()
                value_error = value.reshape(1) - Tensor(np.array([transition.value_target]))
                value_loss = (value_error * value_error).sum() * 0.5
                loss = clip_term + self.config.value_coef * value_loss - self.config.entropy_coef * entropy
                losses.append(loss)
                policy_losses.append(float(clip_term.data))
                value_losses.append(float(value_loss.data))
            total = losses[0]
            for extra in losses[1:]:
                total = total + extra
            total = total * (1.0 / len(losses))
            self.optimizer.zero_grad()
            total.backward()
            clip_grad_norm(self.policy.parameters(), self.config.max_grad_norm)
            self.optimizer.step()
        return {
            "policy_loss": float(np.mean(policy_losses)) if policy_losses else 0.0,
            "value_loss": float(np.mean(value_losses)) if value_losses else 0.0,
        }

    def auxiliary_phase(self, buffer: RolloutBuffer) -> float:
        """Hook overridden by PPG / IQ-PPO; plain PPO has no auxiliary phase."""
        return 0.0

    # ------------------------------------------------------------------ #
    # Training loop
    # ------------------------------------------------------------------ #
    def train(self, num_updates: int, eval_every: int = 2, eval_rounds: int = 1) -> TrainingHistory:
        """Alternate rollout collection and optimisation for ``num_updates`` rounds."""
        for update_index in range(num_updates):
            buffer = self.collect_rollouts(self.config.rollouts_per_update)
            losses = self.update(buffer)
            self._updates_since_aux += 1
            aux_loss = 0.0
            if self._updates_since_aux >= self.config.aux_every:
                aux_loss = self.auxiliary_phase(buffer)
                self._updates_since_aux = 0
            self.history.steps.append(self._total_steps)
            self.history.train_rewards.append(float(np.mean(buffer.episode_rewards())))
            self.history.train_makespans.append(float(np.mean(buffer.episode_makespans())))
            self.history.policy_losses.append(losses["policy_loss"])
            self.history.value_losses.append(losses["value_loss"])
            self.history.aux_losses.append(aux_loss)
            if eval_every and (update_index + 1) % eval_every == 0:
                evaluation = self.evaluate(rounds=eval_rounds, greedy=True)
                self.history.eval_makespans.append(evaluation.mean)
        return self.history

    def evaluate(self, rounds: int = 5, greedy: bool = True, base_round_id: int = 10_000) -> StrategyEvaluation:
        """Run the current policy for ``rounds`` evaluation rounds."""
        clusters = self.eval_env.clusters
        evaluation = StrategyEvaluation(strategy=self.algorithm)
        for offset in range(rounds):
            snapshot = self.eval_env.reset(round_id=base_round_id + offset)
            done = False
            while not done:
                mask = self.eval_env.action_mask()
                decision = self.policy.act(
                    self.plan_embeddings, snapshot, mask, self.rng, greedy=greedy, clusters=clusters
                )
                step = self.eval_env.step(decision.action)
                snapshot = step.snapshot
                done = step.done
            evaluation.add(self.eval_env.result().makespan)
        return evaluation

    # ------------------------------------------------------------------ #
    # Shared auxiliary utilities
    # ------------------------------------------------------------------ #
    def _snapshot_old_policy(self, transitions: list[Transition]) -> list[np.ndarray]:
        """Log-probabilities of the current policy before an auxiliary phase starts.

        The auxiliary objectives of PPG and IQ-PPO include a behaviour-cloning
        term ``KL(π_old || π_new)``; π_old is the policy at the moment the
        auxiliary phase begins (Algorithm 1, line 6).
        """
        from ..nn import no_grad

        clusters = self.env.clusters
        snapshots: list[np.ndarray] = []
        with no_grad():
            for transition in transitions:
                _, _, _, log_probs = self.policy.evaluate_action(
                    self.plan_embeddings,
                    transition.snapshot,
                    transition.action,
                    transition.mask,
                    clusters=clusters,
                )
                snapshots.append(np.array(log_probs.data, copy=True))
        return snapshots
