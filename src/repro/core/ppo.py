"""Proximal Policy Optimisation trainer (the backbone of Section III-B).

:class:`PPOTrainer` is the base on-policy trainer: it collects complete
scheduling episodes from a :class:`repro.core.env.SchedulingEnv`, computes
GAE advantages, and optimises the clipped surrogate objective plus a value
loss and an entropy bonus.  PPG and IQ-PPO subclass it and add their
respective auxiliary phases.

With ``PPOConfig.num_envs > 1`` the trainer switches to the vectorized
execution spine: rollouts are collected from a
:class:`~repro.core.vecenv.VectorSchedulingEnv` stepping N sessions in
lockstep with one batched policy forward per decision round, and the PPO
update evaluates each minibatch with a single stacked forward/backward
instead of one encoder pass per transition.  ``num_envs=1`` keeps the
original sequential code path bit-for-bit.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from ..config import PPOConfig
from ..nn import Adam, Tensor, chained_sum, clip_grad_norm, concatenate, fastgrad, where
from ..nn.backend import InferenceBackend
from .env import SchedulingEnv
from .policy import ActorCriticNetwork
from .rollout import RolloutBuffer, Transition
from .types import StrategyEvaluation
from .vecenv import VectorSchedulingEnv

__all__ = ["PPOTrainer", "TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-update learning curves, used by the ablation figure (Figure 7)."""

    steps: list[int] = field(default_factory=list)
    train_rewards: list[float] = field(default_factory=list)
    train_makespans: list[float] = field(default_factory=list)
    eval_makespans: list[float] = field(default_factory=list)
    policy_losses: list[float] = field(default_factory=list)
    value_losses: list[float] = field(default_factory=list)
    aux_losses: list[float] = field(default_factory=list)

    def best_eval(self) -> float:
        return float(np.min(self.eval_makespans)) if self.eval_makespans else float("nan")


class PPOTrainer:
    """Plain PPO over the scheduling environment."""

    algorithm = "ppo"

    def __init__(
        self,
        policy: ActorCriticNetwork,
        plan_embeddings: np.ndarray,
        env: SchedulingEnv,
        config: PPOConfig,
        seed: int = 0,
        eval_env: SchedulingEnv | None = None,
        backend: InferenceBackend | None = None,
        training_path: str = "tape",
    ) -> None:
        self.policy = policy
        self.plan_embeddings = plan_embeddings
        self.env = env
        self.eval_env = eval_env or env
        self.config = config
        #: Inference backend for the *sampling* forwards (rollout collection
        #: and evaluation).  ``None`` keeps the reference paths; the learning
        #: updates below never route through a backend.
        self.inference_backend = backend
        if training_path not in ("tape", "fused"):
            raise ValueError(f"training_path must be 'tape' or 'fused', got {training_path!r}")
        #: ``"tape"`` runs updates through the autograd tape; ``"fused"``
        #: uses the tape-free analytic kernels in :mod:`repro.nn.fastgrad`
        #: (batched spine only), falling back audibly when unsupported.
        self.training_path = training_path
        self._fused_checked = False
        self._fused_reason: str | None = None
        self._arena: fastgrad.Arena | None = None
        self.rng = np.random.default_rng(seed)
        self.optimizer = Adam(policy.parameters(), lr=config.learning_rate)
        self.history = TrainingHistory()
        self.num_envs = max(1, config.num_envs)
        self.vec_env = VectorSchedulingEnv.from_template(env, self.num_envs) if self.num_envs > 1 else None
        self._total_steps = 0
        self._updates_since_aux = 0
        self._round_counter = 0
        # Imported lazily: repro.bench pulls in the benchmark harness (which
        # itself imports repro.core), so a module-level import would cycle.
        from ..bench.profiling import SectionTimers

        #: Wall-clock breakdown of training phases ("rollout", "update",
        #: "aux", plus the nested "optimizer" slice of each update).
        self.timers = SectionTimers()

    def _use_fused_updates(self) -> bool:
        """Whether this update should run the fused training path.

        First call resolves the support gate; an unsupported configuration
        warns once (``RuntimeWarning`` naming the reason, in the style of
        ``fastinfer.why_slow``) and every later call falls back silently.
        """
        if self.training_path != "fused":
            return False
        if not self._fused_checked:
            self._fused_checked = True
            self._fused_reason = fastgrad.fused_training_reason(
                self.policy, clusters=self.env.clusters
            )
            if self._fused_reason is not None:
                warnings.warn(
                    f"training_path='fused' falling back to the tape: {self._fused_reason}",
                    RuntimeWarning,
                    stacklevel=3,
                )
            else:
                self._arena = fastgrad.Arena()
        return self._fused_reason is None

    @property
    def vectorized(self) -> bool:
        """Whether rollouts and updates use the batched execution spine."""
        return self.num_envs > 1

    # ------------------------------------------------------------------ #
    # Rollout collection
    # ------------------------------------------------------------------ #
    def collect_rollouts(self, num_episodes: int) -> RolloutBuffer:
        """Sample ``num_episodes`` complete scheduling rounds with the current policy.

        Dispatches to the vectorized collector when ``num_envs > 1``; the
        sequential path below is untouched so ``num_envs=1`` stays
        seed-for-seed identical to the original implementation.
        """
        if self.vectorized:
            return self._collect_rollouts_vectorized(num_episodes)
        buffer = RolloutBuffer(gamma=self.config.gamma, gae_lambda=self.config.gae_lambda)
        clusters = self.env.clusters
        for _ in range(num_episodes):
            snapshot = self.env.reset(round_id=self._round_counter)
            self._round_counter += 1
            done = False
            while not done:
                mask = self.env.action_mask()
                decision = self.policy.act(
                    self.plan_embeddings,
                    snapshot,
                    mask,
                    self.rng,
                    greedy=False,
                    clusters=clusters,
                    backend=self.inference_backend,
                )
                step = self.env.step(decision.action)
                buffer.add(
                    Transition(
                        snapshot=snapshot,
                        action=decision.action,
                        log_prob=decision.log_prob,
                        value=decision.value,
                        reward=step.reward,
                        done=step.done,
                        mask=mask,
                        time=snapshot.time,
                    )
                )
                snapshot = step.snapshot
                done = step.done
                self._total_steps += 1
            result = self.env.result()
            buffer.finish_episode(result.round_log, result.makespan)
        return buffer

    def _collect_rollouts_vectorized(self, num_episodes: int) -> RolloutBuffer:
        """Collect ``num_episodes`` episodes from N lockstep environments.

        Every decision round runs ONE batched policy forward over the active
        sub-envs' snapshots and stacked action masks; finished sub-envs are
        re-seeded with the next episode until the budget is exhausted, then
        drop out of the lockstep batch.
        """
        buffer = RolloutBuffer(gamma=self.config.gamma, gae_lambda=self.config.gae_lambda)
        vec = self.vec_env
        clusters = vec.clusters
        snapshots: dict[int, object] = {}
        active: list[int] = []
        episodes_started = 0
        for index in range(min(vec.num_envs, num_episodes)):
            snapshots[index] = vec.reset_at(index, round_id=self._round_counter)
            self._round_counter += 1
            episodes_started += 1
            active.append(index)
        while active:
            masks = vec.masks_for(active)
            batch_snapshots = [snapshots[i] for i in active]
            decisions = self.policy.act_batch(
                self.plan_embeddings,
                batch_snapshots,
                masks,
                self.rng,
                greedy=False,
                clusters=clusters,
                backend=self.inference_backend,
            )
            steps = vec.step_many(active, [d.action for d in decisions])
            still_active: list[int] = []
            for slot, index in enumerate(active):
                decision, step = decisions[slot], steps[slot]
                buffer.add(
                    Transition(
                        snapshot=batch_snapshots[slot],
                        action=decision.action,
                        log_prob=decision.log_prob,
                        value=decision.value,
                        reward=step.reward,
                        done=step.done,
                        mask=masks[slot].copy(),
                        time=batch_snapshots[slot].time,
                    ),
                    env_index=index,
                )
                self._total_steps += 1
                if step.done:
                    result = vec.result_at(index)
                    buffer.finish_episode(result.round_log, result.makespan, env_index=index)
                    if episodes_started < num_episodes:
                        snapshots[index] = vec.reset_at(index, round_id=self._round_counter)
                        self._round_counter += 1
                        episodes_started += 1
                        still_active.append(index)
                else:
                    snapshots[index] = step.snapshot
                    still_active.append(index)
            active = still_active
        return buffer

    # ------------------------------------------------------------------ #
    # Optimisation
    # ------------------------------------------------------------------ #
    def update(self, buffer: RolloutBuffer) -> dict[str, float]:
        """One PPO update over the collected buffer.

        Vectorized trainers evaluate each minibatch with a single stacked
        forward/backward; the sequential path below (``num_envs=1``) is the
        original per-transition implementation.
        """
        if self.vectorized:
            return self._update_batched(buffer)
        if self.training_path == "fused" and not self._fused_checked:
            self._fused_checked = True
            self._fused_reason = "sequential (num_envs=1) updates always use the tape path"
            warnings.warn(
                f"training_path='fused' falling back to the tape: {self._fused_reason}",
                RuntimeWarning,
                stacklevel=2,
            )
        buffer.normalized_advantages()
        clusters = self.env.clusters
        policy_losses, value_losses = [], []
        for _ in range(self.config.epochs_per_update):
            batch = buffer.sample(self.config.minibatch_size, self.rng)
            losses = []
            for transition in batch:
                log_prob, entropy, value, _ = self.policy.evaluate_action(
                    self.plan_embeddings,
                    transition.snapshot,
                    transition.action,
                    transition.mask,
                    clusters=clusters,
                )
                ratio = (log_prob - transition.log_prob).exp()
                advantage = transition.advantage
                surrogate1 = ratio * advantage
                surrogate2 = ratio.clip(1.0 - self.config.clip_epsilon, 1.0 + self.config.clip_epsilon) * advantage
                # -min(s1, s2) expressed as max(-s1, -s2) so the tape stays simple.
                clip_term = concatenate(
                    [(surrogate1 * -1.0).reshape(1), (surrogate2 * -1.0).reshape(1)], axis=0
                ).max()
                value_error = value.reshape(1) - Tensor(np.array([transition.value_target]))
                value_loss = (value_error * value_error).sum() * 0.5
                loss = clip_term + self.config.value_coef * value_loss - self.config.entropy_coef * entropy
                losses.append(loss)
                policy_losses.append(float(clip_term.data))
                value_losses.append(float(value_loss.data))
            # One tape node for the whole minibatch mean; the sequential
            # accumulation order inside chained_sum keeps the result (and the
            # backward) bit-identical to the historical per-element chain.
            total = chained_sum(losses) * (1.0 / len(losses))
            self.optimizer.zero_grad()
            total.backward()
            with self.timers.section("optimizer"):
                clip_grad_norm(self.policy.parameters(), self.config.max_grad_norm)
                self.optimizer.step()
        return {
            "policy_loss": float(np.mean(policy_losses)) if policy_losses else 0.0,
            "value_loss": float(np.mean(value_losses)) if value_losses else 0.0,
        }

    def _update_batched(self, buffer: RolloutBuffer) -> dict[str, float]:
        """One PPO update where every minibatch is a single batched forward.

        Computes the same per-sample clipped-surrogate, value and entropy
        terms as the sequential path, but over ``(batch, ...)`` tensors: the
        encoder runs once per minibatch instead of once per transition.
        """
        buffer.normalized_advantages()
        clusters = self.env.clusters
        use_fused = self._use_fused_updates()
        policy_losses, value_losses = [], []
        for _ in range(self.config.epochs_per_update):
            batch = buffer.sample(self.config.minibatch_size, self.rng)
            snapshots = [t.snapshot for t in batch]
            actions = np.array([t.action for t in batch], dtype=np.int64)
            masks = np.stack([t.mask for t in batch], axis=0)
            if use_fused:
                self.optimizer.zero_grad()
                policy_loss_value, value_loss_value = fastgrad.ppo_minibatch_step(
                    self.policy,
                    self.plan_embeddings,
                    snapshots,
                    actions,
                    masks,
                    old_log_probs=np.array([t.log_prob for t in batch]),
                    advantages=np.array([t.advantage for t in batch]),
                    value_targets=np.array([t.value_target for t in batch]),
                    clip_epsilon=self.config.clip_epsilon,
                    value_coef=self.config.value_coef,
                    entropy_coef=self.config.entropy_coef,
                    arena=self._arena,
                )
                with self.timers.section("optimizer"):
                    clip_grad_norm(self.policy.parameters(), self.config.max_grad_norm)
                    self.optimizer.step()
                self._arena.reset()
                policy_losses.append(policy_loss_value)
                value_losses.append(value_loss_value)
                continue
            old_log_probs = Tensor(np.array([t.log_prob for t in batch]))
            advantages = Tensor(np.array([t.advantage for t in batch]))
            value_targets = Tensor(np.array([t.value_target for t in batch]))
            log_probs, entropies, values, _ = self.policy.evaluate_actions_batch(
                self.plan_embeddings, snapshots, actions, masks, clusters=clusters
            )
            ratio = (log_probs - old_log_probs).exp()
            surrogate1 = ratio * advantages
            surrogate2 = ratio.clip(1.0 - self.config.clip_epsilon, 1.0 + self.config.clip_epsilon) * advantages
            clipped = where(surrogate1.data <= surrogate2.data, surrogate1, surrogate2)
            policy_loss = (clipped * -1.0).mean()
            value_error = values - value_targets
            value_loss = (value_error * value_error).mean() * 0.5
            entropy = entropies.mean()
            loss = policy_loss + self.config.value_coef * value_loss - self.config.entropy_coef * entropy
            self.optimizer.zero_grad()
            loss.backward()
            with self.timers.section("optimizer"):
                clip_grad_norm(self.policy.parameters(), self.config.max_grad_norm)
                self.optimizer.step()
            policy_losses.append(float(policy_loss.data))
            value_losses.append(float(value_loss.data))
        return {
            "policy_loss": float(np.mean(policy_losses)) if policy_losses else 0.0,
            "value_loss": float(np.mean(value_losses)) if value_losses else 0.0,
        }

    def auxiliary_phase(self, buffer: RolloutBuffer) -> float:
        """Hook overridden by PPG / IQ-PPO; plain PPO has no auxiliary phase."""
        return 0.0

    # ------------------------------------------------------------------ #
    # Training loop
    # ------------------------------------------------------------------ #
    def train(self, num_updates: int, eval_every: int = 2, eval_rounds: int = 1) -> TrainingHistory:
        """Alternate rollout collection and optimisation for ``num_updates`` rounds."""
        for update_index in range(num_updates):
            with self.timers.section("rollout"):
                buffer = self.collect_rollouts(self.config.rollouts_per_update)
            with self.timers.section("update"):
                losses = self.update(buffer)
            self._updates_since_aux += 1
            aux_loss = 0.0
            if self._updates_since_aux >= self.config.aux_every:
                with self.timers.section("aux"):
                    aux_loss = self.auxiliary_phase(buffer)
                self._updates_since_aux = 0
            self.history.steps.append(self._total_steps)
            self.history.train_rewards.append(float(np.mean(buffer.episode_rewards())))
            self.history.train_makespans.append(float(np.mean(buffer.episode_makespans())))
            self.history.policy_losses.append(losses["policy_loss"])
            self.history.value_losses.append(losses["value_loss"])
            self.history.aux_losses.append(aux_loss)
            if eval_every and (update_index + 1) % eval_every == 0:
                evaluation = self.evaluate(rounds=eval_rounds, greedy=True)
                self.history.eval_makespans.append(evaluation.mean)
        return self.history

    def evaluate(self, rounds: int = 5, greedy: bool = True, base_round_id: int = 10_000) -> StrategyEvaluation:
        """Run the current policy for ``rounds`` evaluation rounds."""
        clusters = self.eval_env.clusters
        evaluation = StrategyEvaluation(strategy=self.algorithm)
        for offset in range(rounds):
            snapshot = self.eval_env.reset(round_id=base_round_id + offset)
            done = False
            while not done:
                mask = self.eval_env.action_mask()
                decision = self.policy.act(
                    self.plan_embeddings,
                    snapshot,
                    mask,
                    self.rng,
                    greedy=greedy,
                    clusters=clusters,
                    backend=self.inference_backend,
                )
                step = self.eval_env.step(decision.action)
                snapshot = step.snapshot
                done = step.done
            evaluation.add(self.eval_env.result().makespan)
        return evaluation

    # ------------------------------------------------------------------ #
    # Shared auxiliary utilities
    # ------------------------------------------------------------------ #
    def _snapshot_old_policy(self, transitions: list[Transition]) -> list[np.ndarray]:
        """Log-probabilities of the current policy before an auxiliary phase starts.

        The auxiliary objectives of PPG and IQ-PPO include a behaviour-cloning
        term ``KL(π_old || π_new)``; π_old is the policy at the moment the
        auxiliary phase begins (Algorithm 1, line 6).
        """
        from ..nn import no_grad

        clusters = self.env.clusters
        if self.vectorized:
            with no_grad():
                _, _, _, log_probs = self.policy.evaluate_actions_batch(
                    self.plan_embeddings,
                    [t.snapshot for t in transitions],
                    np.array([t.action for t in transitions], dtype=np.int64),
                    np.stack([t.mask for t in transitions], axis=0),
                    clusters=clusters,
                )
            return [np.array(row, copy=True) for row in log_probs.data]
        snapshots: list[np.ndarray] = []
        with no_grad():
            for transition in transitions:
                _, _, _, log_probs = self.policy.evaluate_action(
                    self.plan_embeddings,
                    transition.snapshot,
                    transition.action,
                    transition.mask,
                    clusters=clusters,
                )
                snapshots.append(np.array(log_probs.data, copy=True))
        return snapshots
