"""Scheduling gain between query pairs (Section IV-B).

The scheduling gain quantifies how much two queries help (or hurt) each
other when executed concurrently.  For every concurrent execution of queries
``i`` and ``j`` observed in the logs, the acceleration of each query over its
own average execution time is weighted by the fraction of its execution that
overlapped the other query, and by the square root of its average time (the
paper weights complex queries more heavily).  Averaging over all such
executions yields a symmetric gain.

Not every pair appears in the logs, so a small MLP over pairs of QueryFormer
plan embeddings is fitted to the observed gains and used to fill in the
missing entries, which is what lets the clustering generalise.
"""

from __future__ import annotations

import numpy as np

from ..dbms import ExecutionLog
from ..exceptions import SchedulingError
from ..nn import Adam, MLP, Module, Tensor, mse_loss
from ..workloads import BatchQuerySet

__all__ = ["compute_scheduling_gains", "GainModel", "build_gain_matrix"]


def compute_scheduling_gains(log: ExecutionLog, batch: BatchQuerySet) -> tuple[np.ndarray, np.ndarray]:
    """Compute observed pairwise scheduling gains from execution logs.

    Returns ``(gains, observed)``: an ``(n, n)`` symmetric gain matrix and a
    boolean matrix marking which pairs were actually observed concurrently.
    Unobserved pairs hold 0.
    """
    n = len(batch)
    averages = log.average_execution_times()
    gains = np.zeros((n, n), dtype=np.float64)
    observed = np.zeros((n, n), dtype=bool)
    for (query_i, query_j), executions in log.pairwise_overlaps().items():
        avg_i = averages.get(query_i)
        avg_j = averages.get(query_j)
        if not avg_i or not avg_j:
            continue
        weight_i, weight_j = np.sqrt(avg_i), np.sqrt(avg_j)
        terms = []
        for overlap, time_i, time_j in executions:
            if time_i <= 0 or time_j <= 0:
                continue
            acceleration_i = 1.0 - time_i / avg_i
            acceleration_j = 1.0 - time_j / avg_j
            overlap_i = overlap / time_i
            overlap_j = overlap / time_j
            terms.append(
                (overlap_i * acceleration_i * weight_i + overlap_j * acceleration_j * weight_j)
                / (weight_i + weight_j)
            )
        if not terms:
            continue
        value = float(np.mean(terms))
        gains[query_i, query_j] = gains[query_j, query_i] = value
        observed[query_i, query_j] = observed[query_j, query_i] = True
    return gains, observed


class GainModel(Module):
    """Symmetric MLP predicting the scheduling gain of a query pair.

    Symmetry is enforced by evaluating the MLP on both orderings of the pair
    and summing, exactly as in the paper.
    """

    def __init__(self, plan_embedding_dim: int, hidden_dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.net = MLP([2 * plan_embedding_dim, hidden_dim, 1], rng, activation="tanh")

    def forward(self, embedding_i: np.ndarray, embedding_j: np.ndarray) -> Tensor:
        forward_pair = Tensor(np.concatenate([embedding_i, embedding_j]))
        reverse_pair = Tensor(np.concatenate([embedding_j, embedding_i]))
        return (self.net(forward_pair) + self.net(reverse_pair)).reshape(1)

    def fit(
        self,
        embeddings: np.ndarray,
        gains: np.ndarray,
        observed: np.ndarray,
        epochs: int = 30,
        learning_rate: float = 1e-2,
        seed: int = 0,
    ) -> list[float]:
        """Fit the model to the observed entries of the gain matrix."""
        pairs = [(i, j) for i in range(gains.shape[0]) for j in range(i + 1, gains.shape[0]) if observed[i, j]]
        if not pairs:
            raise SchedulingError("gain model needs at least one observed pair to fit")
        optimizer = Adam(self.parameters(), lr=learning_rate)
        rng = np.random.default_rng(seed)
        losses = []
        for _ in range(epochs):
            rng.shuffle(pairs)
            epoch_losses = []
            for i, j in pairs:
                prediction = self.forward(embeddings[i], embeddings[j])
                loss = mse_loss(prediction, np.array([gains[i, j]]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                epoch_losses.append(float(loss.data))
            losses.append(float(np.mean(epoch_losses)))
        return losses

    def predict(self, embedding_i: np.ndarray, embedding_j: np.ndarray) -> float:
        from ..nn import no_grad

        with no_grad():
            return float(self.forward(embedding_i, embedding_j).data[0])


def build_gain_matrix(
    log: ExecutionLog,
    batch: BatchQuerySet,
    plan_embeddings: np.ndarray | None = None,
    hidden_dim: int = 32,
    epochs: int = 30,
    seed: int = 0,
) -> np.ndarray:
    """Observed gains completed with model predictions for unobserved pairs.

    When ``plan_embeddings`` is omitted (or no pair was observed concurrently)
    the unobserved entries stay at zero.
    """
    gains, observed = compute_scheduling_gains(log, batch)
    if plan_embeddings is None or not observed.any():
        return gains
    model = GainModel(plan_embeddings.shape[1], hidden_dim, np.random.default_rng(seed))
    model.fit(plan_embeddings, gains, observed, epochs=epochs, seed=seed)
    completed = gains.copy()
    n = len(batch)
    for i in range(n):
        for j in range(i + 1, n):
            if not observed[i, j]:
                value = model.predict(plan_embeddings[i], plan_embeddings[j])
                completed[i, j] = completed[j, i] = value
    return completed
