"""Phasic Policy Gradient (Cobbe et al., 2021) — the paper's auxiliary baseline.

PPG improves sample utilisation by re-fitting the *value* target through an
auxiliary head attached to the policy network while constraining the policy
with a behaviour-cloning KL term.  Figure 7 of the paper compares IQ-PPO
against PPG; the key difference is that PPG reuses *estimated* state values
(which may be inaccurate) whereas IQ-PPO reuses *measured* individual query
completion times.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, chained_sum, clip_grad_norm, fastgrad, kl_divergence, masked_log_softmax
from .ppo import PPOTrainer
from .rollout import RolloutBuffer

__all__ = ["PPGTrainer"]


class PPGTrainer(PPOTrainer):
    """PPO plus an auxiliary value-prediction phase."""

    algorithm = "ppg"

    def auxiliary_phase(self, buffer: RolloutBuffer) -> float:
        """Fit the auxiliary head to GAE value targets on off-policy data."""
        if self.vectorized:
            return self._auxiliary_phase_batched(buffer)
        transitions = buffer.sample(self.config.minibatch_size, self.rng)
        if not transitions:
            return 0.0
        old_log_probs = self._snapshot_old_policy(transitions)
        clusters = self.env.clusters
        losses = []
        for _ in range(self.config.aux_epochs):
            batch_losses = []
            for transition, old in zip(transitions, old_log_probs):
                representation = self.policy.representation(self.plan_embeddings, transition.snapshot)
                predicted = self.policy.auxiliary_times(representation)
                # PPG's auxiliary target is the state value; we predict it from
                # the super-query channel by averaging the per-query head.
                value_prediction = predicted.mean()
                target = Tensor(np.array(transition.value_target))
                aux_loss = (value_prediction - target) ** 2 * 0.5
                logits = self.policy.action_logits(representation, transition.snapshot, clusters=clusters)
                new_log_probs = masked_log_softmax(logits, transition.mask)
                clone = kl_divergence(old, new_log_probs)
                batch_losses.append(aux_loss + self.config.beta_clone * clone)
            total = chained_sum(batch_losses) * (1.0 / len(batch_losses))
            self.optimizer.zero_grad()
            total.backward()
            clip_grad_norm(self.policy.parameters(), self.config.max_grad_norm)
            self.optimizer.step()
            losses.append(float(total.data))
        return float(np.mean(losses))

    def _auxiliary_phase_batched(self, buffer: RolloutBuffer) -> float:
        """The auxiliary phase with one stacked forward/backward per epoch.

        The objective is the per-sample mean of ``aux + beta * clone``, the
        same quantity the sequential loop accumulates term by term.
        """
        transitions = buffer.sample(self.config.minibatch_size, self.rng)
        if not transitions:
            return 0.0
        old_log_probs = np.stack(self._snapshot_old_policy(transitions), axis=0)
        clusters = self.env.clusters
        snapshots = [t.snapshot for t in transitions]
        masks = np.stack([t.mask for t in transitions], axis=0)
        if self._use_fused_updates():
            losses = []
            for _ in range(self.config.aux_epochs):
                self.optimizer.zero_grad()
                total = fastgrad.ppg_aux_step(
                    self.policy,
                    self.plan_embeddings,
                    snapshots,
                    masks,
                    old_log_probs=old_log_probs,
                    value_targets=np.array([t.value_target for t in transitions]),
                    beta_clone=self.config.beta_clone,
                    arena=self._arena,
                )
                with self.timers.section("optimizer"):
                    clip_grad_norm(self.policy.parameters(), self.config.max_grad_norm)
                    self.optimizer.step()
                self._arena.reset()
                losses.append(total)
            return float(np.mean(losses))
        targets = Tensor(np.array([t.value_target for t in transitions]))
        losses = []
        for _ in range(self.config.aux_epochs):
            representation = self.policy.encode_batch(self.plan_embeddings, snapshots)
            predicted = self.policy.auxiliary_times_batch(representation)
            value_predictions = predicted.mean(axis=-1)
            aux_loss = ((value_predictions - targets) ** 2).mean() * 0.5
            logits = self.policy.action_logits_batch(representation, snapshots, clusters=clusters)
            new_log_probs = masked_log_softmax(logits, masks)
            clone = kl_divergence(old_log_probs, new_log_probs)
            total = aux_loss + self.config.beta_clone * clone
            self.optimizer.zero_grad()
            total.backward()
            clip_grad_norm(self.policy.parameters(), self.config.max_grad_norm)
            self.optimizer.step()
            losses.append(float(total.data))
        return float(np.mean(losses))
