"""Result types shared across schedulers and the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dbms import RoundLog

__all__ = ["SchedulingResult", "StrategyEvaluation"]


@dataclass
class SchedulingResult:
    """Outcome of one scheduling round."""

    strategy: str
    makespan: float
    round_log: RoundLog
    total_reward: float = 0.0

    @property
    def num_queries(self) -> int:
        return len(self.round_log)

    def query_finish_times(self) -> dict[int, float]:
        """Finish time per query id."""
        return {record.query_id: record.finish_time for record in self.round_log}

    def connection_timeline(self) -> dict[int, list[tuple[int, float, float]]]:
        """Per connection, the (query_id, start, end) bars of the Gantt chart (Figure 9)."""
        timeline: dict[int, list[tuple[int, float, float]]] = {}
        for record in sorted(self.round_log, key=lambda r: r.submit_time):
            timeline.setdefault(record.connection, []).append(
                (record.query_id, record.submit_time, record.finish_time)
            )
        return timeline


@dataclass
class StrategyEvaluation:
    """Mean / standard deviation of makespan over ``m`` scheduling rounds.

    These are the paper's efficiency (t̄_ov) and stability (σ_ov) metrics.
    """

    strategy: str
    makespans: list[float] = field(default_factory=list)

    def add(self, makespan: float) -> None:
        self.makespans.append(float(makespan))

    @property
    def mean(self) -> float:
        return float(np.mean(self.makespans)) if self.makespans else float("nan")

    @property
    def std(self) -> float:
        return float(np.std(self.makespans)) if self.makespans else float("nan")

    @property
    def best(self) -> float:
        return float(np.min(self.makespans)) if self.makespans else float("nan")

    @property
    def worst(self) -> float:
        return float(np.max(self.makespans)) if self.makespans else float("nan")

    def __repr__(self) -> str:
        return f"StrategyEvaluation({self.strategy}: {self.mean:.2f} ± {self.std:.2f} over {len(self.makespans)} rounds)"
