"""Rollout storage and generalised advantage estimation.

The buffer stores complete scheduling episodes.  After an episode finishes it
is annotated twice:

* GAE advantages / returns for the PPO objective, and
* the IQ-PPO auxiliary targets: for every decision state, which of the then
  running queries finished first and how much longer it ran — extracted from
  the round's execution log, i.e. the "rich signals of individual query
  completion" the paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dbms import RoundLog
from ..encoder import SchedulingSnapshot
from ..exceptions import SchedulingError

__all__ = ["Transition", "RolloutBuffer"]


@dataclass
class Transition:
    """One decision step of one episode."""

    snapshot: SchedulingSnapshot
    action: int
    log_prob: float
    value: float
    reward: float
    done: bool
    mask: np.ndarray
    time: float
    advantage: float = 0.0
    value_target: float = 0.0
    aux_query_id: int = -1
    aux_target: float = 0.0

    @property
    def has_aux_target(self) -> bool:
        return self.aux_query_id >= 0


@dataclass
class EpisodeRecord:
    """All transitions of one episode plus its outcome."""

    transitions: list[Transition] = field(default_factory=list)
    makespan: float = 0.0
    total_reward: float = 0.0


class RolloutBuffer:
    """Episode-structured storage shared by PPO, PPG and IQ-PPO.

    Transitions from several environments may be collected concurrently: each
    in-flight episode is keyed by ``env_index``, so a vectorized rollout can
    interleave steps from N lockstep envs and still get per-episode GAE and
    auxiliary annotation when each episode closes.  The default
    ``env_index=0`` preserves the original single-env interface.
    """

    def __init__(self, gamma: float = 0.99, gae_lambda: float = 0.95) -> None:
        self.gamma = gamma
        self.gae_lambda = gae_lambda
        self._episodes: list[EpisodeRecord] = []
        self._current: dict[int, list[Transition]] = {}

    # ------------------------------------------------------------------ #
    # Collection
    # ------------------------------------------------------------------ #
    def add(self, transition: Transition, env_index: int = 0) -> None:
        self._current.setdefault(env_index, []).append(transition)

    def finish_episode(self, round_log: RoundLog, makespan: float, env_index: int = 0) -> None:
        """Close the in-flight episode of ``env_index``: GAE + auxiliary targets."""
        transitions = self._current.pop(env_index, [])
        if not transitions:
            raise SchedulingError("finish_episode called with no transitions collected")
        self._compute_gae(transitions)
        self._annotate_auxiliary(transitions, round_log)
        self._episodes.append(
            EpisodeRecord(
                transitions=transitions,
                makespan=makespan,
                total_reward=float(sum(t.reward for t in transitions)),
            )
        )

    def _compute_gae(self, transitions: list[Transition]) -> None:
        advantage = 0.0
        for index in reversed(range(len(transitions))):
            transition = transitions[index]
            next_value = 0.0 if transition.done or index == len(transitions) - 1 else transitions[index + 1].value
            delta = transition.reward + self.gamma * next_value - transition.value
            advantage = delta + self.gamma * self.gae_lambda * (0.0 if transition.done else advantage)
            transition.advantage = advantage
            transition.value_target = advantage + transition.value

    def _annotate_auxiliary(self, transitions: list[Transition], round_log: RoundLog) -> None:
        """Fill in the earliest-finishing running query and its remaining time."""
        finish_times = {record.query_id: record.finish_time for record in round_log}
        for transition in transitions:
            # Single pass over the (tiny) running set; identical to taking
            # min() over the eligible (finish, qid) pairs, without building
            # the intermediate candidate lists on the hot episode-close path.
            best_finish, best_qid = None, -1
            for qid in transition.snapshot.running_ids:
                finish = finish_times.get(qid)
                if finish is None or finish <= transition.time:
                    continue
                if best_finish is None or finish < best_finish or (finish == best_finish and qid < best_qid):
                    best_finish, best_qid = finish, qid
            if best_finish is None:
                continue
            transition.aux_query_id = best_qid
            transition.aux_target = best_finish - transition.time

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def episodes(self) -> list[EpisodeRecord]:
        return list(self._episodes)

    def transitions(self) -> list[Transition]:
        return [t for episode in self._episodes for t in episode.transitions]

    def __len__(self) -> int:
        return sum(len(e.transitions) for e in self._episodes)

    def episode_rewards(self) -> list[float]:
        return [e.total_reward for e in self._episodes]

    def episode_makespans(self) -> list[float]:
        return [e.makespan for e in self._episodes]

    def normalized_advantages(self) -> None:
        """Standardise advantages across the whole buffer (in place)."""
        transitions = self.transitions()
        if not transitions:
            return
        values = np.array([t.advantage for t in transitions])
        mean, std = float(values.mean()), float(values.std())
        for transition in transitions:
            transition.advantage = (transition.advantage - mean) / (std + 1e-8)

    def sample(self, batch_size: int, rng: np.random.Generator) -> list[Transition]:
        """Sample ``batch_size`` transitions uniformly without replacement."""
        transitions = self.transitions()
        if not transitions:
            raise SchedulingError("cannot sample from an empty rollout buffer")
        count = min(batch_size, len(transitions))
        indices = rng.choice(len(transitions), size=count, replace=False)
        return [transitions[i] for i in indices]

    def sample_with_aux(self, batch_size: int, rng: np.random.Generator) -> list[Transition]:
        """Sample transitions that carry an auxiliary target."""
        transitions = [t for t in self.transitions() if t.has_aux_target]
        if not transitions:
            return []
        count = min(batch_size, len(transitions))
        indices = rng.choice(len(transitions), size=count, replace=False)
        return [transitions[i] for i in indices]

    def num_in_flight(self) -> int:
        """Number of episodes currently being collected (vectorized rollouts)."""
        return sum(1 for transitions in self._current.values() if transitions)

    def clear(self) -> None:
        self._episodes.clear()
        self._current.clear()
