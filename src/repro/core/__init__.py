"""BQSched core: environment, RL algorithms, optimisations, facade, baselines."""

from .types import SchedulingResult, StrategyEvaluation
from .knowledge import ExternalKnowledge
from .masking import AdaptiveMask
from .env import SchedulingEnv, SchedulingSession, SessionBackend, StepResult, drive_service
from .cluster_env import ClusterSchedulingEnv, cluster_instance_count
from .vecenv import VectorSchedulingEnv
from .baselines import (
    BaseScheduler,
    FIFOScheduler,
    GreedyCostPlacementScheduler,
    LeastOutstandingWorkScheduler,
    MCFScheduler,
    RandomScheduler,
    RoundRobinPlacementScheduler,
    run_episode,
)
from .policy import ActorCriticNetwork, PolicyDecision
from .rollout import RolloutBuffer, Transition
from .ppo import PPOTrainer, TrainingHistory
from .ppg import PPGTrainer
from .iq_ppo import IQPPOTrainer
from .gain import GainModel, build_gain_matrix, compute_scheduling_gains
from .clustering import QueryClusters, cluster_queries
from .simulator import ConcurrentPredictionModel, LearnedSimulator, SimulatedSession, SimulatorMetrics
from .bqsched import BQSched, LSchedScheduler, RLSchedulerBase

__all__ = [
    "SchedulingResult",
    "StrategyEvaluation",
    "ExternalKnowledge",
    "AdaptiveMask",
    "SchedulingEnv",
    "ClusterSchedulingEnv",
    "cluster_instance_count",
    "drive_service",
    "SchedulingSession",
    "SessionBackend",
    "StepResult",
    "VectorSchedulingEnv",
    "BaseScheduler",
    "FIFOScheduler",
    "MCFScheduler",
    "RandomScheduler",
    "RoundRobinPlacementScheduler",
    "LeastOutstandingWorkScheduler",
    "GreedyCostPlacementScheduler",
    "run_episode",
    "ActorCriticNetwork",
    "PolicyDecision",
    "RolloutBuffer",
    "Transition",
    "PPOTrainer",
    "TrainingHistory",
    "PPGTrainer",
    "IQPPOTrainer",
    "GainModel",
    "build_gain_matrix",
    "compute_scheduling_gains",
    "QueryClusters",
    "cluster_queries",
    "ConcurrentPredictionModel",
    "LearnedSimulator",
    "SimulatedSession",
    "SimulatorMetrics",
    "BQSched",
    "LSchedScheduler",
    "RLSchedulerBase",
]
