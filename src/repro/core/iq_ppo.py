"""IQ-PPO: auxiliary-task-enhanced PPO (Algorithm 1 of the paper).

Batch query scheduling gives the agent only one sparse makespan signal per
episode, but the execution log contains one completion signal per query.
IQ-PPO exploits them: every few PPO iterations it runs an *auxiliary phase*
that trains the shared state representation to predict, for each stored
decision state, the remaining time of the earliest-finishing concurrent
query, while a behaviour-cloning KL term keeps the policy from drifting.
"""

from __future__ import annotations

import numpy as np

from ..nn import Tensor, chained_sum, clip_grad_norm, fastgrad, kl_divergence
from .ppo import PPOTrainer
from .rollout import RolloutBuffer

__all__ = ["IQPPOTrainer"]


class IQPPOTrainer(PPOTrainer):
    """PPO plus the individual-query-completion auxiliary phase."""

    algorithm = "iq-ppo"

    def auxiliary_phase(self, buffer: RolloutBuffer) -> float:
        """Optimise L_joint = L_aux + beta_clone * KL(pi_old || pi_new)."""
        if self.vectorized:
            return self._auxiliary_phase_batched(buffer)
        transitions = buffer.sample_with_aux(self.config.minibatch_size, self.rng)
        if not transitions:
            return 0.0
        old_log_probs = self._snapshot_old_policy(transitions)
        time_scale = self.policy.state_encoder.run_state_featurizer.time_scale
        losses = []
        for _ in range(self.config.aux_epochs):
            batch_losses = []
            for transition, old in zip(transitions, old_log_probs):
                predicted, new_log_probs = self.policy.evaluate_auxiliary(
                    self.plan_embeddings,
                    transition.snapshot,
                    transition.aux_query_id,
                    transition.mask,
                    clusters=self.env.clusters,
                )
                target = Tensor(np.array(transition.aux_target / time_scale))
                aux_loss = (predicted - target) ** 2 * 0.5
                clone = kl_divergence(old, new_log_probs)
                batch_losses.append(aux_loss + self.config.beta_clone * clone)
            total = chained_sum(batch_losses) * (1.0 / len(batch_losses))
            self.optimizer.zero_grad()
            total.backward()
            clip_grad_norm(self.policy.parameters(), self.config.max_grad_norm)
            self.optimizer.step()
            losses.append(float(total.data))
        return float(np.mean(losses))

    def _auxiliary_phase_batched(self, buffer: RolloutBuffer) -> float:
        """The auxiliary phase with one stacked forward/backward per epoch."""
        transitions = buffer.sample_with_aux(self.config.minibatch_size, self.rng)
        if not transitions:
            return 0.0
        old_log_probs = np.stack(self._snapshot_old_policy(transitions), axis=0)
        time_scale = self.policy.state_encoder.run_state_featurizer.time_scale
        snapshots = [t.snapshot for t in transitions]
        query_ids = np.array([t.aux_query_id for t in transitions], dtype=np.int64)
        masks = np.stack([t.mask for t in transitions], axis=0)
        if self._use_fused_updates():
            losses = []
            for _ in range(self.config.aux_epochs):
                self.optimizer.zero_grad()
                total = fastgrad.iq_ppo_aux_step(
                    self.policy,
                    self.plan_embeddings,
                    snapshots,
                    query_ids,
                    masks,
                    old_log_probs=old_log_probs,
                    time_targets=np.array([t.aux_target / time_scale for t in transitions]),
                    beta_clone=self.config.beta_clone,
                    arena=self._arena,
                )
                with self.timers.section("optimizer"):
                    clip_grad_norm(self.policy.parameters(), self.config.max_grad_norm)
                    self.optimizer.step()
                self._arena.reset()
                losses.append(total)
            return float(np.mean(losses))
        targets = Tensor(np.array([t.aux_target / time_scale for t in transitions]))
        losses = []
        for _ in range(self.config.aux_epochs):
            predicted, new_log_probs = self.policy.evaluate_auxiliary_batch(
                self.plan_embeddings, snapshots, query_ids, masks, clusters=self.env.clusters
            )
            aux_loss = ((predicted - targets) ** 2).mean() * 0.5
            clone = kl_divergence(old_log_probs, new_log_probs)
            total = aux_loss + self.config.beta_clone * clone
            self.optimizer.zero_grad()
            total.backward()
            clip_grad_norm(self.policy.parameters(), self.config.max_grad_norm)
            self.optimizer.step()
            losses.append(float(total.data))
        return float(np.mean(losses))
