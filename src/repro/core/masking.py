"""Adaptive masking of the action space (Section IV-A).

Different queries prefer different resources: giving extra parallel workers
to an I/O-bound query, or extra working memory to a query that never spills,
wastes exploration on configurations that cannot help.  The mask keeps, for
every query, only the configurations whose measured improvement over the
cheapest configuration exceeds the thresholds in
:class:`repro.config.MaskingConfig`; masked logits are replaced with a large
negative constant so their softmax probability is numerically zero.
"""

from __future__ import annotations

import numpy as np

from ..config import MaskingConfig
from ..dbms import ConfigurationSpace
from ..exceptions import SchedulingError
from ..perf import PerformanceEstimator
from ..workloads import BatchQuerySet

__all__ = ["AdaptiveMask"]


class AdaptiveMask:
    """Per-query allowed running-parameter configurations."""

    def __init__(
        self,
        num_queries: int,
        num_configs: int,
        allowed: dict[int, list[int]],
        mask_value: float = -1e8,
    ) -> None:
        if num_queries < 1 or num_configs < 1:
            raise SchedulingError("mask dimensions must be positive")
        for query_id, configs in allowed.items():
            if not configs:
                raise SchedulingError(f"query {query_id} has no allowed configuration")
        self.num_queries = num_queries
        self.num_configs = num_configs
        self.mask_value = mask_value
        self._allowed = {query_id: sorted(set(configs)) for query_id, configs in allowed.items()}
        # Dense (num_queries, num_configs) view of the allowed sets; queries
        # absent from ``allowed`` default to every configuration.
        self._allowed_matrix = np.ones((num_queries, num_configs), dtype=bool)
        for query_id, configs in self._allowed.items():
            if 0 <= query_id < num_queries:
                self._allowed_matrix[query_id] = False
                self._allowed_matrix[query_id, configs] = True

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        batch: BatchQuerySet,
        knowledge: PerformanceEstimator,
        config_space: ConfigurationSpace,
        config: MaskingConfig,
    ) -> "AdaptiveMask":
        """Derive the mask from a performance estimator.

        ``knowledge`` is any :class:`~repro.perf.PerformanceEstimator` — the
        probe/log-derived :class:`~repro.core.knowledge.ExternalKnowledge` or
        a learned :class:`~repro.perf.PerformanceModel` — so masking gains
        come from the same interface as every other cost estimate.
        Configuration 0 (fewest resources) is always allowed; a richer
        configuration stays allowed only if it improves the query's isolated
        execution time by at least the absolute *and* relative thresholds.
        """
        allowed: dict[int, list[int]] = {}
        for query in batch:
            if not config.enabled:
                allowed[query.query_id] = list(range(len(config_space)))
                continue
            profile = knowledge.improvement_profile(query.query_id)
            keep = [0]
            for index in range(1, len(config_space)):
                absolute, relative = profile.get(index, (0.0, 0.0))
                if absolute >= config.min_absolute_gain and relative >= config.min_relative_gain:
                    keep.append(index)
            allowed[query.query_id] = keep
        return cls(
            num_queries=len(batch),
            num_configs=len(config_space),
            allowed=allowed,
            mask_value=config.mask_value,
        )

    @classmethod
    def unmasked(cls, num_queries: int, num_configs: int) -> "AdaptiveMask":
        """A mask that allows every configuration for every query."""
        return cls(
            num_queries=num_queries,
            num_configs=num_configs,
            allowed={i: list(range(num_configs)) for i in range(num_queries)},
        )

    def extended(self, num_queries: int) -> "AdaptiveMask":
        """Grow the mask to a larger query set (streaming scenario).

        Queries beyond the ones the mask was built from — e.g. late arrivals
        that were never probed in isolation — default to every configuration,
        exactly like queries absent from ``allowed``.  The known queries keep
        their pruned sets.  Shrinking is not allowed.
        """
        if num_queries < self.num_queries:
            raise SchedulingError(
                f"cannot shrink mask from {self.num_queries} to {num_queries} queries"
            )
        if num_queries == self.num_queries:
            return self
        return AdaptiveMask(
            num_queries=num_queries,
            num_configs=self.num_configs,
            allowed={query_id: list(configs) for query_id, configs in self._allowed.items()},
            mask_value=self.mask_value,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def allowed_configs(self, query_id: int) -> list[int]:
        """Allowed configuration indices for ``query_id``."""
        return list(self._allowed.get(query_id, range(self.num_configs)))

    def is_allowed(self, query_id: int, config_index: int) -> bool:
        return config_index in self._allowed.get(query_id, range(self.num_configs))

    def masked_fraction(self) -> float:
        """Fraction of (query, configuration) pairs pruned by the mask."""
        total = self.num_queries * self.num_configs
        kept = sum(len(configs) for configs in self._allowed.values())
        kept += (self.num_queries - len(self._allowed)) * self.num_configs
        return 1.0 - kept / total

    def action_mask(self, selectable_ids: "list[int]") -> np.ndarray:
        """Boolean mask over the flat action space ``query_id * num_configs + config``.

        Only queries in ``selectable_ids`` (the pending ones) are unmasked,
        and only at their allowed configurations.
        """
        mask = np.zeros((self.num_queries, self.num_configs), dtype=bool)
        ids = np.fromiter(selectable_ids, dtype=np.int64)
        if ids.size:
            mask[ids] = self._allowed_matrix[ids]
        return mask.reshape(self.num_queries * self.num_configs)
