"""Heuristic scheduling baselines: Random, FIFO, MCF.

These are the strategies pipeline tools such as DBT use today (Section I).
They pick the next query to submit without modelling resource sharing or
contention, and always use the default running parameters — exactly how a
parameter-oblivious pipeline runner behaves.
"""

from __future__ import annotations

import abc

import numpy as np

from ..dbms.cluster import next_instance_in_rotation
from ..encoder import SchedulingSnapshot
from ..exceptions import SchedulingError
from ..perf import PerformanceEstimator
from .cluster_env import ClusterSchedulingEnv, greedy_cost_instance
from .env import SchedulingEnv
from .types import SchedulingResult, StrategyEvaluation

__all__ = [
    "BaseScheduler",
    "RandomScheduler",
    "FIFOScheduler",
    "MCFScheduler",
    "RoundRobinPlacementScheduler",
    "LeastOutstandingWorkScheduler",
    "GreedyCostPlacementScheduler",
    "run_episode",
]


class BaseScheduler(abc.ABC):
    """Common interface of every scheduling strategy in the repository."""

    name: str = "base"

    @abc.abstractmethod
    def select_action(self, env: SchedulingEnv, snapshot: SchedulingSnapshot) -> int:
        """Return the flat action to take in ``env`` given the current ``snapshot``."""

    def on_round_start(self, env: SchedulingEnv) -> None:
        """Hook called after ``env.reset``; heuristics that precompute an order use it."""

    def run_round(self, env: SchedulingEnv, round_id: int | None = None) -> SchedulingResult:
        """Schedule one complete round and return the result."""
        snapshot = env.reset(round_id=round_id, strategy=self.name)
        self.on_round_start(env)
        done = False
        total_reward = 0.0
        while not done:
            action = self.select_action(env, snapshot)
            step = env.step(action)
            snapshot = step.snapshot
            total_reward += step.reward
            done = step.done
        result = env.result()
        result.strategy = self.name
        result.total_reward = total_reward
        return result

    def evaluate(self, env: SchedulingEnv, rounds: int = 5, base_round_id: int = 0) -> StrategyEvaluation:
        """Run ``rounds`` scheduling rounds and collect efficiency / stability metrics."""
        if rounds < 1:
            raise SchedulingError("rounds must be >= 1")
        evaluation = StrategyEvaluation(strategy=self.name)
        for offset in range(rounds):
            result = self.run_round(env, round_id=base_round_id + offset)
            evaluation.add(result.makespan)
        return evaluation


def run_episode(env: SchedulingEnv, scheduler: BaseScheduler, round_id: int | None = None) -> SchedulingResult:
    """Convenience wrapper mirroring :meth:`BaseScheduler.run_round`."""
    return scheduler.run_round(env, round_id=round_id)


class _HeuristicScheduler(BaseScheduler):
    """Shared machinery: pick a pending query by some key, default configuration."""

    def _pending_slots(self, env: SchedulingEnv, snapshot: SchedulingSnapshot) -> list[int]:
        if env.cluster_mode:
            raise SchedulingError(f"{self.name} operates on query-level environments only")
        if isinstance(env, ClusterSchedulingEnv) and env.num_instances > 1:
            raise SchedulingError(
                f"{self.name} is placement-oblivious; use a placement-aware scheduler "
                "(RoundRobinPlacementScheduler & friends) on multi-instance fleets"
            )
        pending = snapshot.pending_ids
        if not pending:
            raise SchedulingError("no pending query to schedule")
        return pending

    def _default_config(self, env: SchedulingEnv, query_id: int) -> int:
        allowed = env.mask.allowed_configs(query_id)
        return allowed[0] if allowed else 0


class RandomScheduler(_HeuristicScheduler):
    """Submit pending queries in uniformly random order."""

    name = "Random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def select_action(self, env: SchedulingEnv, snapshot: SchedulingSnapshot) -> int:
        pending = self._pending_slots(env, snapshot)
        query_id = int(self._rng.choice(pending))
        return env.encode_action(query_id, self._default_config(env, query_id))


class FIFOScheduler(_HeuristicScheduler):
    """Submit queries in their original (template) order — what DBT does."""

    name = "FIFO"

    def select_action(self, env: SchedulingEnv, snapshot: SchedulingSnapshot) -> int:
        pending = self._pending_slots(env, snapshot)
        query_id = min(pending)
        return env.encode_action(query_id, self._default_config(env, query_id))


class MCFScheduler(_HeuristicScheduler):
    """Maximum Cost First: submit the slowest pending query first.

    Costs come from the environment's external knowledge (log-derived average
    execution times), which mirrors extracting them from historical logs.
    """

    name = "MCF"

    def select_action(self, env: SchedulingEnv, snapshot: SchedulingSnapshot) -> int:
        pending = self._pending_slots(env, snapshot)
        query_id = max(pending, key=lambda qid: env.knowledge.average_time(qid))
        return env.encode_action(query_id, self._default_config(env, query_id))


class _PlacementScheduler(_HeuristicScheduler):
    """Shared machinery of the cluster placement baselines.

    Query *ordering* follows the pipeline default (FIFO, or MCF when
    ``order = "mcf"``); the subclass decides the *placement* among the
    instances that currently have an idle connection.  This is exactly how a
    placement heuristic bolts onto a parameter-oblivious pipeline runner.

    Cost estimates resolve through :meth:`_estimator`: the environment's
    log/probe-derived knowledge by default, or any
    :class:`~repro.perf.PerformanceEstimator` (e.g. a learned
    :class:`~repro.perf.PerformanceModel`) supplied by the subclass.
    """

    order = "fifo"
    #: Optional estimator overriding the environment's external knowledge.
    perf: "PerformanceEstimator | None" = None

    def _require_cluster(self, env: SchedulingEnv) -> ClusterSchedulingEnv:
        if not isinstance(env, ClusterSchedulingEnv):
            raise SchedulingError(f"{self.name} schedules over a ClusterSchedulingEnv")
        if env.cluster_mode:
            raise SchedulingError(
                f"{self.name} places individual queries; a gain-clustered fleet environment "
                "schedules (cluster, instance, configuration) actions"
            )
        return env

    def _estimator(self, env: SchedulingEnv) -> PerformanceEstimator:
        return self.perf if self.perf is not None else env.knowledge

    def _pick_query(self, env: ClusterSchedulingEnv, snapshot: SchedulingSnapshot) -> int:
        pending = snapshot.pending_ids
        if not pending:
            raise SchedulingError("no pending query to schedule")
        if self.order == "mcf":
            estimator = self._estimator(env)
            return max(pending, key=lambda qid: estimator.average_time(qid))
        return min(pending)

    def _pick_instance(self, env: ClusterSchedulingEnv, query_id: int, available: list[int]) -> int:
        raise NotImplementedError

    def select_action(self, env: SchedulingEnv, snapshot: SchedulingSnapshot) -> int:
        cluster_env = self._require_cluster(env)
        available = cluster_env.available_instances()
        if not available:
            raise SchedulingError("no instance has an idle connection")
        query_id = self._pick_query(cluster_env, snapshot)
        instance = self._pick_instance(cluster_env, query_id, available)
        return cluster_env.encode_placement(query_id, instance, self._default_config(env, query_id))


class RoundRobinPlacementScheduler(_PlacementScheduler):
    """Rotate submissions across instances, skipping saturated ones."""

    name = "RR-placement"

    def __init__(self) -> None:
        self._cursor = 0

    def on_round_start(self, env: SchedulingEnv) -> None:
        self._cursor = 0

    def _pick_instance(self, env: ClusterSchedulingEnv, query_id: int, available: list[int]) -> int:
        instance = next_instance_in_rotation(available, self._cursor, env.num_instances)
        self._cursor = (instance + 1) % env.num_instances
        return instance


class LeastOutstandingWorkScheduler(_PlacementScheduler):
    """Place on the instance with the least expected outstanding work.

    Outstanding work is measured in reference-instance seconds (log-derived
    expected times minus elapsed), i.e. the heuristic balances *work*, not
    hardware-adjusted completion time — the classic load balancer that a
    heterogeneous fleet defeats.
    """

    name = "LOW-placement"

    def _pick_instance(self, env: ClusterSchedulingEnv, query_id: int, available: list[int]) -> int:
        outstanding = env.instance_outstanding_work()
        return min(available, key=lambda index: (outstanding[index], index))


class GreedyCostPlacementScheduler(_PlacementScheduler):
    """Greedy expected-completion placement, MCF query order.

    Picks the instance minimising ``(outstanding + expected) / speed`` — the
    strongest myopic heuristic: speed-aware, load-aware, but blind to data
    sharing, buffer warmth and long-tail interactions.

    Costs come from the :class:`~repro.perf.PerformanceEstimator` interface:
    by default the environment's log/probe knowledge, or pass a learned
    :class:`~repro.perf.PerformanceModel` as ``perf`` to price queries from
    the trained prediction model instead of private engine estimates.
    """

    name = "GreedyCost-placement"
    order = "mcf"

    def __init__(self, perf: "PerformanceEstimator | None" = None) -> None:
        self.perf = perf

    def _pick_instance(self, env: ClusterSchedulingEnv, query_id: int, available: list[int]) -> int:
        return greedy_cost_instance(
            available,
            env.instance_outstanding_work(),
            env.instance_speed_factors(),
            self._estimator(env).average_time(query_id),
        )
