"""Scheduling-gain based query clustering (Section IV-B).

With hundreds of batch queries the scheduling space explodes; BQSched groups
queries with high mutual scheduling gain into clusters using average-linkage
agglomerative clustering over the gain matrix, and the RL scheduler then
picks *clusters* instead of individual queries.  Inside a cluster, queries
are submitted back-to-back (ordered by a simple heuristic), which is safe
precisely because intra-cluster gains are high.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import squareform

from ..exceptions import SchedulingError
from ..workloads import BatchQuerySet
from .knowledge import ExternalKnowledge

__all__ = ["QueryClusters", "cluster_queries"]


class QueryClusters:
    """Cluster assignment plus the intra-cluster submission order."""

    def __init__(self, assignments: np.ndarray, intra_orders: list[list[int]]) -> None:
        if len(intra_orders) == 0:
            raise SchedulingError("clustering produced no clusters")
        self.assignments = np.asarray(assignments, dtype=np.int64)
        self._members = [list(order) for order in intra_orders]

    @property
    def num_clusters(self) -> int:
        return len(self._members)

    def members(self, cluster_id: int) -> list[int]:
        """Query ids belonging to ``cluster_id`` (in intra-cluster order)."""
        return list(self._members[cluster_id])

    def intra_order(self, cluster_id: int) -> list[int]:
        """Submission order of the cluster's queries."""
        return list(self._members[cluster_id])

    def cluster_of(self, query_id: int) -> int:
        return int(self.assignments[query_id])

    def sizes(self) -> list[int]:
        return [len(members) for members in self._members]

    def __repr__(self) -> str:
        return f"QueryClusters(num_clusters={self.num_clusters}, sizes={self.sizes()})"


def cluster_queries(
    batch: BatchQuerySet,
    gain_matrix: np.ndarray,
    num_clusters: int,
    knowledge: ExternalKnowledge | None = None,
    intra_cluster_order: str = "mcf",
) -> QueryClusters:
    """Agglomerative average-linkage clustering on the scheduling-gain matrix.

    The gain is a *similarity*; it is converted into a distance by
    subtracting from the maximum observed gain.  ``num_clusters`` trades
    scheduling granularity against training cost (Figure 8).
    """
    n = len(batch)
    if gain_matrix.shape != (n, n):
        raise SchedulingError(f"gain matrix shape {gain_matrix.shape} does not match batch size {n}")
    if not 1 <= num_clusters <= n:
        raise SchedulingError(f"num_clusters must be in [1, {n}], got {num_clusters}")

    if num_clusters == n:
        assignments = np.arange(n)
    else:
        symmetric = (gain_matrix + gain_matrix.T) / 2.0
        distance = symmetric.max() - symmetric
        np.fill_diagonal(distance, 0.0)
        condensed = squareform(distance, checks=False)
        tree = linkage(condensed, method="average")
        assignments = fcluster(tree, t=num_clusters, criterion="maxclust") - 1

    cluster_ids = sorted(set(int(c) for c in assignments))
    remap = {cluster: index for index, cluster in enumerate(cluster_ids)}
    assignments = np.array([remap[int(c)] for c in assignments], dtype=np.int64)

    members: list[list[int]] = [[] for _ in range(len(cluster_ids))]
    for query in batch:
        members[assignments[query.query_id]].append(query.query_id)

    intra_orders = []
    for cluster_members in members:
        ordered = _order_members(cluster_members, knowledge, intra_cluster_order)
        intra_orders.append(ordered)
    return QueryClusters(assignments=assignments, intra_orders=intra_orders)


def _order_members(members: list[int], knowledge: ExternalKnowledge | None, order: str) -> list[int]:
    if order == "fifo" or knowledge is None:
        return sorted(members)
    if order == "mcf":
        return sorted(members, key=lambda qid: knowledge.average_time(qid), reverse=True)
    raise SchedulingError(f"unknown intra-cluster order {order!r}")
