"""Vectorized scheduling environment: N independent sessions in lockstep.

:class:`VectorSchedulingEnv` drives N :class:`~repro.core.env.SchedulingEnv`
instances over the same batch query set and backend.  Sub-envs share the
immutable components (batch, configuration space, knowledge, mask, clusters)
but each owns its live session, so episodes progress independently.  The
vector env exposes stacked action masks — one ``(k, action_dim)`` boolean
array per decision — which is what feeds the policy's single batched forward
pass (:meth:`ActorCriticNetwork.act_batch`) instead of N sequential ones.

Episodes finish at different step counts, so callers track the set of
*active* sub-env indices and shrink the stacked calls as sessions complete
(see :meth:`PPOTrainer._collect_rollouts_vectorized`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..encoder import SchedulingSnapshot
from ..exceptions import SchedulingError
from .env import SchedulingEnv, StepResult
from .types import SchedulingResult

__all__ = ["VectorSchedulingEnv"]


class VectorSchedulingEnv:
    """N lockstep :class:`SchedulingEnv` instances with stacked action masks."""

    def __init__(self, envs: Sequence[SchedulingEnv]) -> None:
        if not envs:
            raise SchedulingError("VectorSchedulingEnv needs at least one sub-env")
        action_dims = {env.action_dim for env in envs}
        if len(action_dims) != 1:
            raise SchedulingError(f"sub-envs disagree on action_dim: {sorted(action_dims)}")
        batch_sizes = {len(env.batch) for env in envs}
        if len(batch_sizes) != 1:
            raise SchedulingError(f"sub-envs disagree on batch size: {sorted(batch_sizes)}")
        self.envs = list(envs)

    @classmethod
    def from_template(cls, env: SchedulingEnv, num_envs: int) -> "VectorSchedulingEnv":
        """Clone ``env`` into ``num_envs`` sub-envs sharing its components.

        The backend is shared too: every session it opens is an independent
        object, so concurrent rounds do not interfere (this holds for both the
        real :class:`~repro.dbms.DatabaseEngine` and the learned simulator).
        Each sub-env wraps the backend in its own single-tenant runtime, so a
        template whose backend is already a shared-runtime tenant cannot be
        cloned (the clones would fight over one tenant's round).
        """
        if num_envs < 1:
            raise SchedulingError("num_envs must be >= 1")
        from ..runtime import RuntimeTenant

        if isinstance(env.backend, RuntimeTenant):
            raise SchedulingError("cannot clone an environment bound to a shared runtime tenant")
        env_cls = type(env)
        envs = [
            env_cls(
                batch=env.batch,
                backend=env.backend,
                scheduler_config=env.scheduler_config,
                config_space=env.config_space,
                knowledge=env.knowledge,
                mask=env.mask,
                clusters=env.clusters,
                strategy_name=env.strategy_name,
                arrivals=env.arrivals,
            )
            for _ in range(num_envs)
        ]
        return cls(envs)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_envs(self) -> int:
        return len(self.envs)

    @property
    def action_dim(self) -> int:
        return self.envs[0].action_dim

    @property
    def clusters(self):
        return self.envs[0].clusters

    def __len__(self) -> int:
        return len(self.envs)

    # ------------------------------------------------------------------ #
    # Lockstep episode control
    # ------------------------------------------------------------------ #
    def reset_at(self, index: int, round_id: int | None = None, strategy: str | None = None) -> SchedulingSnapshot:
        """Start a new round in sub-env ``index`` and return its snapshot."""
        return self.envs[index].reset(round_id=round_id, strategy=strategy)

    def reset_all(self, round_ids: Sequence[int] | None = None) -> list[SchedulingSnapshot]:
        """Start a new round in every sub-env; ``round_ids`` aligns by index."""
        if round_ids is not None and len(round_ids) != self.num_envs:
            raise SchedulingError("round_ids must provide one id per sub-env")
        return [
            env.reset(round_id=None if round_ids is None else round_ids[i])
            for i, env in enumerate(self.envs)
        ]

    def masks_for(self, indices: Sequence[int] | None = None) -> np.ndarray:
        """Stacked boolean action masks ``(k, action_dim)`` for ``indices``.

        With ``indices=None`` every sub-env contributes a row.
        """
        selected = range(self.num_envs) if indices is None else indices
        return np.stack([self.envs[i].action_mask() for i in selected], axis=0)

    def step_at(self, index: int, action: int) -> StepResult:
        """Apply one decision in sub-env ``index``."""
        return self.envs[index].step(action)

    def step_many(self, indices: Sequence[int], actions: Sequence[int]) -> list[StepResult]:
        """Apply one decision per listed sub-env (aligned by position).

        Simulator-backed, non-cluster sessions take the lockstep path: the
        clock advances of all sub-envs are interleaved, and simulator
        predictions needed in the same round are grouped by concurrency
        degree and served by ONE batched model forward
        (:meth:`ConcurrentPredictionModel.predict_batched`) — the scalar
        engine necessarily runs them one at a time.  Other backends (the
        real DBMS engine) and cluster mode fall back to per-env steps.
        """
        if len(indices) != len(actions):
            raise SchedulingError("indices and actions must align")
        # Even a single remaining active env stays on the lockstep path, so a
        # session's dynamics never depend on how many peer episodes happen to
        # still be running (batched predictions preserve the input dtype and
        # match the sequential path bit-for-bit).  Sessions opt in
        # via ``supports_lockstep``: simulator-backed single-tenant closed
        # rounds only — a shared multi-tenant clock or scheduled arrivals
        # cannot be batched across environments.
        if self.clusters is None and all(
            getattr(self.envs[i].session, "supports_lockstep", False) for i in indices
        ):
            return self._step_many_simulated(indices, actions)
        return [self.envs[i].step(action) for i, action in zip(indices, actions)]

    def _step_many_simulated(self, indices: Sequence[int], actions: Sequence[int]) -> list[StepResult]:
        envs = self.envs
        time_before = [envs[i].begin_step(action) for i, action in zip(indices, actions)]
        advancing = [i for i in indices if envs[i].needs_advance()]
        while advancing:
            groups: dict[tuple[int, int], list] = {}
            for i in advancing:
                session = envs[i].session
                states, features = session.advance_features()
                key = (id(session.simulator.model), features.shape[0])
                groups.setdefault(key, []).append((i, states, features))
            for items in groups.values():
                model = envs[items[0][0]].session.simulator.model
                # Singleton groups go through predict_batched too, so a
                # session's dynamics never depend on how many other sessions
                # happened to share its concurrency degree this round.
                stacked = np.stack([features for _, _, features in items], axis=0)
                logits, times = model.predict_batched(stacked)
                for (index, states, _), logit_row, time_row in zip(items, logits, times):
                    envs[index].session.apply_advance(states, logit_row, time_row)
            advancing = [i for i in advancing if envs[i].needs_advance()]
        return [envs[i].finish_step(before) for i, before in zip(indices, time_before)]

    def result_at(self, index: int) -> SchedulingResult:
        """Finished-round result of sub-env ``index``."""
        return self.envs[index].result()
