"""External knowledge extracted from logs and isolated probes.

Because batch query pipelines run periodically, historical logs contain per-
query execution times under the configurations that were actually used, and
an operator can additionally probe each query in isolation under every
configuration.  The paper uses this knowledge for three things, all served by
:class:`ExternalKnowledge`:

* the MCF heuristic's cost ordering,
* the running-state feature ``t_i | R_i`` (expected time under a config),
* adaptive masking of inefficient parameter configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


from ..dbms import ConfigurationSpace, DatabaseEngine, ExecutionLog
from ..exceptions import SchedulingError
from ..workloads import BatchQuerySet

__all__ = ["ExternalKnowledge"]


@dataclass
class ExternalKnowledge:
    """Per-query execution-time knowledge.

    ``config_times[query_id][config_index]`` is the expected execution time
    of the query under that configuration; ``average_times[query_id]`` is the
    overall average observed in logs (falling back to the default-config
    probe when a query never appeared in logs).
    """

    config_space: ConfigurationSpace
    config_times: dict[int, dict[int, float]] = field(default_factory=dict)
    average_times: dict[int, float] = field(default_factory=dict)
    #: Bumped on every log-driven refresh so consumers that bake expected
    #: times into derived caches (e.g. simulator feature rows) can tell when
    #: their entries went stale.
    version: int = 0

    # ------------------------------------------------------------------ #
    # Builders
    # ------------------------------------------------------------------ #
    @classmethod
    def from_probes(
        cls,
        engine: DatabaseEngine,
        batch: BatchQuerySet,
        config_space: ConfigurationSpace,
    ) -> "ExternalKnowledge":
        """Measure every query in isolation under every configuration.

        This is the "collect query performance under various parameter
        configurations as external knowledge" step of Section IV-A.
        """
        knowledge = cls(config_space=config_space)
        for query in batch:
            per_config: dict[int, float] = {}
            for index, params in enumerate(config_space):
                per_config[index] = engine.estimate_isolated_time(query, params)
            knowledge.config_times[query.query_id] = per_config
            knowledge.average_times[query.query_id] = per_config[0]
        return knowledge

    def update_from_log(self, log: ExecutionLog) -> None:
        """Refresh average times (and per-config times) from execution logs."""
        self.version += 1
        self.average_times.update(log.average_execution_times())
        for query_id, by_config in log.execution_times_by_configuration().items():
            bucket = self.config_times.setdefault(query_id, {})
            for params, mean_time in by_config.items():
                bucket[self.config_space.index_of(params)] = mean_time

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def expected_time(self, query_id: int, config_index: int) -> float:
        """Expected execution time of ``query_id`` under configuration ``config_index``."""
        per_config = self.config_times.get(query_id)
        if per_config and config_index in per_config:
            return per_config[config_index]
        if query_id in self.average_times:
            return self.average_times[query_id]
        raise SchedulingError(f"no knowledge recorded for query {query_id}")

    def average_time(self, query_id: int) -> float:
        """Average execution time of ``query_id`` (MCF's cost)."""
        if query_id in self.average_times:
            return self.average_times[query_id]
        return self.expected_time(query_id, 0)

    def mcf_order(self, batch: BatchQuerySet) -> list[int]:
        """Query ids ordered by decreasing average execution time."""
        return sorted(
            (q.query_id for q in batch),
            key=lambda query_id: self.average_time(query_id),
            reverse=True,
        )

    def best_configuration(self, query_id: int) -> int:
        """Configuration index with the lowest expected time for ``query_id``."""
        per_config = self.config_times.get(query_id)
        if not per_config:
            return 0
        return min(per_config, key=per_config.get)

    def improvement_profile(self, query_id: int) -> dict[int, tuple[float, float]]:
        """Absolute / relative gain of each configuration over the cheapest one.

        Returns a mapping ``config_index -> (absolute_gain, relative_gain)``
        where gains compare against configuration 0 (fewest resources).
        """
        per_config = self.config_times.get(query_id, {})
        if 0 not in per_config:
            return {}
        baseline = per_config[0]
        profile: dict[int, tuple[float, float]] = {}
        for index, time in per_config.items():
            absolute = baseline - time
            relative = absolute / baseline if baseline > 0 else 0.0
            profile[index] = (absolute, relative)
        return profile
