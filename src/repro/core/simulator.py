"""Learned incremental simulator for concurrent query execution (Section IV-C).

Sampling scheduling episodes against a real DBMS is slow, so BQSched trains a
simulator from historical logs and pre-trains the RL policy against it.  The
simulator answers one question: *given the current set of concurrent queries
(and how long each has been running), which finishes first and when?*

The prediction stack itself — feature pipeline, multitask model, training
and continual fine-tuning — lives in the :mod:`repro.perf` layer;
:class:`LearnedSimulator` is the single-engine wrapper that additionally
speaks the ``SessionBackend`` protocol (its fleet counterpart is
:class:`repro.perf.SimulatedCluster`).  Online logs produced during
deployment can be fed back through :meth:`LearnedSimulator.update_from_log`
to fine-tune the prediction model incrementally (hence *incremental*
simulator).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import SimulatorConfig
from ..dbms import ConfigurationSpace, ExecutionLog, QueryExecutionRecord, RoundLog, RunningParameters
from ..dbms.engine import CompletionEvent, RunningQueryState
from ..dbms.soa import SessionStateArrays
from ..exceptions import SimulationError
from ..nn import Adam
from ..perf import ConcurrentPredictionModel, PerformanceModel, SimulatorMetrics
from ..perf.features import MIN_REMAINING as _MIN_REMAINING
from ..perf.features import TIME_SCALE as _TIME_SCALE
from ..workloads import BatchQuerySet, Query
from .knowledge import ExternalKnowledge

__all__ = ["ConcurrentPredictionModel", "LearnedSimulator", "SimulatedSession", "SimulatorMetrics"]


class LearnedSimulator:
    """The single-engine DBMS stand-in the scheduler pre-trains against.

    A thin backend facade over a :class:`repro.perf.PerformanceModel`
    (exposed as :attr:`perf`): featurisation, training, fine-tuning and
    evaluation all delegate to it, and :meth:`new_session` opens simulated
    rounds that consume its predictions.
    """

    def __init__(
        self,
        batch: BatchQuerySet,
        plan_embeddings: np.ndarray,
        knowledge: ExternalKnowledge,
        config_space: ConfigurationSpace,
        config: SimulatorConfig,
        seed: int = 0,
        training_path: str = "tape",
    ) -> None:
        self.batch = batch
        self.plan_embeddings = plan_embeddings
        self.knowledge = knowledge
        self.config_space = config_space
        self.config = config
        self.seed = seed
        self.perf = PerformanceModel(
            batch=batch,
            plan_embeddings=plan_embeddings,
            knowledge=knowledge,
            config_space=config_space,
            config=config,
            seed=seed,
            training_path=training_path,
        )
        # Fresh-submission feature rows keyed (query_id, config_index),
        # shared across the sessions of every episode.  A row bakes in the
        # knowledge-estimated expected time, so entries are dropped whenever
        # the knowledge version moves.
        self._row_cache: dict[tuple[int, int], np.ndarray] = {}
        self._row_cache_version = -1

    # ------------------------------------------------------------------ #
    # Delegation to the performance-model layer
    # ------------------------------------------------------------------ #
    @property
    def model(self) -> ConcurrentPredictionModel:
        return self.perf.model

    @property
    def optimizer(self) -> Adam:
        return self.perf.optimizer

    @property
    def elapsed_column(self) -> int:
        """Index of the ``tanh(elapsed)`` entry in a feature row."""
        return self.perf.featurizer.elapsed_column

    def _features(
        self,
        query_ids: Sequence[int],
        parameters: Sequence[RunningParameters],
        elapsed: Sequence[float],
    ) -> np.ndarray:
        return self.perf.featurizer.rows(query_ids, parameters, elapsed)

    def cached_feature_row(self, query_id: int, parameters: RunningParameters) -> np.ndarray:
        """Feature row of a fresh submission (``elapsed = 0``), cached.

        Rows depend only on the frozen plan embedding, the configuration
        one-hot and the knowledge-estimated expected time, so they stay valid
        across sessions until the knowledge is refreshed from new logs.  The
        returned array is shared — callers must copy before mutating.
        """
        version = self.knowledge.version
        if version != self._row_cache_version:
            self._row_cache.clear()
            self._row_cache_version = version
        key = (query_id, self.config_space.index_of(parameters))
        row = self._row_cache.get(key)
        if row is None:
            row = self._features([query_id], [parameters], [0.0])[0]
            self._row_cache[key] = row
        return row

    def train_from_log(
        self, log: ExecutionLog, epochs: int | None = None, validation_fraction: float = 0.2
    ) -> SimulatorMetrics:
        """Train the prediction model from historical logs.

        A held-out fraction of the snapshots is used to report the
        classification accuracy and regression MSE of Table III.
        """
        return self.perf.train_from_log(log, epochs=epochs, validation_fraction=validation_fraction)

    def update_from_log(self, log: ExecutionLog) -> SimulatorMetrics:
        """Incrementally fine-tune on freshly collected (online) logs."""
        return self.perf.update_from_log(log)

    def evaluate_on_log(self, log: ExecutionLog) -> SimulatorMetrics:
        """Evaluate on all snapshots of ``log`` without training."""
        return self.perf.evaluate_on_log(log)

    # ------------------------------------------------------------------ #
    # Backend protocol
    # ------------------------------------------------------------------ #
    def new_session(
        self,
        batch: BatchQuerySet,
        num_connections: int | None = None,
        strategy: str = "",
        round_id: int | None = None,
    ) -> "SimulatedSession":
        """Open a simulated scheduling round (mirrors :class:`DatabaseEngine`)."""
        return SimulatedSession(
            simulator=self,
            batch=batch,
            num_connections=num_connections or 8,
            strategy=strategy,
            round_id=round_id or 0,
        )


class SimulatedSession:
    """A scheduling round served entirely by the learned simulator.

    Speaks the same session dialect as the fluid-engine
    :class:`~repro.dbms.engine.ExecutionSession`, including the event-driven
    extensions (``defer``/``release`` for streaming arrivals and a bounded
    ``advance(limit)``), so the :class:`repro.runtime.ExecutionRuntime` can
    host multi-tenant rounds on either backend.
    """

    supports_lockstep = True

    def __init__(
        self,
        simulator: LearnedSimulator,
        batch: BatchQuerySet,
        num_connections: int,
        strategy: str = "",
        round_id: int = 0,
    ) -> None:
        if num_connections < 1:
            raise SimulationError("num_connections must be >= 1")
        self.simulator = simulator
        self.batch = batch
        self.num_connections = num_connections
        self.current_time = 0.0
        self.pending: list[int] = [q.query_id for q in batch]
        self.deferred: list[int] = []
        self.running: dict[int, RunningQueryState] = {}
        self.finished: dict[int, float] = {}
        self.log = RoundLog(round_id=round_id, strategy=strategy or "simulated")
        self._idle = num_connections
        self._feature_rows: dict[int, np.ndarray] = {}
        #: SoA mirror of the observable per-query state (fast snapshot path).
        self.state_arrays = SessionStateArrays(len(batch))
        # Live-query model input, maintained incrementally: row i of
        # ``_live_matrix`` is the feature row of the i-th entry of
        # ``running`` (submission order), with only the elapsed column
        # rewritten per advance.  Capacity is bounded by the connection pool.
        self._live_states: list[RunningQueryState] = []
        self._live_matrix = np.zeros(
            (num_connections, simulator.perf.featurizer.feature_dim), dtype=np.float64
        )
        self._live_submit = np.zeros(num_connections, dtype=np.float64)

    # -- protocol properties ------------------------------------------- #
    @property
    def is_done(self) -> bool:
        return not self.pending and not self.deferred and not self.running

    @property
    def has_idle_connection(self) -> bool:
        return self._idle > 0

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def makespan(self) -> float:
        return max(self.finished.values(), default=0.0)

    def running_states(self) -> list[RunningQueryState]:
        return list(self.running.values())

    def pending_queries(self) -> list[Query]:
        return [self.batch[i] for i in self.pending]

    # -- protocol methods ----------------------------------------------- #
    def defer(self, query_ids: "list[int]") -> None:
        """Move pending queries into the deferred (not yet arrived) state."""
        for query_id in query_ids:
            if query_id not in self.pending:
                raise SimulationError(f"query {query_id} is not pending and cannot be deferred")
            self.pending.remove(query_id)
            self.deferred.append(query_id)
            self.state_arrays.mark_deferred(query_id)

    def release(self, query_id: int) -> None:
        """Mark a deferred query as arrived: it becomes pending at the current time."""
        if query_id not in self.deferred:
            raise SimulationError(f"query {query_id} is not deferred")
        self.deferred.remove(query_id)
        self.pending.append(query_id)
        self.state_arrays.mark_pending(query_id)

    def unarrived_ids(self) -> "tuple[int, ...]":
        """Query ids present in the round but not yet arrived (deferred)."""
        return tuple(self.deferred)

    def arrival_time(self, query_id: int) -> float:
        """Raw sessions have no arrival schedule; everything arrives at zero."""
        return 0.0

    def submit(self, query_id: int, parameters: RunningParameters) -> int:
        if query_id not in self.pending:
            raise SimulationError(f"query {query_id} is not pending in the simulator")
        if self._idle <= 0:
            raise SimulationError("no idle connection in the simulated session")
        self._idle -= 1
        connection = self.num_connections - self._idle - 1
        self.pending.remove(query_id)
        state = RunningQueryState(
            query=self.batch[query_id],
            parameters=parameters,
            connection=connection,
            submit_time=self.current_time,
            remaining_work=1.0,
            total_work=1.0,
        )
        self.running[query_id] = state
        slot = len(self._live_states)
        self._live_matrix[slot] = self._feature_row(state)
        self._live_submit[slot] = self.current_time
        self._live_states.append(state)
        self.state_arrays.mark_running(query_id, self.current_time)
        return connection

    def _feature_row(self, state: RunningQueryState) -> np.ndarray:
        """Per-query feature row with everything but the elapsed slot filled in.

        A query's plan embedding, configuration one-hot and expected time are
        fixed from submission to completion, so the row is built once per
        round and only the ``tanh(elapsed)`` entry is rewritten per advance.
        """
        query_id = state.query.query_id
        row = self._feature_rows.get(query_id)
        if row is None:
            row = self.simulator.cached_feature_row(query_id, state.parameters)
            self._feature_rows[query_id] = row
        return row

    def advance_features(self) -> tuple[list[RunningQueryState], np.ndarray]:
        """Current running states and their ``(k, feature_dim)`` model input.

        Exposed separately from :meth:`advance` so the vectorized engine can
        stack the features of many sessions into one batched prediction.  The
        feature matrix is a view of the live-query buffer, valid until the
        next ``submit``/``apply_advance`` on this session.
        """
        if not self.running:
            raise SimulationError("cannot advance: no query running in the simulator")
        k = len(self._live_states)
        features = self._live_matrix[:k]
        elapsed = self.current_time - self._live_submit[:k]
        features[:, self.simulator.elapsed_column] = np.tanh(elapsed / _TIME_SCALE)
        return list(self._live_states), features

    def advance(self, limit: float | None = None) -> CompletionEvent | None:
        """Predict the earliest finisher and move the clock to its finish time.

        With a ``limit`` the clock stops there when the predicted completion
        falls beyond it (returning ``None``); with nothing running, a
        ``limit`` idles the clock forward to it.
        """
        if not self.running:
            if limit is None:
                raise SimulationError("cannot advance: no query running in the simulator")
            self.current_time = max(self.current_time, limit)
            return None
        states, features = self.advance_features()
        logits, times = self.simulator.model.predict(features)
        return self.apply_advance(states, logits, times, limit=limit)

    def apply_advance(
        self,
        states: list[RunningQueryState],
        logits: np.ndarray,
        times: np.ndarray,
        limit: float | None = None,
    ) -> CompletionEvent | None:
        """Finish the predicted earliest query and move the clock accordingly."""
        index = int(np.argmax(logits))
        remaining = max(_MIN_REMAINING, float(times[index]) * _TIME_SCALE)
        if limit is not None and self.current_time + remaining > limit:
            self.current_time = limit
            return None
        self.current_time += remaining
        state = states[index]
        query_id = state.query.query_id
        del self.running[query_id]
        for slot, live in enumerate(self._live_states):
            if live.query.query_id == query_id:
                del self._live_states[slot]
                k = len(self._live_states)
                if slot < k:
                    self._live_matrix[slot:k] = self._live_matrix[slot + 1 : k + 1]
                    self._live_submit[slot:k] = self._live_submit[slot + 1 : k + 1]
                break
        self._idle += 1
        self.finished[query_id] = self.current_time
        self.state_arrays.mark_finished(query_id)
        self.log.add(
            QueryExecutionRecord(
                query_id=query_id,
                query_name=state.query.name,
                template_id=state.query.template_id,
                connection=state.connection,
                parameters=state.parameters,
                submit_time=state.submit_time,
                finish_time=self.current_time,
            )
        )
        return CompletionEvent(query_id=query_id, finish_time=self.current_time, connection=state.connection)
