"""Learned incremental simulator for concurrent query execution (Section IV-C).

Sampling scheduling episodes against a real DBMS is slow, so BQSched trains a
simulator from historical logs and pre-trains the RL policy against it.  The
simulator answers one question: *given the current set of concurrent queries
(and how long each has been running), which finishes first and when?*  It is
a multitask model — a classifier over concurrent queries plus a regressor for
the earliest remaining time — over the same kind of per-query features the
scheduler's state encoder uses, optionally with an attention layer modelling
the mutual influence of the concurrent queries.

Online logs produced during deployment can be fed back through
:meth:`LearnedSimulator.update_from_log` to fine-tune the prediction model
incrementally (hence *incremental* simulator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SimulatorConfig
from ..dbms import ConfigurationSpace, ExecutionLog, QueryExecutionRecord, RoundLog, RunningParameters
from ..dbms.engine import CompletionEvent, RunningQueryState
from ..exceptions import SimulationError
from ..nn import Adam, AttentionEncoder, Linear, MLP, Module, Tensor, cross_entropy, fastinfer, no_grad
from ..workloads import BatchQuerySet
from .knowledge import ExternalKnowledge

__all__ = ["ConcurrentPredictionModel", "LearnedSimulator", "SimulatedSession", "SimulatorMetrics"]

_TIME_SCALE = 10.0
_MIN_REMAINING = 0.05


@dataclass
class SimulatorMetrics:
    """Validation metrics of the prediction model (Table III)."""

    accuracy: float
    mse: float
    num_examples: int

    def __repr__(self) -> str:
        return f"SimulatorMetrics(acc={self.accuracy:.1%}, mse={self.mse:.3f}, n={self.num_examples})"


class ConcurrentPredictionModel(Module):
    """Multitask model: earliest-finisher classification + remaining-time regression."""

    def __init__(
        self,
        feature_dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        use_attention: bool = True,
        num_heads: int = 2,
    ) -> None:
        super().__init__()
        self.use_attention = use_attention
        self.input_proj = Linear(feature_dim, hidden_dim, rng)
        if use_attention:
            self.encoder = AttentionEncoder(hidden_dim, num_heads, 1, rng, norm="layer")
        self.classifier = MLP([hidden_dim, hidden_dim, 1], rng, activation="tanh")
        self.regressor = MLP([hidden_dim, hidden_dim, 1], rng, activation="tanh")

    def forward(self, features: np.ndarray) -> tuple[Tensor, Tensor]:
        """Return ``(class_logits, remaining_times)`` for ``(k, feature_dim)`` inputs."""
        tokens = self.input_proj(Tensor(features)).tanh()
        if self.use_attention:
            tokens = self.encoder(tokens)
        logits = self.classifier(tokens).reshape(features.shape[0])
        times = self.regressor(tokens).reshape(features.shape[0])
        return logits, times

    def predict(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Tape-free inference returning plain arrays (the rollout hot path).

        Bit-identical to :meth:`forward` but evaluated with raw NumPy, which
        is what keeps the simulator's ``advance`` cheap when N vectorized
        environments each advance their own session every decision round.
        """
        if self.use_attention and not fastinfer.supports_fast_inference(self.encoder):
            with no_grad():  # pragma: no cover - the simulator always uses LayerNorm
                logits, times = self.forward(features)
            return logits.data, times.data
        tokens = np.tanh(fastinfer.linear_forward(self.input_proj, features))
        if self.use_attention:
            tokens = fastinfer.attention_encoder_forward(self.encoder, tokens)
        logits = fastinfer.mlp_forward(self.classifier, tokens).reshape(features.shape[0])
        times = fastinfer.mlp_forward(self.regressor, tokens).reshape(features.shape[0])
        return logits, times

    def predict_batched(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Tape-free inference over a ``(groups, k, feature_dim)`` stack.

        One stacked forward serves every simulated session that needs an
        advance this lockstep round (grouped by equal ``k``), instead of one
        model call per session.
        """
        groups, k = features.shape[0], features.shape[1]
        if self.use_attention and not fastinfer.supports_fast_inference(self.encoder):
            rows = [self.predict(features[g]) for g in range(groups)]  # pragma: no cover
            return np.stack([r[0] for r in rows]), np.stack([r[1] for r in rows])
        features = features.astype(np.float32)
        tokens = np.tanh(fastinfer.linear_forward(self.input_proj, features))
        if self.use_attention:
            tokens = fastinfer.attention_encoder_forward_batched(self.encoder, tokens)
        logits = fastinfer.mlp_forward(self.classifier, tokens).reshape(groups, k)
        times = fastinfer.mlp_forward(self.regressor, tokens).reshape(groups, k)
        return logits, times


@dataclass
class _Example:
    """One training example derived from a concurrency snapshot."""

    features: np.ndarray
    earliest_index: int
    earliest_remaining: float


class LearnedSimulator:
    """The DBMS stand-in the scheduler pre-trains against."""

    def __init__(
        self,
        batch: BatchQuerySet,
        plan_embeddings: np.ndarray,
        knowledge: ExternalKnowledge,
        config_space: ConfigurationSpace,
        config: SimulatorConfig,
        seed: int = 0,
    ) -> None:
        self.batch = batch
        self.plan_embeddings = plan_embeddings
        self.knowledge = knowledge
        self.config_space = config_space
        self.config = config
        self.seed = seed
        rng = np.random.default_rng(seed)
        feature_dim = plan_embeddings.shape[1] + len(config_space) + 2
        self.model = ConcurrentPredictionModel(
            feature_dim=feature_dim,
            hidden_dim=config.hidden_dim,
            rng=rng,
            use_attention=config.use_attention,
        )
        self.optimizer = Adam(self.model.parameters(), lr=config.learning_rate)
        self._rng = rng

    # ------------------------------------------------------------------ #
    # Featurisation
    # ------------------------------------------------------------------ #
    @property
    def elapsed_column(self) -> int:
        """Index of the ``tanh(elapsed)`` entry in a feature row."""
        return self.plan_embeddings.shape[1] + len(self.config_space)

    def _features(
        self,
        query_ids: "tuple[int, ...] | list[int]",
        parameters: "tuple[RunningParameters, ...] | list[RunningParameters]",
        elapsed: "tuple[float, ...] | list[float]",
    ) -> np.ndarray:
        rows = []
        for query_id, params, elapsed_time in zip(query_ids, parameters, elapsed):
            config_index = self.config_space.index_of(params)
            config_onehot = np.zeros(len(self.config_space))
            config_onehot[config_index] = 1.0
            expected = self.knowledge.expected_time(query_id, config_index)
            rows.append(
                np.concatenate(
                    [
                        self.plan_embeddings[query_id],
                        config_onehot,
                        [np.tanh(elapsed_time / _TIME_SCALE), np.tanh(expected / _TIME_SCALE)],
                    ]
                )
            )
        return np.stack(rows, axis=0)

    def _examples_from_log(self, log: ExecutionLog) -> list[_Example]:
        examples = []
        for snapshot in log.concurrency_snapshots():
            features = self._features(snapshot.running_query_ids, snapshot.parameters, snapshot.elapsed)
            examples.append(
                _Example(
                    features=features,
                    earliest_index=snapshot.earliest_index,
                    earliest_remaining=snapshot.earliest_remaining,
                )
            )
        return examples

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train_from_log(
        self, log: ExecutionLog, epochs: int | None = None, validation_fraction: float = 0.2
    ) -> SimulatorMetrics:
        """Train the prediction model from historical logs.

        A held-out fraction of the snapshots is used to report the
        classification accuracy and regression MSE of Table III.
        """
        examples = self._examples_from_log(log)
        if len(examples) < 4:
            raise SimulationError("not enough concurrency snapshots in the log to train the simulator")
        self._rng.shuffle(examples)
        split = max(1, int(len(examples) * validation_fraction))
        validation, training = examples[:split], examples[split:]
        self._fit(training, epochs or self.config.epochs)
        return self.evaluate_examples(validation)

    def update_from_log(self, log: ExecutionLog) -> SimulatorMetrics:
        """Incrementally fine-tune on freshly collected (online) logs."""
        examples = self._examples_from_log(log)
        if not examples:
            raise SimulationError("online log contains no concurrency snapshots")
        self._fit(examples, self.config.incremental_epochs)
        return self.evaluate_examples(examples)

    def _fit(self, examples: list[_Example], epochs: int) -> None:
        if not examples:
            return
        order = list(range(len(examples)))
        for _ in range(epochs):
            self._rng.shuffle(order)
            for index in order:
                example = examples[index]
                logits, times = self.model(example.features)
                classification = cross_entropy(logits, example.earliest_index)
                target = example.earliest_remaining / _TIME_SCALE
                prediction = times[example.earliest_index]
                regression = (prediction - target) ** 2
                loss = classification
                if self.config.use_multitask:
                    loss = loss + self.config.gamma_regression * regression
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()

    def evaluate_examples(self, examples: list[_Example]) -> SimulatorMetrics:
        """Accuracy / MSE of the model on a set of examples."""
        if not examples:
            return SimulatorMetrics(accuracy=float("nan"), mse=float("nan"), num_examples=0)
        correct = 0
        squared_errors = []
        with no_grad():
            for example in examples:
                logits, times = self.model(example.features)
                predicted_index = int(np.argmax(logits.data))
                correct += int(predicted_index == example.earliest_index)
                predicted_time = float(times.data[predicted_index])
                squared_errors.append((predicted_time - example.earliest_remaining / _TIME_SCALE) ** 2)
        return SimulatorMetrics(
            accuracy=correct / len(examples),
            mse=float(np.mean(squared_errors)),
            num_examples=len(examples),
        )

    def evaluate_on_log(self, log: ExecutionLog) -> SimulatorMetrics:
        """Evaluate on all snapshots of ``log`` without training."""
        return self.evaluate_examples(self._examples_from_log(log))

    # ------------------------------------------------------------------ #
    # Backend protocol
    # ------------------------------------------------------------------ #
    def new_session(
        self,
        batch: BatchQuerySet,
        num_connections: int | None = None,
        strategy: str = "",
        round_id: int | None = None,
    ) -> "SimulatedSession":
        """Open a simulated scheduling round (mirrors :class:`DatabaseEngine`)."""
        return SimulatedSession(
            simulator=self,
            batch=batch,
            num_connections=num_connections or 8,
            strategy=strategy,
            round_id=round_id or 0,
        )


class SimulatedSession:
    """A scheduling round served entirely by the learned simulator.

    Speaks the same session dialect as the fluid-engine
    :class:`~repro.dbms.engine.ExecutionSession`, including the event-driven
    extensions (``defer``/``release`` for streaming arrivals and a bounded
    ``advance(limit)``), so the :class:`repro.runtime.ExecutionRuntime` can
    host multi-tenant rounds on either backend.
    """

    supports_lockstep = True

    def __init__(
        self,
        simulator: LearnedSimulator,
        batch: BatchQuerySet,
        num_connections: int,
        strategy: str = "",
        round_id: int = 0,
    ) -> None:
        if num_connections < 1:
            raise SimulationError("num_connections must be >= 1")
        self.simulator = simulator
        self.batch = batch
        self.num_connections = num_connections
        self.current_time = 0.0
        self.pending: list[int] = [q.query_id for q in batch]
        self.deferred: list[int] = []
        self.running: dict[int, RunningQueryState] = {}
        self.finished: dict[int, float] = {}
        self.log = RoundLog(round_id=round_id, strategy=strategy or "simulated")
        self._idle = num_connections
        self._feature_rows: dict[int, np.ndarray] = {}

    # -- protocol properties ------------------------------------------- #
    @property
    def is_done(self) -> bool:
        return not self.pending and not self.deferred and not self.running

    @property
    def has_idle_connection(self) -> bool:
        return self._idle > 0

    @property
    def has_pending(self) -> bool:
        return bool(self.pending)

    @property
    def num_running(self) -> int:
        return len(self.running)

    @property
    def makespan(self) -> float:
        return max(self.finished.values(), default=0.0)

    def running_states(self) -> list[RunningQueryState]:
        return list(self.running.values())

    def pending_queries(self):
        return [self.batch[i] for i in self.pending]

    # -- protocol methods ----------------------------------------------- #
    def defer(self, query_ids: "list[int]") -> None:
        """Move pending queries into the deferred (not yet arrived) state."""
        for query_id in query_ids:
            if query_id not in self.pending:
                raise SimulationError(f"query {query_id} is not pending and cannot be deferred")
            self.pending.remove(query_id)
            self.deferred.append(query_id)

    def release(self, query_id: int) -> None:
        """Mark a deferred query as arrived: it becomes pending at the current time."""
        if query_id not in self.deferred:
            raise SimulationError(f"query {query_id} is not deferred")
        self.deferred.remove(query_id)
        self.pending.append(query_id)

    def unarrived_ids(self) -> "tuple[int, ...]":
        """Query ids present in the round but not yet arrived (deferred)."""
        return tuple(self.deferred)

    def arrival_time(self, query_id: int) -> float:
        """Raw sessions have no arrival schedule; everything arrives at zero."""
        return 0.0

    def submit(self, query_id: int, parameters: RunningParameters) -> int:
        if query_id not in self.pending:
            raise SimulationError(f"query {query_id} is not pending in the simulator")
        if self._idle <= 0:
            raise SimulationError("no idle connection in the simulated session")
        self._idle -= 1
        connection = self.num_connections - self._idle - 1
        self.pending.remove(query_id)
        self.running[query_id] = RunningQueryState(
            query=self.batch[query_id],
            parameters=parameters,
            connection=connection,
            submit_time=self.current_time,
            remaining_work=1.0,
            total_work=1.0,
        )
        return connection

    def _feature_row(self, state: RunningQueryState) -> np.ndarray:
        """Per-query feature row with everything but the elapsed slot filled in.

        A query's plan embedding, configuration one-hot and expected time are
        fixed from submission to completion, so the row is built once per
        round and only the ``tanh(elapsed)`` entry is rewritten per advance.
        """
        query_id = state.query.query_id
        row = self._feature_rows.get(query_id)
        if row is None:
            row = self.simulator._features([query_id], [state.parameters], [0.0])[0]
            self._feature_rows[query_id] = row
        return row

    def advance_features(self) -> tuple[list[RunningQueryState], np.ndarray]:
        """Current running states and their ``(k, feature_dim)`` model input.

        Exposed separately from :meth:`advance` so the vectorized engine can
        stack the features of many sessions into one batched prediction.
        """
        if not self.running:
            raise SimulationError("cannot advance: no query running in the simulator")
        states = list(self.running.values())
        features = np.stack([self._feature_row(state) for state in states], axis=0)
        elapsed = np.array([self.current_time - s.submit_time for s in states])
        features[:, self.simulator.elapsed_column] = np.tanh(elapsed / _TIME_SCALE)
        return states, features

    def advance(self, limit: float | None = None) -> CompletionEvent | None:
        """Predict the earliest finisher and move the clock to its finish time.

        With a ``limit`` the clock stops there when the predicted completion
        falls beyond it (returning ``None``); with nothing running, a
        ``limit`` idles the clock forward to it.
        """
        if not self.running:
            if limit is None:
                raise SimulationError("cannot advance: no query running in the simulator")
            self.current_time = max(self.current_time, limit)
            return None
        states, features = self.advance_features()
        logits, times = self.simulator.model.predict(features)
        return self.apply_advance(states, logits, times, limit=limit)

    def apply_advance(
        self,
        states: list[RunningQueryState],
        logits: np.ndarray,
        times: np.ndarray,
        limit: float | None = None,
    ) -> CompletionEvent | None:
        """Finish the predicted earliest query and move the clock accordingly."""
        index = int(np.argmax(logits))
        remaining = max(_MIN_REMAINING, float(times[index]) * _TIME_SCALE)
        if limit is not None and self.current_time + remaining > limit:
            self.current_time = limit
            return None
        self.current_time += remaining
        state = states[index]
        query_id = state.query.query_id
        del self.running[query_id]
        self._idle += 1
        self.finished[query_id] = self.current_time
        self.log.add(
            QueryExecutionRecord(
                query_id=query_id,
                query_name=state.query.name,
                template_id=state.query.template_id,
                connection=state.connection,
                parameters=state.parameters,
                submit_time=state.submit_time,
                finish_time=self.current_time,
            )
        )
        return CompletionEvent(query_id=query_id, finish_time=self.current_time, connection=state.connection)
