"""The BQSched facade and the adapted LSched baseline.

:class:`BQSched` wires every component of the paper together behind a small
API:

1. build the QueryFormer plan embeddings and the external knowledge
   (isolated-probe execution times per configuration);
2. :meth:`prepare` — run a few historical rounds against the DBMS, derive the
   adaptive mask, the scheduling-gain clusters (for large query sets) and
   train the learned simulator;
3. :meth:`train` — pre-train the IQ-PPO policy against the simulator, then
   fine-tune it against the real DBMS;
4. :meth:`schedule` / :meth:`evaluate` — run the learned policy greedily;
5. :meth:`serve` — run the policy as a continuous event-driven scheduler
   over multi-tenant, streaming-arrival rounds on a shared engine.

The facade accepts either a single :class:`~repro.dbms.DatabaseEngine` or a
:class:`~repro.dbms.Cluster` of heterogeneous instances: on a cluster the
action space (and the policy's placement-aware head) widens to joint
(query, instance, configuration) choices and every environment becomes a
:class:`~repro.core.cluster_env.ClusterSchedulingEnv`.  Simulator
pre-training and gain clustering work on fleets too: :meth:`prepare` fits
one :class:`~repro.perf.PerformanceModel` from instance-tagged logs and
:meth:`train` pre-trains against its
:class:`~repro.perf.SimulatedCluster` twin, so fleet policies reach a
target makespan with far fewer real-cluster episodes.

:class:`LSchedScheduler` is the paper's adapted baseline: the same state
representation but plain PPO, no adaptive masking, no clustering and no
simulator pre-training.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from ..config import AdmissionPolicy, AutoscalePolicy, BQSchedConfig, RetryPolicy
from ..dbms import Cluster, ConfigurationSpace, DatabaseEngine, ExecutionLog, FailureProfile, INSTANCE_FEATURE_DIM
from ..encoder import PlanEmbeddingCache, QueryFormer, RunStateFeaturizer, SchedulingSnapshot, StateEncoder
from ..exceptions import SchedulingError
from ..nn.backend import resolve_backend
from ..perf import PerformanceModel, SimulatedCluster
from ..plans import PlanFeaturizer
from ..runtime import ControlPlane, ExecutionRuntime, ServiceReport, TenantClass
from ..workloads import ArrivalProcess, BatchQuerySet, ClosedArrivals, Workload, make_arrival_process
from .baselines import BaseScheduler
from .cluster_env import ClusterSchedulingEnv, cluster_instance_count
from .clustering import QueryClusters, cluster_queries
from .env import SchedulingEnv, drive_service
from .gain import build_gain_matrix
from .iq_ppo import IQPPOTrainer
from .knowledge import ExternalKnowledge
from .masking import AdaptiveMask
from .policy import ActorCriticNetwork
from .ppg import PPGTrainer
from .ppo import PPOTrainer, TrainingHistory
from .simulator import LearnedSimulator
from .types import SchedulingResult, StrategyEvaluation

__all__ = ["RLSchedulerBase", "BQSched", "LSchedScheduler"]

_ALGORITHMS = {"ppo": PPOTrainer, "ppg": PPGTrainer, "iq-ppo": IQPPOTrainer}


class RLSchedulerBase(BaseScheduler):
    """Shared machinery of the RL-based schedulers (BQSched and LSched)."""

    name = "RL"
    algorithm = "ppo"
    use_masking = False
    use_clustering = False
    use_simulator = False
    use_attention_state = True
    #: Simulator pre-training steps cost nothing on the real DBMS, so it runs
    #: N lockstep envs by default (capped by the per-update episode budget —
    #: extra envs beyond that would never start an episode).  Set to 1 on an
    #: instance to restore fully sequential, legacy-identical pre-training.
    pretrain_num_envs = 4

    def __init__(
        self,
        workload: Workload,
        engine: "DatabaseEngine | Cluster",
        config: BQSchedConfig | None = None,
    ) -> None:
        self.workload = workload
        self.engine = engine
        self.config = config or BQSchedConfig()
        self.batch: BatchQuerySet = workload.batch_query_set()
        self.seeds = self.config.seed_spawner()
        self.rng = self.seeds.generator()

        # A Cluster backend switches the action space to joint
        # (query, instance, configuration) choices; the policy heads widen
        # accordingly and every environment becomes a ClusterSchedulingEnv.
        # The learned simulator and gain clustering work on fleets too: the
        # performance model trains per instance from instance-tagged logs and
        # pre-training runs against a SimulatedCluster twin of the fleet.
        self.num_instances = engine.num_instances if isinstance(engine, Cluster) else 1

        self.config_space = ConfigurationSpace(self.config.scheduler)
        featurizer = PlanFeaturizer(workload.catalog)
        self.queryformer = QueryFormer(featurizer, self.config.encoder, self.rng)
        self.plan_cache = PlanEmbeddingCache(self.queryformer)
        self.plan_embeddings = self.plan_cache.embeddings_for(self.batch)

        self.knowledge = ExternalKnowledge.from_probes(engine, self.batch, self.config_space)
        self.mask = (
            AdaptiveMask.build(self.batch, self.knowledge, self.config_space, self.config.masking)
            if self.use_masking
            else AdaptiveMask.unmasked(len(self.batch), len(self.config_space))
        )
        self.clusters: QueryClusters | None = None
        #: The pre-training backend: a single-engine LearnedSimulator or, on
        #: fleets, a SimulatedCluster over the shared performance model.
        self.simulator: "LearnedSimulator | SimulatedCluster | None" = None
        #: The unified prediction stack behind the simulator (and the learned
        #: cost estimates); on single engines this is ``simulator.perf``.
        self.perf_model: PerformanceModel | None = None
        self.history_log = ExecutionLog()

        run_featurizer = RunStateFeaturizer(
            num_configs=self.num_instances * len(self.config_space),
            instance_context_dim=(
                self.num_instances * INSTANCE_FEATURE_DIM if isinstance(engine, Cluster) else 0
            ),
        )
        self.state_encoder = StateEncoder(
            plan_embedding_dim=self.config.encoder.plan_embedding_dim,
            run_state_featurizer=run_featurizer,
            config=self.config.encoder,
            rng=self.rng,
            use_attention=self.use_attention_state,
        )
        self.policy = ActorCriticNetwork(
            state_encoder=self.state_encoder,
            num_configs=self.num_instances * len(self.config_space),
            rng=self.rng,
        )
        self.env = self._build_env(backend=self.engine)
        # Resolved once against the registry: unknown names fail loudly here,
        # unavailable/unsupported backends degrade to numpy-ref with a
        # warning.  Every sampling forward (rollouts, greedy serving,
        # evaluation) routes through this backend; learning never does.
        self.inference_backend = resolve_backend(
            self.config.scheduler.inference_backend, self.policy
        )
        self.trainer: PPOTrainer | None = None
        self.timings: dict[str, float] = {}
        self._prepared = False

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_workload(
        cls,
        workload: Workload,
        engine: DatabaseEngine,
        config: BQSchedConfig | None = None,
        seed: int | None = None,
    ) -> "RLSchedulerBase":
        """Build a scheduler for ``workload`` executing on ``engine``."""
        config = config or BQSchedConfig()
        if seed is not None:
            config.seed = seed
        return cls(workload, engine, config)

    def _build_env(self, backend) -> SchedulingEnv:
        if self._cluster_backend(backend):
            return ClusterSchedulingEnv(
                batch=self.batch,
                backend=backend,
                scheduler_config=self.config.scheduler,
                config_space=self.config_space,
                knowledge=self.knowledge,
                mask=self.mask,
                clusters=self.clusters,
                strategy_name=self.name,
            )
        return SchedulingEnv(
            batch=self.batch,
            backend=backend,
            scheduler_config=self.config.scheduler,
            config_space=self.config_space,
            knowledge=self.knowledge,
            mask=self.mask,
            clusters=self.clusters,
            strategy_name=self.name,
        )

    @staticmethod
    def _cluster_backend(backend) -> bool:
        """Whether a backend routes to a fleet (directly or through a tenant)."""
        return cluster_instance_count(backend) is not None

    def _make_trainer(self, env: SchedulingEnv, num_envs: int | None = None) -> PPOTrainer:
        trainer_cls = _ALGORITHMS[self.algorithm]
        ppo_config = self.config.ppo
        if num_envs is not None and num_envs != ppo_config.num_envs:
            ppo_config = replace(ppo_config, num_envs=num_envs)
        return trainer_cls(
            policy=self.policy,
            plan_embeddings=self.plan_embeddings,
            env=env,
            config=ppo_config,
            seed=self.config.seed,
            eval_env=self.env,
            backend=self.inference_backend,
            training_path=self.config.scheduler.training_path,
        )

    # ------------------------------------------------------------------ #
    # Preparation: historical logs, masking refresh, clustering, simulator
    # ------------------------------------------------------------------ #
    def prepare(self, history_rounds: int = 3) -> "RLSchedulerBase":
        """Collect historical logs and build the log-derived components."""
        started = time.perf_counter()
        orders = []
        base_order = [q.query_id for q in self.batch]
        for round_index in range(history_rounds):
            order = list(base_order)
            shuffler = np.random.default_rng((self.config.seed, round_index))
            shuffler.shuffle(order)
            orders.append(order)
        log = self.engine.collect_logs(
            self.batch,
            orders,
            self.config_space.default,
            num_connections=self.config.scheduler.num_connections,
            strategy="history",
        )
        self.history_log.extend(log)
        self.knowledge.update_from_log(self.history_log)

        if self.use_clustering and self.config.clustering.enabled:
            gain_matrix = build_gain_matrix(
                self.history_log,
                self.batch,
                plan_embeddings=self.plan_embeddings,
                hidden_dim=self.config.clustering.gain_model_hidden,
                seed=self.config.seed,
            )
            num_clusters = min(self.config.clustering.num_clusters, len(self.batch))
            self.clusters = cluster_queries(
                self.batch,
                gain_matrix,
                num_clusters,
                knowledge=self.knowledge,
                intra_cluster_order=self.config.clustering.intra_cluster_order,
            )
            self.env = self._build_env(backend=self.engine)

        if self.use_simulator:
            if isinstance(self.engine, Cluster):
                # One performance model covers the whole fleet: examples are
                # reconstructed per instance from the instance-tagged history
                # log and every row carries the instance-context channel.
                self.perf_model = PerformanceModel(
                    batch=self.batch,
                    plan_embeddings=self.plan_embeddings,
                    knowledge=self.knowledge,
                    config_space=self.config_space,
                    config=self.config.simulator,
                    seed=self.config.seed,
                    instance_speeds=self.engine.speed_factors(),
                    training_path=self.config.scheduler.training_path,
                )
                self.perf_model.train_from_log(self.history_log)
                self.simulator = SimulatedCluster.for_cluster(self.perf_model, self.engine)
            else:
                simulator = LearnedSimulator(
                    batch=self.batch,
                    plan_embeddings=self.plan_embeddings,
                    knowledge=self.knowledge,
                    config_space=self.config_space,
                    config=self.config.simulator,
                    seed=self.config.seed,
                    training_path=self.config.scheduler.training_path,
                )
                simulator.train_from_log(self.history_log)
                self.simulator = simulator
                self.perf_model = simulator.perf

        self.timings["prepare"] = time.perf_counter() - started
        self._prepared = True
        return self

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def train(
        self,
        num_updates: int = 10,
        pretrain_updates: int | None = None,
        eval_every: int = 0,
        history_rounds: int = 3,
        keep_best: bool = True,
    ) -> TrainingHistory:
        """Train the policy (optionally pre-training against the simulator first).

        Following Section IV-C, intermediate models are validated against the
        real DBMS and the best one is kept (``keep_best``), which is also what
        protects deployment from a late policy collapse.
        """
        if not self._prepared:
            self.prepare(history_rounds=history_rounds)

        self._best_score = float("inf")
        self._best_state = None
        if keep_best:
            self._validate_and_keep_best()

        if self.use_simulator and self.simulator is not None and (pretrain_updates is None or pretrain_updates > 0):
            pretrain_updates = pretrain_updates if pretrain_updates is not None else num_updates
            started = time.perf_counter()
            sim_env = self._build_env(backend=self.simulator)
            pretrain_envs = max(
                self.config.ppo.num_envs,
                min(self.pretrain_num_envs, self.config.ppo.rollouts_per_update),
            )
            pretrainer = self._make_trainer(sim_env, num_envs=pretrain_envs)
            pretrainer.train(pretrain_updates, eval_every=0)
            self.timings["pretrain"] = time.perf_counter() - started
            if keep_best:
                self._validate_and_keep_best()

        started = time.perf_counter()
        self.trainer = self._make_trainer(self.env)
        checkpoint_every = max(1, num_updates // 3)
        history = self.trainer.history
        for start in range(0, num_updates, checkpoint_every):
            chunk = min(checkpoint_every, num_updates - start)
            history = self.trainer.train(chunk, eval_every=eval_every)
            if keep_best:
                self._validate_and_keep_best()
        self.timings["finetune"] = time.perf_counter() - started
        self.timings["train_total"] = self.timings.get("pretrain", 0.0) + self.timings["finetune"]

        if keep_best and self._best_state is not None:
            self.policy.load_state_dict(self._best_state)
        return history

    def _validate_and_keep_best(self, rounds: int = 1) -> float:
        """Run a greedy validation round on the real DBMS and snapshot the best policy."""
        evaluation = self.evaluate(self.env, rounds=rounds, base_round_id=90_000 + len(self.timings))
        if evaluation.mean < self._best_score:
            self._best_score = evaluation.mean
            self._best_state = self.policy.state_dict()
        return evaluation.mean

    # ------------------------------------------------------------------ #
    # Scheduling with the learned policy
    # ------------------------------------------------------------------ #
    def select_action(self, env: SchedulingEnv, snapshot: SchedulingSnapshot) -> int:
        """Greedy action from the learned policy (BaseScheduler interface)."""
        mask = env.action_mask()
        decision = self.policy.act(
            self.plan_embeddings,
            snapshot,
            mask,
            self.rng,
            greedy=True,
            clusters=env.clusters,
            backend=self.inference_backend,
        )
        return decision.action

    def schedule(self, round_id: int | None = None) -> SchedulingResult:
        """Run one greedy scheduling round on the real DBMS."""
        return self.run_round(self.env, round_id=round_id)

    def evaluate_policy(self, rounds: int | None = None, base_round_id: int = 50_000) -> StrategyEvaluation:
        """Efficiency / stability of the learned policy over ``rounds`` rounds."""
        rounds = rounds or self.config.scheduler.evaluation_rounds
        return self.evaluate(self.env, rounds=rounds, base_round_id=base_round_id)

    def evaluate_on(
        self,
        workload: Workload,
        engine: "DatabaseEngine | Cluster | None" = None,
        rounds: int = 3,
        base_round_id: int = 70_000,
    ) -> StrategyEvaluation:
        """Apply the already-trained policy to a *different* workload or fleet.

        This is the paper's adaptability experiment (Table II): the policy is
        trained on one data/query scale and evaluated, without retraining, on
        a perturbed workload.  Plan embeddings, external knowledge and the
        adaptive mask are rebuilt for the new batch; the policy network is
        reused as-is (the attention-based state supports variable batch
        sizes).  In the cluster setting ``engine`` may be a *different*
        fleet — the cross-configuration scenario: trained on a homogeneous
        cluster, evaluated on a skewed one — as long as the instance count
        matches the policy's placement head.
        """
        engine = engine or self.engine
        if not hasattr(engine, "estimate_isolated_time"):
            raise SchedulingError(
                "evaluate_on rebuilds knowledge from isolated probes and needs a "
                "probe-capable backend (DatabaseEngine or Cluster), not "
                f"{type(engine).__name__}"
            )
        instances = cluster_instance_count(engine)
        if instances is not None:
            if instances != self.num_instances:
                raise SchedulingError(
                    f"policy places across {self.num_instances} instances but the evaluation "
                    f"fleet has {instances}"
                )
        elif self.num_instances > 1:
            raise SchedulingError("a cluster-trained policy needs a Cluster evaluation backend")
        batch = workload.batch_query_set()
        plan_embeddings = PlanEmbeddingCache(self.queryformer).embeddings_for(batch)
        knowledge = ExternalKnowledge.from_probes(engine, batch, self.config_space)
        mask = (
            AdaptiveMask.build(batch, knowledge, self.config_space, self.config.masking)
            if self.use_masking
            else AdaptiveMask.unmasked(len(batch), len(self.config_space))
        )
        env_cls = ClusterSchedulingEnv if self._cluster_backend(engine) else SchedulingEnv
        env = env_cls(
            batch=batch,
            backend=engine,
            scheduler_config=self.config.scheduler,
            config_space=self.config_space,
            knowledge=knowledge,
            mask=mask,
            strategy_name=self.name,
        )
        evaluation = StrategyEvaluation(strategy=self.name)
        for offset in range(rounds):
            snapshot = env.reset(round_id=base_round_id + offset)
            done = False
            while not done:
                action_mask = env.action_mask()
                decision = self.policy.act(
                    plan_embeddings,
                    snapshot,
                    action_mask,
                    self.rng,
                    greedy=True,
                    backend=self.inference_backend,
                )
                step = env.step(decision.action)
                snapshot, done = step.snapshot, step.done
            evaluation.add(env.result().makespan)
        return evaluation

    # ------------------------------------------------------------------ #
    # Event-driven serving
    # ------------------------------------------------------------------ #
    def serve(
        self,
        num_tenants: int | None = None,
        arrivals: "ArrivalProcess | str | None" = None,
        num_connections: int | None = None,
        round_id: int | None = None,
        faults: "FailureProfile | None" = None,
        retry: "RetryPolicy | None" = None,
        tenant_classes: "tuple[TenantClass, ...] | list[TenantClass] | None" = None,
        admission: "AdmissionPolicy | None" = None,
        autoscale: "AutoscalePolicy | None" = None,
    ) -> ServiceReport:
        """Run the trained policy as a continuous scheduler over a shared round.

        ``num_tenants`` independent instances of the batch (defaulting to
        ``config.service.num_tenants``) are registered as tenants of one
        :class:`~repro.runtime.ExecutionRuntime` on the real engine, each
        optionally opened into a stream by ``arrivals`` (an
        :class:`~repro.workloads.ArrivalProcess`, a process name from
        :func:`~repro.workloads.make_arrival_process`, or ``None`` to use
        ``config.service.arrival_process``).  The loop is event-driven: at
        every completion or arrival event, every tenant that can decide
        submits its next query (policy runs greedily) before the clock moves
        again.  Returns per-tenant makespans and latency percentiles.

        ``faults`` injects a :class:`~repro.dbms.FailureProfile` into the
        served round (on top of any profile already attached to the engine),
        and ``retry`` turns on the runtime's failure handling — exponential
        backoff re-arrivals, straggler timeout kills, terminal failure once
        the attempt budget is spent.  Instance outages are always requeued,
        retry policy or not.  The report then carries the failure ledger
        (``num_failed`` / ``num_retries`` / ``num_timeouts`` / goodput).

        The production control plane is opt-in through three further knobs
        (each falling back to ``config.service``): ``tenant_classes`` assigns
        tenant ``i`` the class ``tenant_classes[i % len(tenant_classes)]``
        (priority, latency SLO, retry deadline — the report then rolls SLO
        attainment up per class); ``admission`` puts a token-bucket
        :class:`~repro.runtime.AdmissionController` in front of streaming
        arrivals, shedding load the bucket refuses; ``autoscale`` runs an
        elastic-fleet :class:`~repro.runtime.FleetController` that parks and
        unparks engine instances against the backlog (requires a
        :class:`~repro.dbms.Cluster` backend — parking the only engine would
        wedge the round).  With all three unset, serving is bit-identical to
        the pre-control-plane tree.
        """
        if self.clusters is not None:
            raise SchedulingError(
                "serve() schedules at query level, but this policy was trained over "
                "gain-clustered (cluster, configuration) actions; rebuild with "
                "config.clustering.enabled = False (and a batch of <= 150 queries) to serve"
            )
        service = self.config.service
        num_tenants = num_tenants if num_tenants is not None else service.num_tenants
        if num_tenants < 1:
            raise SchedulingError("num_tenants must be >= 1")
        if arrivals is None:
            arrivals = service.arrival_process
        if isinstance(arrivals, str):
            arrivals = make_arrival_process(
                arrivals, rate=service.arrival_rate, burst_size=service.burst_size
            )
        if isinstance(arrivals, ClosedArrivals):
            arrivals = None

        if tenant_classes is None:
            tenant_classes = service.tenant_classes
        if admission is None:
            admission = service.admission
        if autoscale is None:
            autoscale = service.autoscale
        if autoscale is not None and not self._cluster_backend(self.engine):
            raise SchedulingError(
                "autoscaling parks and unparks engine instances, which needs a "
                "Cluster backend; a single engine has nothing to scale"
            )

        scheduler_config = (
            self.config.scheduler
            if num_connections is None
            else replace(self.config.scheduler, num_connections=num_connections)
        )
        if admission is not None or autoscale is not None:
            control = ControlPlane(retry=retry, admission=admission, autoscale=autoscale)
            runtime = ExecutionRuntime(self.engine, faults=faults, control=control)
        else:
            runtime = ExecutionRuntime(self.engine, retry=retry, faults=faults)
        env_cls = ClusterSchedulingEnv if self._cluster_backend(self.engine) else SchedulingEnv
        envs = []
        classes = tuple(tenant_classes) if tenant_classes else ()
        for index in range(num_tenants):
            tenant_class = classes[index % len(classes)] if classes else None
            tenant = runtime.register(
                f"tenant-{index}", self.batch, arrivals=arrivals, tenant_class=tenant_class
            )
            envs.append(
                env_cls(
                    batch=self.batch,
                    backend=tenant,
                    scheduler_config=scheduler_config,
                    config_space=self.config_space,
                    knowledge=self.knowledge,
                    mask=self.mask,
                    strategy_name=f"{self.name}/serve",
                )
            )
        round_id = round_id if round_id is not None else service.base_round_id
        for env in envs:
            env.reset(round_id=round_id)
        drive_service(runtime, envs, lambda env: self.select_action(env, env.snapshot()))
        return ServiceReport.from_runtime(runtime, strategy=self.name)

    # ------------------------------------------------------------------ #
    # Online adaptation
    # ------------------------------------------------------------------ #
    def ingest_online_log(self, log: ExecutionLog) -> None:
        """Feed freshly collected logs back into the knowledge base and simulator.

        The continual-adaptation loop of Section IV-C, fleet-capable: the
        knowledge base refreshes its per-query expectations and the
        performance model fine-tunes incrementally — on clusters the
        instance-tagged records route into per-instance concurrency examples,
        so each engine instance's dynamics keep tracking reality during
        :meth:`serve`.
        """
        self.history_log.extend(log)
        self.knowledge.update_from_log(log)
        if self.perf_model is not None:
            self.perf_model.update_from_log(log)


class BQSched(RLSchedulerBase):
    """The full system: IQ-PPO + adaptive masking + clustering + simulator."""

    name = "BQSched"
    algorithm = "iq-ppo"
    use_masking = True
    use_simulator = True
    use_attention_state = True

    def __init__(
        self,
        workload: Workload,
        engine: "DatabaseEngine | Cluster",
        config: BQSchedConfig | None = None,
    ) -> None:
        config = config or BQSchedConfig()
        # Cluster-level scheduling is only worthwhile for large query sets;
        # honour an explicit setting, otherwise enable it automatically.
        self.use_clustering = config.clustering.enabled or len(workload.batch_query_set()) > 150
        if self.use_clustering:
            config.clustering.enabled = True
        super().__init__(workload, engine, config)


class LSchedScheduler(RLSchedulerBase):
    """LSched adapted to non-intrusive batch scheduling (the paper's RL baseline)."""

    name = "LSched"
    algorithm = "ppo"
    use_masking = False
    use_clustering = False
    use_simulator = False
    use_attention_state = True
