"""Actor-critic network with the shared state representation.

θ_S (the attention-based state encoder), θ_π (policy head), θ_V (value head)
and θ_A (auxiliary finish-time head) from Figure 2.  The policy head maps
each per-query representation ``x''_i`` to one logit per running-parameter
configuration; in cluster mode, cluster logits are produced from the mean of
the member queries' representations (the paper pools member embeddings when
scheduling at cluster granularity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..encoder import BatchedStateRepresentation, SchedulingSnapshot, StateEncoder, StateRepresentation
from ..exceptions import SchedulingError
from ..nn import MLP, Module, Tensor, fastinfer, masked_log_softmax, no_grad, stack
from ..nn.backend import InferenceBackend

__all__ = ["ActorCriticNetwork", "PolicyDecision"]


@dataclass(frozen=True)
class PolicyDecision:
    """Result of sampling one action from the policy."""

    action: int
    log_prob: float
    value: float


def _cluster_member_indices(clusters, snapshot: SchedulingSnapshot) -> list[np.ndarray]:
    """Per-cluster member index arrays to pool, one entry per cluster.

    Pending members are pooled when any remain; a fully drained cluster
    falls back to all of its members so its token stays well-defined.
    """
    pending = set(snapshot.pending_ids)
    indices = []
    for cluster_id in range(clusters.num_clusters):
        members = [qid for qid in clusters.members(cluster_id) if qid in pending]
        if not members:
            members = list(clusters.members(cluster_id))
        indices.append(np.asarray(members, dtype=np.int64))
    return indices


class ActorCriticNetwork(Module):
    """Policy, value and auxiliary heads over the shared state encoder."""

    def __init__(
        self,
        state_encoder: StateEncoder,
        num_configs: int,
        rng: np.random.Generator,
        head_hidden: int = 64,
    ) -> None:
        super().__init__()
        if num_configs < 1:
            raise SchedulingError("num_configs must be >= 1")
        self.state_encoder = state_encoder
        self.num_configs = num_configs
        state_dim = state_encoder.config.state_dim
        self.policy_head = MLP([state_dim, head_hidden, num_configs], rng, activation="tanh")
        self.value_head = MLP([state_dim, head_hidden, 1], rng, activation="tanh")
        self.aux_head = MLP([state_dim, head_hidden, 1], rng, activation="tanh")

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    def representation(self, plan_embeddings: np.ndarray, snapshot: SchedulingSnapshot) -> StateRepresentation:
        """Shared state representation for one snapshot."""
        return self.state_encoder(plan_embeddings, snapshot)

    def action_logits(
        self,
        representation: StateRepresentation,
        snapshot: SchedulingSnapshot,
        clusters=None,
    ) -> Tensor:
        """Flat action logits (query- or cluster-level) of shape ``(action_dim,)``."""
        if clusters is None:
            per_query_logits = self.policy_head(representation.per_query)
            return per_query_logits.reshape(representation.num_queries * self.num_configs)
        cluster_tokens = [
            representation.per_query[members].mean(axis=0)
            for members in _cluster_member_indices(clusters, snapshot)
        ]
        pooled = stack(cluster_tokens, axis=0)
        cluster_logits = self.policy_head(pooled)
        return cluster_logits.reshape(clusters.num_clusters * self.num_configs)

    def state_value(self, representation: StateRepresentation) -> Tensor:
        """Scalar state value from the global representation."""
        return self.value_head(representation.global_state).reshape(1)

    def auxiliary_times(self, representation: StateRepresentation) -> Tensor:
        """Predicted remaining time per query (the IQ-PPO auxiliary output)."""
        return self.aux_head(representation.per_query).reshape(representation.num_queries)

    # ------------------------------------------------------------------ #
    # Batched forward passes (the vectorized hot path)
    # ------------------------------------------------------------------ #
    def encode_batch(
        self, plan_embeddings: np.ndarray, snapshots: list[SchedulingSnapshot]
    ) -> BatchedStateRepresentation:
        """Shared state representations for B snapshots in one stacked forward."""
        return self.state_encoder.encode_batch(plan_embeddings, snapshots)

    def action_logits_batch(
        self,
        representation: BatchedStateRepresentation,
        snapshots: list[SchedulingSnapshot],
        clusters=None,
    ) -> Tensor:
        """Flat action logits of shape ``(batch, action_dim)``."""
        batch = representation.batch_size
        if clusters is None:
            logits = self.policy_head(representation.per_query)
            return logits.reshape(batch, representation.num_queries * self.num_configs)
        # Cluster pooling depends on each snapshot's pending set, so the member
        # gathering stays per-snapshot; the policy head still runs stacked.
        pooled_rows = []
        for index, snapshot in enumerate(snapshots):
            per_query = representation.per_query[index]
            tokens = [
                per_query[members].mean(axis=0)
                for members in _cluster_member_indices(clusters, snapshot)
            ]
            pooled_rows.append(stack(tokens, axis=0))
        pooled = stack(pooled_rows, axis=0)
        return self.policy_head(pooled).reshape(batch, clusters.num_clusters * self.num_configs)

    def state_values_batch(self, representation: BatchedStateRepresentation) -> Tensor:
        """State values of shape ``(batch,)``."""
        return self.value_head(representation.global_state).reshape(representation.batch_size)

    def auxiliary_times_batch(self, representation: BatchedStateRepresentation) -> Tensor:
        """Predicted remaining times of shape ``(batch, n)``."""
        return self.aux_head(representation.per_query).reshape(
            representation.batch_size, representation.num_queries
        )

    # ------------------------------------------------------------------ #
    # Acting and evaluation
    # ------------------------------------------------------------------ #
    def act(
        self,
        plan_embeddings: np.ndarray,
        snapshot: SchedulingSnapshot,
        mask: np.ndarray,
        rng: np.random.Generator,
        greedy: bool = False,
        clusters=None,
        backend: InferenceBackend | None = None,
    ) -> PolicyDecision:
        """Sample (or greedily pick) an action without building a gradient tape.

        ``backend`` may provide the whole scalar forward
        (:meth:`~repro.nn.backend.InferenceBackend.scalar_forward`); backends
        that return ``None`` — including both NumPy backends — keep the
        reference tensor forward below, so the default path is unchanged.
        """
        forward = (
            backend.scalar_forward(self, plan_embeddings, snapshot, mask, clusters=clusters)
            if backend is not None
            else None
        )
        if forward is not None:
            log_probs, value = forward
        else:
            with no_grad():
                representation = self.representation(plan_embeddings, snapshot)
                logits = self.action_logits(representation, snapshot, clusters=clusters)
                log_probs = masked_log_softmax(logits, mask).data
                value = float(self.state_value(representation).data[0])
        if greedy:
            action = int(np.argmax(log_probs))
        else:
            probs = np.exp(log_probs)
            probs = probs / probs.sum()
            action = int(rng.choice(len(probs), p=probs))
        return PolicyDecision(action=action, log_prob=float(log_probs[action]), value=value)

    def evaluate_action(
        self,
        plan_embeddings: np.ndarray,
        snapshot: SchedulingSnapshot,
        action: int,
        mask: np.ndarray,
        clusters=None,
    ) -> tuple[Tensor, Tensor, Tensor, Tensor]:
        """Differentiable evaluation of one stored transition.

        Returns ``(log_prob_of_action, entropy, value, full_log_probs)``.
        """
        representation = self.representation(plan_embeddings, snapshot)
        logits = self.action_logits(representation, snapshot, clusters=clusters)
        log_probs = masked_log_softmax(logits, mask)
        log_prob = log_probs[action]
        probs = log_probs.exp()
        entropy = -(probs * log_probs).sum()
        value = self.state_value(representation)
        return log_prob, entropy, value, log_probs

    def act_batch(
        self,
        plan_embeddings: np.ndarray,
        snapshots: list[SchedulingSnapshot],
        masks: np.ndarray,
        rng: np.random.Generator,
        greedy: bool = False,
        clusters=None,
        backend: InferenceBackend | None = None,
    ) -> list[PolicyDecision]:
        """Sample one action per snapshot from a single stacked forward pass.

        ``masks`` is the ``(batch, action_dim)`` stack of per-env action masks.
        Sampling consumes ``rng`` once per snapshot, in order, mirroring the
        sequential :meth:`act` calls it replaces.  The whole forward runs on
        the tape-free NumPy inference path — rollouts never differentiate.

        ``backend`` swaps the encoder forward (and optionally the heads) for
        an :class:`~repro.nn.backend.InferenceBackend` implementation;
        ``None`` is the reference path.  Sampling itself (masked softmax,
        the inverse-CDF draw) is shared below, so RNG consumption is
        identical across backends.
        """
        batch = len(snapshots)
        masks = np.asarray(masks, dtype=bool)
        if backend is None:
            per_query, global_state = self.state_encoder.encode_batch_arrays(plan_embeddings, snapshots)
            heads = None
        else:
            per_query, global_state = backend.encode_batch(self.state_encoder, plan_embeddings, snapshots)
            heads = backend.heads_batch(self, per_query, global_state, snapshots, clusters=clusters)
        if heads is not None:
            logits, values = heads
        elif clusters is None:
            logits = fastinfer.mlp_forward(self.policy_head, per_query).reshape(batch, -1)
        else:
            pooled = np.empty((batch, clusters.num_clusters, per_query.shape[2]), dtype=per_query.dtype)
            for index, snapshot in enumerate(snapshots):
                for cluster_id, members in enumerate(_cluster_member_indices(clusters, snapshot)):
                    pooled[index, cluster_id] = per_query[index][members].mean(axis=0)
            logits = fastinfer.mlp_forward(self.policy_head, pooled).reshape(batch, -1)
        log_probs = fastinfer.masked_log_softmax_array(logits, masks)
        if heads is None:
            values = fastinfer.mlp_forward(self.value_head, global_state).reshape(batch)
        if greedy:
            actions = np.argmax(log_probs, axis=1)
        else:
            probs = np.exp(log_probs)
            probs = probs / probs.sum(axis=1, keepdims=True)
            cdf = np.cumsum(probs, axis=1)
            uniforms = rng.random(batch)
            # Clamp the inverse-CDF count into each row's unmasked range:
            # float32 rounding can leave cdf[-1] slightly below 1 (count
            # overflows into the masked zero-probability tail), and a uniform
            # draw of exactly 0.0 would select a masked leading action.
            first_allowed = np.argmax(masks, axis=1)
            last_allowed = masks.shape[1] - 1 - np.argmax(masks[:, ::-1], axis=1)
            actions = np.clip((cdf < uniforms[:, None]).sum(axis=1), first_allowed, last_allowed)
        return [
            PolicyDecision(action=int(action), log_prob=float(log_probs[row, action]), value=float(value))
            for row, (action, value) in enumerate(zip(actions, values))
        ]

    def evaluate_actions_batch(
        self,
        plan_embeddings: np.ndarray,
        snapshots: list[SchedulingSnapshot],
        actions: np.ndarray,
        masks: np.ndarray,
        clusters=None,
    ) -> tuple[Tensor, Tensor, Tensor, Tensor]:
        """Differentiable evaluation of a whole minibatch in one forward.

        Returns ``(log_probs_of_actions, entropies, values, full_log_probs)``
        with shapes ``(batch,)``, ``(batch,)``, ``(batch,)``, ``(batch, action_dim)``.
        """
        batch = len(snapshots)
        representation = self.encode_batch(plan_embeddings, snapshots)
        logits = self.action_logits_batch(representation, snapshots, clusters=clusters)
        log_probs = masked_log_softmax(logits, masks)
        taken = log_probs[np.arange(batch), np.asarray(actions, dtype=np.int64)]
        probs = log_probs.exp()
        entropies = -(probs * log_probs).sum(axis=-1)
        values = self.state_values_batch(representation)
        return taken, entropies, values, log_probs

    def evaluate_auxiliary_batch(
        self,
        plan_embeddings: np.ndarray,
        snapshots: list[SchedulingSnapshot],
        query_ids: np.ndarray,
        masks: np.ndarray,
        clusters=None,
    ) -> tuple[Tensor, Tensor]:
        """Batched counterpart of :meth:`evaluate_auxiliary`.

        Returns ``(predicted_remaining_times, full_log_probs)`` of shapes
        ``(batch,)`` and ``(batch, action_dim)``.
        """
        batch = len(snapshots)
        representation = self.encode_batch(plan_embeddings, snapshots)
        times = self.auxiliary_times_batch(representation)
        picked = times[np.arange(batch), np.asarray(query_ids, dtype=np.int64)]
        logits = self.action_logits_batch(representation, snapshots, clusters=clusters)
        log_probs = masked_log_softmax(logits, masks)
        return picked, log_probs

    def evaluate_auxiliary(
        self,
        plan_embeddings: np.ndarray,
        snapshot: SchedulingSnapshot,
        query_id: int,
        mask: np.ndarray,
        clusters=None,
    ) -> tuple[Tensor, Tensor]:
        """Differentiable auxiliary prediction for the earliest-finishing query.

        Returns ``(predicted_remaining_time, full_log_probs)`` where the log
        probabilities are needed for the behaviour-cloning KL term.
        """
        representation = self.representation(plan_embeddings, snapshot)
        times = self.auxiliary_times(representation)
        logits = self.action_logits(representation, snapshot, clusters=clusters)
        log_probs = masked_log_softmax(logits, mask)
        return times[query_id], log_probs
