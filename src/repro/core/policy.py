"""Actor-critic network with the shared state representation.

θ_S (the attention-based state encoder), θ_π (policy head), θ_V (value head)
and θ_A (auxiliary finish-time head) from Figure 2.  The policy head maps
each per-query representation ``x''_i`` to one logit per running-parameter
configuration; in cluster mode, cluster logits are produced from the mean of
the member queries' representations (the paper pools member embeddings when
scheduling at cluster granularity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import EncoderConfig
from ..encoder import SchedulingSnapshot, StateEncoder, StateRepresentation
from ..exceptions import SchedulingError
from ..nn import MLP, Module, Tensor, concatenate, masked_log_softmax, no_grad, stack

__all__ = ["ActorCriticNetwork", "PolicyDecision"]


@dataclass(frozen=True)
class PolicyDecision:
    """Result of sampling one action from the policy."""

    action: int
    log_prob: float
    value: float


class ActorCriticNetwork(Module):
    """Policy, value and auxiliary heads over the shared state encoder."""

    def __init__(
        self,
        state_encoder: StateEncoder,
        num_configs: int,
        rng: np.random.Generator,
        head_hidden: int = 64,
    ) -> None:
        super().__init__()
        if num_configs < 1:
            raise SchedulingError("num_configs must be >= 1")
        self.state_encoder = state_encoder
        self.num_configs = num_configs
        state_dim = state_encoder.config.state_dim
        self.policy_head = MLP([state_dim, head_hidden, num_configs], rng, activation="tanh")
        self.value_head = MLP([state_dim, head_hidden, 1], rng, activation="tanh")
        self.aux_head = MLP([state_dim, head_hidden, 1], rng, activation="tanh")

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    def representation(self, plan_embeddings: np.ndarray, snapshot: SchedulingSnapshot) -> StateRepresentation:
        """Shared state representation for one snapshot."""
        return self.state_encoder(plan_embeddings, snapshot)

    def action_logits(
        self,
        representation: StateRepresentation,
        snapshot: SchedulingSnapshot,
        clusters=None,
    ) -> Tensor:
        """Flat action logits (query- or cluster-level) of shape ``(action_dim,)``."""
        if clusters is None:
            per_query_logits = self.policy_head(representation.per_query)
            return per_query_logits.reshape(representation.num_queries * self.num_configs)
        pending = set(snapshot.pending_ids)
        cluster_tokens = []
        for cluster_id in range(clusters.num_clusters):
            members = [qid for qid in clusters.members(cluster_id) if qid in pending]
            if not members:
                members = list(clusters.members(cluster_id))
            member_reps = representation.per_query[np.asarray(members, dtype=np.int64)]
            cluster_tokens.append(member_reps.mean(axis=0))
        pooled = stack(cluster_tokens, axis=0)
        cluster_logits = self.policy_head(pooled)
        return cluster_logits.reshape(clusters.num_clusters * self.num_configs)

    def state_value(self, representation: StateRepresentation) -> Tensor:
        """Scalar state value from the global representation."""
        return self.value_head(representation.global_state).reshape(1)

    def auxiliary_times(self, representation: StateRepresentation) -> Tensor:
        """Predicted remaining time per query (the IQ-PPO auxiliary output)."""
        return self.aux_head(representation.per_query).reshape(representation.num_queries)

    # ------------------------------------------------------------------ #
    # Acting and evaluation
    # ------------------------------------------------------------------ #
    def act(
        self,
        plan_embeddings: np.ndarray,
        snapshot: SchedulingSnapshot,
        mask: np.ndarray,
        rng: np.random.Generator,
        greedy: bool = False,
        clusters=None,
    ) -> PolicyDecision:
        """Sample (or greedily pick) an action without building a gradient tape."""
        with no_grad():
            representation = self.representation(plan_embeddings, snapshot)
            logits = self.action_logits(representation, snapshot, clusters=clusters)
            log_probs = masked_log_softmax(logits, mask).data
            value = float(self.state_value(representation).data[0])
        if greedy:
            action = int(np.argmax(log_probs))
        else:
            probs = np.exp(log_probs)
            probs = probs / probs.sum()
            action = int(rng.choice(len(probs), p=probs))
        return PolicyDecision(action=action, log_prob=float(log_probs[action]), value=value)

    def evaluate_action(
        self,
        plan_embeddings: np.ndarray,
        snapshot: SchedulingSnapshot,
        action: int,
        mask: np.ndarray,
        clusters=None,
    ) -> tuple[Tensor, Tensor, Tensor, Tensor]:
        """Differentiable evaluation of one stored transition.

        Returns ``(log_prob_of_action, entropy, value, full_log_probs)``.
        """
        representation = self.representation(plan_embeddings, snapshot)
        logits = self.action_logits(representation, snapshot, clusters=clusters)
        log_probs = masked_log_softmax(logits, mask)
        log_prob = log_probs[action]
        probs = log_probs.exp()
        entropy = -(probs * log_probs).sum()
        value = self.state_value(representation)
        return log_prob, entropy, value, log_probs

    def evaluate_auxiliary(
        self,
        plan_embeddings: np.ndarray,
        snapshot: SchedulingSnapshot,
        query_id: int,
        mask: np.ndarray,
        clusters=None,
    ) -> tuple[Tensor, Tensor]:
        """Differentiable auxiliary prediction for the earliest-finishing query.

        Returns ``(predicted_remaining_time, full_log_probs)`` where the log
        probabilities are needed for the behaviour-cloning KL term.
        """
        representation = self.representation(plan_embeddings, snapshot)
        times = self.auxiliary_times(representation)
        logits = self.action_logits(representation, snapshot, clusters=clusters)
        log_probs = masked_log_softmax(logits, mask)
        return times[query_id], log_probs
