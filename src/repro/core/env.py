"""The batch-query scheduling environment.

The environment turns the scheduling problem into the sequential decision
process BQSched learns on:

* a *state* is the observable runtime snapshot of every query
  (:class:`repro.encoder.SchedulingSnapshot`);
* an *action* selects the next pending query together with its running
  parameters (or, in cluster mode, the next query cluster and the cluster's
  shared configuration);
* after each submission the clock only advances when no further decision can
  be made (no idle connection or nothing pending), and the per-step *reward*
  is the negative wall-clock time that elapsed, so the episode return is the
  negative makespan the paper optimises.

The environment is backend-agnostic: it drives either the real DBMS
substrate (:class:`repro.dbms.DatabaseEngine`), the learned incremental
simulator (:class:`repro.core.simulator.LearnedSimulator`), or a tenant of
the event-driven :class:`repro.runtime.ExecutionRuntime` — which is exactly
the non-intrusive interface the paper requires.  The environment itself is a
thin runtime client: every round runs through an
:class:`~repro.runtime.ExecutionRuntime` (a private single-tenant one when
the backend is a raw engine/simulator), so closed batches, multi-tenant
shared rounds and streaming arrivals all take the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

import numpy as np

from ..config import SchedulerConfig
from ..dbms import ConfigurationSpace, RunningParameters
from ..dbms.logs import RoundLog
from ..dbms.soa import SOA_DEFERRED
from ..encoder import QueryRuntimeInfo, QueryStatus, SchedulingSnapshot, SnapshotArrays
from ..exceptions import SchedulingError
from ..runtime import ExecutionRuntime, RuntimeTenant
from ..workloads import ArrivalProcess, BatchQuerySet
from .knowledge import ExternalKnowledge
from .masking import AdaptiveMask
from .types import SchedulingResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dbms.engine import RunningQueryState

__all__ = ["SchedulingEnv", "StepResult", "SchedulingSession", "SessionBackend", "drive_service"]

#: Maps backend-observable ``SOA_*`` codes onto the three scheduler-visible
#: status codes (FAILED reads as FINISHED, DEFERRED as PENDING).
_SOA_STATUS_OBS = np.array([0, 1, 2, 2, 0], dtype=np.int8)

#: True exactly for ``SOA_RUNNING`` — one table lookup instead of an
#: equality scan per snapshot build.
_SOA_IS_RUNNING = np.array([False, True, False, False, False])

#: Observable config index per status when the query is *not* running:
#: finished/failed queries report slot 0 (their config one-hot is kept by the
#: AoS path too), pending/deferred report -1.  The running entry is a filler —
#: running rows take the live config slot instead.
_SOA_CONFIG_BASE = np.array([-1, 0, 0, 0, -1], dtype=np.int64)


def drive_service(runtime: ExecutionRuntime, envs: "Sequence[SchedulingEnv]", select_action) -> None:
    """Run a multi-tenant round to completion, event-driven.

    The one serve loop shared by :meth:`RLSchedulerBase.serve` and the
    service benchmarks: at every completion or arrival event, every tenant
    whose environment can decide submits (``select_action(env)`` chooses the
    action) before the clock moves again; submissions free up decisions for
    peers, so the inner sweep repeats until no tenant can act, then the
    runtime advances to the next event.  Callers must have ``reset`` every
    environment into the shared round first.
    """
    while True:
        progressed = True
        while progressed:
            progressed = False
            for env in envs:
                while env.can_decide():
                    env.begin_step(select_action(env))
                    progressed = True
        if runtime.is_done:
            break
        runtime.advance()


@runtime_checkable
class SchedulingSession(Protocol):
    """One live scheduling round, as the environment observes and drives it.

    Implemented by the fluid-engine :class:`~repro.dbms.engine.ExecutionSession`,
    the learned-simulator :class:`~repro.core.simulator.SimulatedSession`, and
    the multi-tenant :class:`~repro.runtime.TenantSession`.
    """

    current_time: float
    pending: list[int]
    finished: dict[int, float]
    log: RoundLog

    @property
    def is_done(self) -> bool: ...  # pragma: no cover - protocol

    @property
    def has_idle_connection(self) -> bool: ...  # pragma: no cover - protocol

    @property
    def has_pending(self) -> bool: ...  # pragma: no cover - protocol

    @property
    def num_running(self) -> int: ...  # pragma: no cover - protocol

    @property
    def makespan(self) -> float: ...  # pragma: no cover - protocol

    def running_states(self) -> "list[RunningQueryState]": ...  # pragma: no cover - protocol

    def unarrived_ids(self) -> tuple[int, ...]: ...  # pragma: no cover - protocol

    def arrival_time(self, query_id: int) -> float: ...  # pragma: no cover - protocol

    def submit(self, query_id: int, parameters: RunningParameters) -> int: ...  # pragma: no cover - protocol

    def advance(self, limit: float | None = None) -> object | None: ...  # pragma: no cover - protocol


@runtime_checkable
class SessionBackend(Protocol):
    """Anything that can open scheduling rounds.

    Satisfied by :class:`repro.dbms.DatabaseEngine`,
    :class:`repro.core.simulator.LearnedSimulator` and
    :class:`repro.runtime.RuntimeTenant` (conformance is asserted in
    ``tests/test_session_protocol.py``).
    """

    def new_session(
        self,
        batch: BatchQuerySet,
        num_connections: int | None = None,
        strategy: str = "",
        round_id: int | None = None,
    ) -> SchedulingSession: ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class StepResult:
    """Returned by :meth:`SchedulingEnv.step`."""

    snapshot: SchedulingSnapshot
    reward: float
    done: bool
    info: dict


class SchedulingEnv:
    """Gym-style environment over one batch query set and one backend."""

    def __init__(
        self,
        batch: BatchQuerySet,
        backend: SessionBackend,
        scheduler_config: SchedulerConfig,
        config_space: ConfigurationSpace,
        knowledge: ExternalKnowledge,
        mask: AdaptiveMask | None = None,
        clusters=None,
        strategy_name: str = "rl",
        arrivals: "ArrivalProcess | Sequence[float] | None" = None,
        tenant_class=None,
    ) -> None:
        self.batch = batch
        self.backend = backend
        self.scheduler_config = scheduler_config
        self.config_space = config_space
        self.knowledge = knowledge
        self.num_configs = len(config_space)
        if mask is None:
            mask = AdaptiveMask.unmasked(len(batch), self.num_configs)
        elif mask.num_queries < len(batch):
            # A mask built from a smaller probed set (e.g. before extra trace
            # queries were appended) grows to cover the full batch; the new
            # queries default to every configuration.
            mask = mask.extended(len(batch))
        self.mask = mask
        self.clusters = clusters
        self.strategy_name = strategy_name
        self.arrivals = arrivals
        if isinstance(backend, RuntimeTenant):
            if arrivals is not None:
                raise SchedulingError("arrivals are configured when registering the runtime tenant")
            if tenant_class is not None:
                raise SchedulingError(
                    "the tenant class is configured when registering the runtime tenant"
                )
            self._tenant = backend
        else:
            self._tenant = ExecutionRuntime(backend).register(
                "env", self.batch, arrivals=arrivals, tenant_class=tenant_class
            )
        self._session = None
        self._last_time = 0.0
        self._last_failures = 0
        self._last_slo_misses = 0
        self._cluster_remaining: list[list[int]] = []
        self._round_counter = 0
        self._static_infos: dict[tuple[int, QueryStatus], QueryRuntimeInfo] = {}
        # Fast-snapshot columns (rebuilt per reset, when knowledge may have
        # been refreshed): per-query average expected time, and the config
        # index / expected time recorded at each submission so the snapshot
        # never re-derives them per step.
        self._soa_avg_expected: np.ndarray | None = None
        self._soa_config_slots: np.ndarray | None = None
        self._soa_expected_slots: np.ndarray | None = None

    @property
    def runtime(self) -> ExecutionRuntime:
        """The event-driven runtime this environment schedules through."""
        return self._tenant.runtime

    # ------------------------------------------------------------------ #
    # Action space
    # ------------------------------------------------------------------ #
    @property
    def cluster_mode(self) -> bool:
        return self.clusters is not None

    @property
    def num_action_slots(self) -> int:
        """Number of selectable entities (queries, or clusters in cluster mode)."""
        return self.clusters.num_clusters if self.cluster_mode else len(self.batch)

    @property
    def configs_per_slot(self) -> int:
        """Flat choices per slot: the running-parameter configurations here.

        :class:`~repro.core.cluster_env.ClusterSchedulingEnv` widens this to
        ``num_instances * num_configs`` — each slot choice then jointly picks
        a placement and a configuration.
        """
        return self.num_configs

    @property
    def action_dim(self) -> int:
        """Size of the flat action space ``slots * configs_per_slot``."""
        return self.num_action_slots * self.configs_per_slot

    def encode_action(self, slot: int, config_index: int) -> int:
        """Flatten (query-or-cluster index, per-slot choice) into one action id."""
        if not 0 <= slot < self.num_action_slots:
            raise SchedulingError(f"slot {slot} out of range")
        if not 0 <= config_index < self.configs_per_slot:
            raise SchedulingError(f"config index {config_index} out of range")
        return slot * self.configs_per_slot + config_index

    def decode_action(self, action: int) -> tuple[int, int]:
        """Inverse of :meth:`encode_action`."""
        if not 0 <= action < self.action_dim:
            raise SchedulingError(f"action {action} out of range (dim={self.action_dim})")
        return action // self.configs_per_slot, action % self.configs_per_slot

    def action_mask(self) -> np.ndarray:
        """Boolean mask of currently valid actions."""
        self._require_session()
        if not self.cluster_mode:
            return self.mask.action_mask(self._session.pending)
        mask = np.zeros(self.action_dim, dtype=bool)
        for cluster_id, remaining in enumerate(self._cluster_remaining):
            if not remaining:
                continue
            allowed = self._cluster_allowed_configs(cluster_id)
            for config_index in allowed:
                mask[cluster_id * self.num_configs + config_index] = True
        return mask

    def _cluster_allowed_configs(self, cluster_id: int) -> list[int]:
        """A configuration is allowed at cluster level unless every member masks it."""
        members = self.clusters.members(cluster_id)
        allowed: set[int] = set()
        for query_id in members:
            allowed.update(self.mask.allowed_configs(query_id))
        return sorted(allowed) if allowed else list(range(self.num_configs))

    # ------------------------------------------------------------------ #
    # Episode control
    # ------------------------------------------------------------------ #
    def reset(self, round_id: int | None = None, strategy: str | None = None) -> SchedulingSnapshot:
        """Start a new scheduling round and return the initial snapshot.

        An explicit ``round_id`` (e.g. an evaluation round at 10_000+) leaves
        the auto-increment counter untouched, so subsequent auto-numbered
        rounds continue from where they left off instead of jumping past it.
        """
        if round_id is None:
            round_id = self._round_counter
            self._round_counter += 1
        self._session = self._tenant.new_session(
            self.batch,
            num_connections=self.scheduler_config.num_connections,
            strategy=strategy or self.strategy_name,
            round_id=round_id,
        )
        self._last_time = 0.0
        self._last_failures = 0
        self._last_slo_misses = 0
        self._static_infos.clear()
        self._soa_avg_expected = np.array(
            [self.knowledge.average_time(query.query_id) for query in self.batch], dtype=np.float64
        )
        self._soa_config_slots = np.zeros(len(self.batch), dtype=np.int64)
        self._soa_expected_slots = np.zeros(len(self.batch), dtype=np.float64)
        if self.cluster_mode:
            self._cluster_remaining = [list(self.clusters.intra_order(c)) for c in range(self.clusters.num_clusters)]
        return self.snapshot()

    def step(self, action: int) -> StepResult:
        """Apply one scheduling decision and advance the round as far as possible."""
        self._require_session()
        slot, config_index = self.decode_action(action)
        time_before = self._session.current_time
        if self.cluster_mode:
            self._submit_cluster(slot, config_index)
        else:
            self._submit_query(slot, config_index)

        # Advance the clock until another decision is possible or the round ends.
        while self.needs_advance():
            self._session.advance()
        return self.finish_step(time_before)

    def begin_step(self, action: int) -> float:
        """Submit the decision without advancing the clock; returns the submit time.

        Part of the decomposed step used by the vectorized engine, which
        interleaves the clock advances of N environments so their simulator
        predictions can run as one batched forward
        (:meth:`VectorSchedulingEnv.step_many`).  The caller must drive
        :meth:`needs_advance` / the session's advance to completion and then
        call :meth:`finish_step`.  Not available in cluster mode, whose
        submission itself interleaves advances.
        """
        self._require_session()
        if self.cluster_mode:
            raise SchedulingError("begin_step is not available in cluster mode")
        slot, config_index = self.decode_action(action)
        time_before = self._session.current_time
        self._submit_query(slot, config_index)
        return time_before

    def needs_advance(self) -> bool:
        """Whether the clock must advance before another decision is possible."""
        return not self._session.is_done and not self.can_decide()

    def finish_step(self, time_before: float) -> StepResult:
        """Build the :class:`StepResult` once the advance loop has converged.

        Failed/killed attempts observed since the previous step charge
        ``SchedulerConfig.failure_penalty`` each on top of the elapsed-time
        reward: the makespan alone under-prices wasted work, because a killed
        attempt freed its connection while the time it burned helped nobody.

        SLO-aware serving (opt-in via ``SchedulerConfig.slo_penalty`` /
        ``fairness_weight``) shapes further: each completion that missed the
        tenant class's latency SLO since the previous step charges
        ``slo_penalty``, and a fairness term charges
        ``fairness_weight * priority * elapsed * backlog`` so letting a
        high-priority tenant's pending work age is priced higher than letting
        a batch tenant's.  Both default to zero, leaving rewards bit-identical
        for existing trained policies.
        """
        elapsed = self._session.current_time - time_before
        reward = -elapsed * self.scheduler_config.reward_scale - self.scheduler_config.step_penalty
        failures = getattr(self._session, "num_failed_attempts", 0)
        if failures:
            new_failures = failures - self._last_failures
            self._last_failures = failures
            if new_failures > 0 and self.scheduler_config.failure_penalty:
                reward -= new_failures * self.scheduler_config.failure_penalty
        if self.scheduler_config.slo_penalty:
            misses = getattr(self._session, "num_slo_misses", 0)
            new_misses = misses - self._last_slo_misses
            self._last_slo_misses = misses
            if new_misses > 0:
                reward -= new_misses * self.scheduler_config.slo_penalty
        if self.scheduler_config.fairness_weight and elapsed > 0:
            priority, _ = self._slo_context()
            if priority > 0:
                backlog = len(self._session.pending)
                reward -= self.scheduler_config.fairness_weight * priority * elapsed * backlog
        done = self._session.is_done
        snapshot = self.snapshot()
        info = {"time": self._session.current_time, "makespan": self._session.makespan if done else None}
        if failures:
            info["failed_attempts"] = failures
        return StepResult(snapshot=snapshot, reward=reward, done=done, info=info)

    def result(self) -> SchedulingResult:
        """Return the finished round as a :class:`SchedulingResult`."""
        self._require_session()
        if not self._session.is_done:
            raise SchedulingError("the current round has not finished yet")
        return SchedulingResult(
            strategy=self.strategy_name,
            makespan=self._session.makespan,
            round_log=self._session.log,
        )

    # ------------------------------------------------------------------ #
    # Submission helpers
    # ------------------------------------------------------------------ #
    def _submit_query(self, query_id: int, config_index: int) -> None:
        if query_id not in self._session.pending:
            raise SchedulingError(f"query {query_id} is not pending")
        if not self.mask.is_allowed(query_id, config_index):
            raise SchedulingError(f"configuration {config_index} is masked for query {query_id}")
        params = self.config_space[config_index]
        self._session.submit(query_id, params)
        self._record_submission(query_id, params)

    def _submit_cluster(self, cluster_id: int, config_index: int) -> None:
        remaining = self._cluster_remaining[cluster_id]
        if not remaining:
            raise SchedulingError(f"cluster {cluster_id} has no remaining queries")
        cluster_params = self.config_space[config_index]
        # Drain the selected cluster: fill idle connections, advancing the
        # clock in between, until every member query has been submitted.
        while remaining:
            while remaining and self._session.has_idle_connection:
                query_id = remaining.pop(0)
                params = self._resolve_cluster_config(query_id, cluster_params, config_index)
                self._session.submit(query_id, params)
                self._record_submission(query_id, params)
            if remaining:
                self._session.advance()

    def _resolve_cluster_config(
        self, query_id: int, cluster_params: RunningParameters, config_index: int
    ) -> RunningParameters:
        """Use the cluster configuration unless the query's own mask forbids it."""
        if self.mask.is_allowed(query_id, config_index):
            return cluster_params
        allowed = self.mask.allowed_configs(query_id)
        return self.config_space.closest_to(cluster_params, allowed=allowed)

    def _record_submission(self, query_id: int, parameters: RunningParameters) -> None:
        """Capture the submitted configuration for the fast snapshot path.

        The AoS snapshot re-derives ``index_of(state.parameters)`` and the
        expected time on every step; recording both once at submission keeps
        the SoA snapshot free of per-query lookups.  ``parameters`` is the
        *actually submitted* configuration (cluster drains may substitute
        the closest allowed one), so ``index_of`` matches what the AoS path
        reads back from the running state.
        """
        if self._soa_config_slots is None or self._soa_expected_slots is None:
            return
        config_index = self.config_space.index_of(parameters)
        self._soa_config_slots[query_id] = config_index
        self._soa_expected_slots[query_id] = self.knowledge.expected_time(query_id, config_index)

    def can_decide(self) -> bool:
        """Whether a scheduling decision is possible right now.

        Public because event-driven drivers (``BQSched.serve``) interleave
        decisions of several tenants at every runtime event: after each
        event, every tenant whose environment can decide submits before the
        clock moves again.
        """
        self._require_session()
        if not self._session.has_idle_connection:
            return False
        if self.cluster_mode:
            return any(self._cluster_remaining)
        return self._session.has_pending

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def _slo_context(self) -> tuple[float, float]:
        """The observing tenant's (priority, deadline slack) at this instant.

        Both are 0.0 unless the session belongs to a runtime tenant with a
        :class:`~repro.runtime.TenantClass` — which keeps classless snapshots
        bit-compatible.  Slack counts down from the class's deadline budget
        as the round ages and goes negative once exhausted, giving
        SLO-channel featurizers a bounded time-pressure signal.
        """
        tenant_class = getattr(self._session, "tenant_class", None)
        if tenant_class is None:
            return 0.0, 0.0
        deadline = tenant_class.deadline
        slack = (deadline - self._session.current_time) if deadline is not None else 0.0
        return tenant_class.priority, slack

    def snapshot(self) -> SchedulingSnapshot:
        """Build the observable state of every query at the current instant.

        Queries that have not yet arrived (streaming scenario) are reported
        as pending-but-unavailable: the adaptive mask already excludes them
        from the action space, and ``available``/``time_to_available`` let an
        arrival-aware featurizer expose the distinction.

        Fault-tolerant serving adds two read-outs that stay empty/zero on
        fault-free rounds (keeping those snapshots bit-compatible): per-query
        failed-attempt counts (terminally failed queries report as finished —
        they are as unselectable as completed ones, and their attempt count
        tells them apart), and per-instance health while any instance is
        down.

        When the session maintains SoA state arrays the snapshot is a
        :class:`~repro.encoder.SnapshotArrays` built with a handful of
        whole-array ops — bit-identical to the AoS path (verified by digest
        in ``tests/test_hotpath.py``) and duck-typing its read API; sessions
        without state arrays fall back to :meth:`snapshot_aos`.
        """
        self._require_session()
        arrays = self._snapshot_arrays()
        if arrays is not None:
            return arrays  # type: ignore[return-value]
        return self.snapshot_aos()

    def _snapshot_arrays(self) -> "SnapshotArrays | None":
        """Assemble the SoA snapshot from incrementally-maintained columns."""
        session = self._session
        status_raw = getattr(session, "soa_status", None)
        if status_raw is None or self._soa_config_slots is None:
            return None
        now = session.current_time
        row_version = getattr(session, "soa_row_version", None)
        running = _SOA_IS_RUNNING[status_raw]
        config_index = np.where(running, self._soa_config_slots, _SOA_CONFIG_BASE[status_raw])
        elapsed = np.where(running, now - session.soa_submit_time, 0.0)
        expected = np.where(running, self._soa_expected_slots, self._soa_avg_expected)
        available = status_raw != SOA_DEFERRED
        time_to_available = np.zeros(status_raw.shape[0], dtype=np.float64)
        if not available.all():
            deferred = ~available
            # Mirrors the AoS ``max(0.0, available_at - now)`` exactly:
            # positive waits pass through bit-identically, the rest become
            # positive zero.
            wait = session.soa_available_at[deferred] - now
            wait[wait <= 0.0] = 0.0
            time_to_available[deferred] = wait
        priority, deadline_slack = self._slo_context()
        return SnapshotArrays(
            time=now,
            status=_SOA_STATUS_OBS[status_raw],
            config_index=config_index,
            elapsed=elapsed,
            expected_time=expected,
            available=available,
            time_to_available=time_to_available,
            attempts=session.soa_attempts.copy(),
            instance_context_array=self._instance_context_array(),
            instance_health_array=self._instance_health_array(),
            state_key=session,
            row_version=row_version.copy() if row_version is not None else None,
            priority=priority,
            deadline_slack=deadline_slack,
        )

    def snapshot_aos(self) -> SchedulingSnapshot:
        """Reference AoS snapshot (one frozen info per query).

        Kept as the fallback for sessions without SoA state arrays and as
        the parity reference the digest tests compare the fast path against.
        """
        self._require_session()
        session = self._session
        now = session.current_time
        running = {state.query.query_id: state for state in session.running_states()}
        finished = session.finished
        failed = getattr(session, "failed", None)
        unarrived = frozenset(session.unarrived_ids())
        counts_fn = getattr(session, "failure_counts", None)
        counts: dict[int, int] = counts_fn() if counts_fn is not None else {}
        # A query awaiting its scheduled retry re-arrival is reported like a
        # streaming not-yet-arrived query: pending but unavailable.
        retrying_fn = getattr(session, "retrying_ids", None)
        retrying = frozenset(retrying_fn()) if retrying_fn is not None else frozenset()
        infos = []
        for query in self.batch:
            query_id = query.query_id
            attempts = counts.get(query_id, 0) if counts else 0
            if query_id in running:
                infos.append(self._running_info(query_id, running[query_id], now, attempts=attempts))
            elif (query_id in finished) or (failed and query_id in failed):
                if attempts:
                    infos.append(
                        QueryRuntimeInfo(
                            query_id=query_id,
                            status=QueryStatus.FINISHED,
                            config_index=0,
                            elapsed=0.0,
                            expected_time=self.knowledge.average_time(query_id),
                            attempts=attempts,
                        )
                    )
                else:
                    infos.append(self._static_info(query_id, QueryStatus.FINISHED))
            elif (unarrived and query_id in unarrived) or (retrying and query_id in retrying):
                # An unarrived query becomes available at its arrival time; a
                # query backing off after a failed attempt becomes available
                # at its scheduled retry re-arrival.
                if retrying and query_id in retrying:
                    available_at = self._session.retry_time(query_id)
                else:
                    available_at = self._session.arrival_time(query_id)
                infos.append(
                    QueryRuntimeInfo(
                        query_id=query_id,
                        status=QueryStatus.PENDING,
                        config_index=-1,
                        elapsed=0.0,
                        expected_time=self.knowledge.average_time(query_id),
                        available=False,
                        time_to_available=max(0.0, available_at - now),
                        attempts=attempts,
                    )
                )
            elif attempts:
                infos.append(
                    QueryRuntimeInfo(
                        query_id=query_id,
                        status=QueryStatus.PENDING,
                        config_index=-1,
                        elapsed=0.0,
                        expected_time=self.knowledge.average_time(query_id),
                        attempts=attempts,
                    )
                )
            else:
                infos.append(self._static_info(query_id, QueryStatus.PENDING))
        priority, deadline_slack = self._slo_context()
        return SchedulingSnapshot(
            time=now,
            infos=tuple(infos),
            instance_context=self._instance_context(),
            instance_health=self._instance_health(),
            priority=priority,
            deadline_slack=deadline_slack,
        )

    def _running_info(
        self, query_id: int, state: "RunningQueryState", now: float, attempts: int = 0
    ) -> QueryRuntimeInfo:
        """Observable info of one running query (placement-aware in subclasses)."""
        config_index = self.config_space.index_of(state.parameters)
        return QueryRuntimeInfo(
            query_id=query_id,
            status=QueryStatus.RUNNING,
            config_index=config_index,
            elapsed=now - state.submit_time,
            expected_time=self.knowledge.expected_time(query_id, config_index),
            attempts=attempts,
        )

    def _instance_context(self) -> tuple[tuple[float, ...], ...]:
        """Per-instance context rows for the snapshot (empty off-cluster)."""
        return ()

    def _instance_context_array(self) -> "np.ndarray | None":
        """Array form of :meth:`_instance_context` (``None`` off-cluster)."""
        return None

    def _instance_health_array(self) -> "np.ndarray | None":
        """Array form of :meth:`_instance_health` (``None`` when all up)."""
        health = self._instance_health()
        if not health:
            return None
        return np.array(health, dtype=bool)

    def _instance_health(self) -> tuple[bool, ...]:
        """Per-instance health for the snapshot; empty means everything is up.

        The empty-when-healthy convention keeps fault-free snapshots
        bit-compatible with the pre-fault tree (and with trained policies
        that never saw a health channel).
        """
        health_fn = getattr(self._session, "instance_health", None)
        if health_fn is None:
            return ()
        health = health_fn()
        if all(health):
            return ()
        return tuple(bool(up) for up in health)

    def _static_info(self, query_id: int, status: QueryStatus) -> QueryRuntimeInfo:
        """Cached pending/finished info (immutable within a round).

        Only running queries have step-dependent features; the pending and
        finished entries repeat identically at every decision instant of a
        round, so each is built once per round (the cache clears on reset,
        when knowledge may have been refreshed between rounds).
        """
        key = (query_id, status)
        info = self._static_infos.get(key)
        if info is None:
            info = QueryRuntimeInfo(
                query_id=query_id,
                status=status,
                config_index=0 if status is QueryStatus.FINISHED else -1,
                elapsed=0.0,
                expected_time=self.knowledge.average_time(query_id),
            )
            self._static_infos[key] = info
        return info

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    @property
    def session(self):
        """The live session (read-only access for trainers needing logs)."""
        self._require_session()
        return self._session

    def _require_session(self) -> None:
        if self._session is None:
            raise SchedulingError("call reset() before interacting with the environment")
