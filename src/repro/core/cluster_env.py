"""Scheduling environment over a cluster: joint placement + ordering.

:class:`ClusterSchedulingEnv` generalises :class:`~repro.core.env.SchedulingEnv`
from "pick the next (query, configuration)" to "pick the next (query,
instance, configuration)".  The action space stays *flat* — each per-query
slot fans out into ``num_instances * num_configs`` joint choices — so the
unchanged policy heads and trainers work as-is: an
:class:`~repro.core.policy.ActorCriticNetwork` built with
``num_configs = num_instances * len(config_space)`` emits exactly one logit
per joint choice, and adaptive masking extends naturally to placement by
masking the columns of saturated instances.

Layout of one flat action::

    action = query_id * (num_instances * num_configs)
           + instance * num_configs
           + config_index

At ``num_instances == 1`` every formula collapses to the base environment's,
and the execution path is digest-pinned bit-for-bit against the
pre-refactor tree (``tests/test_cluster.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..config import SchedulerConfig
from ..dbms import Cluster, ConfigurationSpace
from ..encoder import QueryRuntimeInfo, QueryStatus
from ..exceptions import SchedulingError
from ..perf import SimulatedCluster
from ..runtime import RuntimeTenant
from ..workloads import ArrivalProcess, BatchQuerySet
from .env import SchedulingEnv
from .knowledge import ExternalKnowledge
from .masking import AdaptiveMask

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dbms.engine import RunningQueryState
    from ..dbms.params import RunningParameters

__all__ = ["ClusterSchedulingEnv", "cluster_instance_count", "greedy_cost_instance"]


def greedy_cost_instance(
    available: "Sequence[int]",
    outstanding: np.ndarray,
    speeds: "Sequence[float]",
    expected: float,
) -> int:
    """Idle instance minimising ``(outstanding + expected) / speed``.

    The single definition of the greedy-cost placement rule, shared by
    :class:`~repro.core.baselines.GreedyCostPlacementScheduler` and the
    cluster-drain trailing placements of :class:`ClusterSchedulingEnv`.
    Ties break to the lowest instance index.
    """
    if not available:
        raise SchedulingError("no instance has an idle connection")
    return min(
        available,
        key=lambda index: ((outstanding[index] + expected) / max(speeds[index], 1e-9), index),
    )


def cluster_instance_count(backend: object) -> int | None:
    """Instances behind a fleet backend, or ``None`` for single-engine backends.

    The single definition of "is this backend a fleet": a
    :class:`~repro.dbms.Cluster` (or its learned twin, a
    :class:`~repro.perf.SimulatedCluster`) directly, or a
    :class:`~repro.runtime.RuntimeTenant` routing (possibly through nested
    tenants) to one.  Everything that branches on cluster-ness — this
    environment, the facade, ``evaluate_on`` — resolves through here.
    """
    if isinstance(backend, (Cluster, SimulatedCluster)):
        return backend.num_instances
    if isinstance(backend, RuntimeTenant):
        return cluster_instance_count(backend.runtime.backend)
    return None


def _backend_num_instances(backend: object) -> int:
    count = cluster_instance_count(backend)
    if count is None:
        raise SchedulingError(
            "ClusterSchedulingEnv needs a Cluster backend (or a runtime tenant over one), "
            f"got {type(backend).__name__}"
        )
    return count


class ClusterSchedulingEnv(SchedulingEnv):
    """Gym-style environment whose actions place queries across a fleet."""

    def __init__(
        self,
        batch: BatchQuerySet,
        backend,
        scheduler_config: SchedulerConfig,
        config_space: ConfigurationSpace,
        knowledge: ExternalKnowledge,
        mask: AdaptiveMask | None = None,
        clusters=None,
        strategy_name: str = "rl",
        arrivals: "ArrivalProcess | Sequence[float] | None" = None,
    ) -> None:
        self.num_instances = _backend_num_instances(backend)
        super().__init__(
            batch=batch,
            backend=backend,
            scheduler_config=scheduler_config,
            config_space=config_space,
            knowledge=knowledge,
            mask=mask,
            clusters=clusters,
            strategy_name=strategy_name,
            arrivals=arrivals,
        )

    # ------------------------------------------------------------------ #
    # Factored action space
    # ------------------------------------------------------------------ #
    @property
    def configs_per_slot(self) -> int:
        return self.num_instances * self.num_configs

    def encode_placement(self, query_id: int, instance: int, config_index: int) -> int:
        """Flatten a (query, instance, configuration) triple into one action."""
        if not 0 <= instance < self.num_instances:
            raise SchedulingError(f"instance {instance} out of range")
        if not 0 <= config_index < self.num_configs:
            raise SchedulingError(f"config index {config_index} out of range")
        return self.encode_action(query_id, instance * self.num_configs + config_index)

    def decode_placement(self, action: int) -> tuple[int, int, int]:
        """Inverse of :meth:`encode_placement`."""
        slot, joint = self.decode_action(action)
        instance, config_index = divmod(joint, self.num_configs)
        return slot, instance, config_index

    def action_mask(self) -> np.ndarray:
        """Valid (slot, instance, configuration) triples as one flat mask.

        A triple is valid when the slot is selectable (a pending-and-arrived
        query, or a query cluster with members remaining), the configuration
        is allowed by the adaptive mask, and the instance has an idle
        connection (saturated instances mask out whole columns — and so do
        *downed* instances: an instance inside an outage window reports no
        idle connections, so the policy can never place work on it).  Whenever
        :meth:`can_decide` is true at least one entry is set: the adaptive
        mask guarantees every query at least one configuration, and
        ``can_decide`` requires a selectable slot plus an idle instance — so
        a policy softmax over this mask can never collapse to all-masked.
        """
        self._require_session()
        available = np.zeros(self.num_instances, dtype=bool)
        available[self._idle_instances()] = True
        if self.cluster_mode:
            per_slot = np.zeros((self.num_action_slots, self.num_configs), dtype=bool)
            for cluster_id, remaining in enumerate(self._cluster_remaining):
                if remaining:
                    per_slot[cluster_id, self._cluster_allowed_configs(cluster_id)] = True
        else:
            per_slot = self.mask.action_mask(self._session.pending).reshape(len(self.batch), self.num_configs)
        joint = per_slot[:, None, :] & available[None, :, None]
        return joint.reshape(self.action_dim)

    # ------------------------------------------------------------------ #
    # Placement helpers (baselines, context features)
    # ------------------------------------------------------------------ #
    def _idle_instances(self) -> list[int]:
        return self._session.idle_instances()

    def available_instances(self) -> list[int]:
        """Instances currently able to accept a submission."""
        self._require_session()
        return self._idle_instances()

    def instance_speed_factors(self) -> tuple[float, ...]:
        """Per-instance relative hardware speed (fleet mean = 1.0)."""
        self._require_session()
        return self._session.speed_factors()

    def instance_outstanding_work(self) -> np.ndarray:
        """Expected remaining seconds of work per instance, fleet-wide.

        Derived from non-intrusive observables only.  This tenant's own
        running queries are priced exactly: where each was placed, how long
        it has run, and its log-derived expected time under the submitted
        configuration.  Queries placed by *other* tenants sharing the fleet
        are visible only as occupancy (submissions/completions are events
        the scheduler sees), so each foreign running query contributes the
        batch's mean expected time — without this term a load balancer in a
        shared service would steer straight into instances peers have
        saturated.  Single-tenant rounds have no foreign queries and keep
        the exact accounting.
        """
        self._require_session()
        outstanding = np.zeros(self.num_instances, dtype=np.float64)
        own_counts = np.zeros(self.num_instances, dtype=np.int64)
        now = self._session.current_time
        for state in self._session.running_states():
            query_id = state.query.query_id
            instance = self._session.instance_of(query_id)
            if instance < 0:
                continue
            config_index = self.config_space.index_of(state.parameters)
            expected = self.knowledge.expected_time(query_id, config_index)
            outstanding[instance] += max(0.0, expected - (now - state.submit_time))
            own_counts[instance] += 1
        totals = np.asarray(self._session.instance_num_running(), dtype=np.int64)
        foreign = np.clip(totals - own_counts, 0, None)
        if foreign.any():
            mean_expected = float(
                np.mean([self.knowledge.average_time(query.query_id) for query in self.batch])
            )
            outstanding += foreign * mean_expected
        return outstanding

    def _greedy_instance(self, query_id: int) -> int:
        """Greedy-cost placement for the trailing members of a drained cluster.

        The joint action only picks the placement of the cluster's first
        submission; the rest follow :func:`greedy_cost_instance`, priced by
        the environment's external knowledge.
        """
        return greedy_cost_instance(
            self._idle_instances(),
            self.instance_outstanding_work(),
            self._session.speed_factors(),
            self.knowledge.average_time(query_id),
        )

    # ------------------------------------------------------------------ #
    # Overridden submission / observation hooks
    # ------------------------------------------------------------------ #
    def _submit_query(self, query_id: int, joint_index: int) -> None:
        instance, config_index = divmod(joint_index, self.num_configs)
        if query_id not in self._session.pending:
            raise SchedulingError(f"query {query_id} is not pending")
        if not self.mask.is_allowed(query_id, config_index):
            raise SchedulingError(f"configuration {config_index} is masked for query {query_id}")
        params = self.config_space[config_index]
        self._session.submit(query_id, params, instance=instance)
        self._record_submission(query_id, params)

    def _submit_cluster(self, cluster_id: int, joint_index: int) -> None:
        """Drain one query cluster across the fleet.

        The joint action fixes the cluster's shared configuration and the
        placement of its *first* submission; the remaining members follow
        greedily (least expected completion among idle instances), advancing
        the clock whenever the whole fleet saturates — the fleet counterpart
        of the base environment's back-to-back cluster drain.
        """
        instance, config_index = divmod(joint_index, self.num_configs)
        remaining = self._cluster_remaining[cluster_id]
        if not remaining:
            raise SchedulingError(f"cluster {cluster_id} has no remaining queries")
        cluster_params = self.config_space[config_index]
        first = True
        while remaining:
            while remaining and self._session.has_idle_connection:
                query_id = remaining.pop(0)
                params = self._resolve_cluster_config(query_id, cluster_params, config_index)
                if first and instance in self._idle_instances():
                    target = instance
                else:
                    target = self._greedy_instance(query_id)
                first = False
                self._session.submit(query_id, params, instance=target)
                self._record_submission(query_id, params)
            if remaining:
                self._session.advance()

    def _running_info(
        self, query_id: int, state: "RunningQueryState", now: float, attempts: int = 0
    ) -> QueryRuntimeInfo:
        """Joint (instance, configuration) one-hot index for running queries."""
        config_index = self.config_space.index_of(state.parameters)
        instance = max(0, self._session.instance_of(query_id))
        return QueryRuntimeInfo(
            query_id=query_id,
            status=QueryStatus.RUNNING,
            config_index=instance * self.num_configs + config_index,
            elapsed=now - state.submit_time,
            expected_time=self.knowledge.expected_time(query_id, config_index),
            attempts=attempts,
        )

    def _record_submission(self, query_id: int, parameters: "RunningParameters") -> None:
        """Record the joint (instance, configuration) index for the SoA path.

        Placement is read back from the session (the cluster drain picks
        greedy targets the caller never sees); the expected time keys on the
        raw configuration index, exactly as :meth:`_running_info` does.
        """
        if self._soa_config_slots is None or self._soa_expected_slots is None:
            return
        config_index = self.config_space.index_of(parameters)
        instance = max(0, self._session.instance_of(query_id))
        self._soa_config_slots[query_id] = instance * self.num_configs + config_index
        self._soa_expected_slots[query_id] = self.knowledge.expected_time(query_id, config_index)

    def _instance_context(self) -> tuple[tuple[float, ...], ...]:
        context = self._session.instance_context()
        if context is None:
            return ()
        return tuple(tuple(float(value) for value in row) for row in context)

    def _instance_context_array(self) -> "np.ndarray | None":
        return self._session.instance_context()
