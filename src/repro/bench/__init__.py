"""Benchmark harness: scenarios, effort profiles, paper-vs-measured reporting."""

from .harness import (
    BenchProfile,
    HEURISTICS,
    Scenario,
    cluster_env,
    evaluate_heuristics,
    evaluate_placement_baselines,
    evaluate_rl,
    evaluate_service,
    get_profile,
    run_strategy_comparison,
)
from .profiling import (
    PROFILING_ENV,
    SectionTimers,
    profile_call,
    profiling_enabled,
    write_profile_json,
)
from .reporting import ComparisonRow, format_table, print_table, render_gantt, results_dir, write_json_report
from . import paper_values

__all__ = [
    "BenchProfile",
    "HEURISTICS",
    "Scenario",
    "cluster_env",
    "evaluate_heuristics",
    "evaluate_placement_baselines",
    "evaluate_rl",
    "evaluate_service",
    "get_profile",
    "run_strategy_comparison",
    "PROFILING_ENV",
    "SectionTimers",
    "profile_call",
    "profiling_enabled",
    "write_profile_json",
    "ComparisonRow",
    "format_table",
    "print_table",
    "render_gantt",
    "results_dir",
    "write_json_report",
    "paper_values",
]
