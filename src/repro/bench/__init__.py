"""Benchmark harness: scenarios, effort profiles, paper-vs-measured reporting."""

from .harness import (
    BenchProfile,
    HEURISTICS,
    Scenario,
    evaluate_heuristics,
    evaluate_rl,
    get_profile,
    run_strategy_comparison,
)
from .reporting import ComparisonRow, format_table, print_table, render_gantt
from . import paper_values

__all__ = [
    "BenchProfile",
    "HEURISTICS",
    "Scenario",
    "evaluate_heuristics",
    "evaluate_rl",
    "get_profile",
    "run_strategy_comparison",
    "ComparisonRow",
    "format_table",
    "print_table",
    "render_gantt",
    "paper_values",
]
