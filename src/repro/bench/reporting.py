"""Plain-text reporting helpers for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports, with the paper's value (where available) next to the value
measured on the synthetic substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComparisonRow", "format_table", "print_table", "render_gantt"]


@dataclass(frozen=True)
class ComparisonRow:
    """One row of a paper-vs-measured comparison."""

    label: str
    measured: float
    paper: float | None = None
    unit: str = "s"

    @property
    def ratio(self) -> float | None:
        if self.paper in (None, 0.0):
            return None
        return self.measured / self.paper


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> None:
    print()
    print(format_table(headers, rows, title=title))


def render_gantt(timeline: dict[int, list[tuple[int, float, float]]], width: int = 78) -> str:
    """ASCII Gantt chart of a scheduling plan (the reproduction of Figure 9).

    ``timeline`` maps connection ids to ``(query_id, start, end)`` bars, as
    produced by :meth:`repro.core.SchedulingResult.connection_timeline`.
    """
    if not timeline:
        return "(empty schedule)"
    horizon = max(end for bars in timeline.values() for _, _, end in bars)
    if horizon <= 0:
        return "(empty schedule)"
    lines = [f"connection timeline (0 .. {horizon:.2f}s)"]
    for connection in sorted(timeline):
        row = [" "] * width
        for query_id, start, end in timeline[connection]:
            left = int(start / horizon * (width - 1))
            right = max(left + 1, int(end / horizon * (width - 1)))
            label = str(query_id)
            for pos in range(left, min(right, width)):
                row[pos] = "="
            for offset, char in enumerate(label):
                if left + offset < width:
                    row[left + offset] = char
        lines.append(f"c{connection:02d} |{''.join(row)}|")
    return "\n".join(lines)
