"""Reporting helpers for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports, with the paper's value (where available) next to the value
measured on the synthetic substrate — and additionally emits a
machine-readable JSON result via :func:`write_json_report`, so the
performance trajectory of the reproduction can be tracked across PRs
(``benchmarks/run_all.py`` aggregates them).
"""

from __future__ import annotations

import json
import math
import os
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = [
    "ComparisonRow",
    "format_table",
    "print_table",
    "render_gantt",
    "results_dir",
    "write_json_report",
]

#: Environment variable overriding where JSON benchmark results are written.
RESULTS_DIR_ENV = "REPRO_BENCH_RESULTS"
_DEFAULT_RESULTS_DIR = "benchmarks/results"

#: Bump when the JSON result layout changes incompatibly.
SCHEMA_VERSION = 1


def results_dir() -> Path:
    """Directory JSON benchmark results are written to (created on demand)."""
    return Path(os.environ.get(RESULTS_DIR_ENV, _DEFAULT_RESULTS_DIR))


def _json_safe(value: Any) -> Any:
    """Best-effort conversion of benchmark payloads to JSON-serialisable data.

    Non-finite floats (``nan``/``inf`` — e.g. the metrics of a simulator
    evaluated on an empty log) serialise as ``null``: ``json.dumps`` would
    otherwise emit bare ``NaN``/``Infinity`` tokens, which are not valid JSON
    and break every downstream consumer of the result files.
    """
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if hasattr(value, "item") and callable(value.item) and getattr(value, "shape", None) == ():
        return _json_safe(value.item())  # 0-d numpy scalar
    if hasattr(value, "tolist") and callable(value.tolist):
        return _json_safe(value.tolist())  # numpy array
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return repr(value)


def write_json_report(name: str, payload: dict, directory: "str | Path | None" = None) -> Path:
    """Write one benchmark's machine-readable result and return its path.

    The file lands in ``directory`` (default: ``$REPRO_BENCH_RESULTS`` or
    ``benchmarks/results``) as ``<name>.json`` with a small envelope —
    schema version, effort profile, python version — around the
    benchmark-specific ``payload``.
    """
    target = Path(directory) if directory is not None else results_dir()
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"{name}.json"
    document = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "profile": os.environ.get("REPRO_BENCH_PROFILE", "quick"),
        "python": platform.python_version(),
        "payload": _json_safe(payload),
    }
    with path.open("w", encoding="utf-8") as handle:
        # allow_nan=False backstops the sanitiser: a non-finite float that
        # slipped through would raise here instead of writing invalid JSON.
        json.dump(document, handle, indent=2, sort_keys=True, allow_nan=False)
        handle.write("\n")
    return path


@dataclass(frozen=True)
class ComparisonRow:
    """One row of a paper-vs-measured comparison."""

    label: str
    measured: float
    paper: float | None = None
    unit: str = "s"

    @property
    def ratio(self) -> float | None:
        if self.paper in (None, 0.0):
            return None
        return self.measured / self.paper


def format_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> str:
    """Render a simple fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def print_table(headers: list[str], rows: list[list[str]], title: str | None = None) -> None:
    print()
    print(format_table(headers, rows, title=title))


def render_gantt(timeline: dict[int, list[tuple[int, float, float]]], width: int = 78) -> str:
    """ASCII Gantt chart of a scheduling plan (the reproduction of Figure 9).

    ``timeline`` maps connection ids to ``(query_id, start, end)`` bars, as
    produced by :meth:`repro.core.SchedulingResult.connection_timeline`.
    """
    if not timeline:
        return "(empty schedule)"
    horizon = max(end for bars in timeline.values() for _, _, end in bars)
    if horizon <= 0:
        return "(empty schedule)"
    lines = [f"connection timeline (0 .. {horizon:.2f}s)"]
    for connection in sorted(timeline):
        row = [" "] * width
        for query_id, start, end in timeline[connection]:
            left = int(start / horizon * (width - 1))
            right = max(left + 1, int(end / horizon * (width - 1)))
            label = str(query_id)
            for pos in range(left, min(right, width)):
                row[pos] = "="
            for offset, char in enumerate(label):
                if left + offset < width:
                    row[left + offset] = char
        lines.append(f"c{connection:02d} |{''.join(row)}|")
    return "\n".join(lines)
