"""Profiling harness for the hot-path benchmarks (cProfile + section timers).

Two complementary views of where rollout/serving time goes:

* :class:`SectionTimers` — coarse wall-clock accounting over named sections
  (``with timers.section("rollouts"): ...``), cheap enough to stay on in any
  benchmark.
* :func:`profile_call` — a cProfile pass over one callable, reduced to the
  top functions by cumulative time so the JSON stays reviewable.

Both serialise into the same ``write_json_report`` envelope every benchmark
already emits, so profiles land next to the measurements they explain.
Profiling is opt-in via the ``REPRO_BENCH_PROFILING`` environment variable
(set by ``benchmarks/run_all.py --profiling``): cProfile instrumentation
slows the measured hot loop severely, so throughput numbers and profiles are
taken from separate runs.
"""

from __future__ import annotations

import cProfile
import os
import pstats
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator, TypeVar

from .reporting import write_json_report

__all__ = [
    "PROFILING_ENV",
    "SectionTimers",
    "profile_call",
    "profiling_enabled",
    "write_profile_json",
]

#: Environment variable that opts a benchmark run into the cProfile pass.
PROFILING_ENV = "REPRO_BENCH_PROFILING"

_T = TypeVar("_T")


def profiling_enabled() -> bool:
    """Whether the current benchmark run should collect cProfile data."""
    value = os.environ.get(PROFILING_ENV, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


class SectionTimers:
    """Accumulating wall-clock timers over named benchmark sections."""

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Time one pass through ``name`` (accumulates across passes)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def as_dict(self) -> dict[str, dict[str, float]]:
        """Sections sorted by total seconds, heaviest first."""
        ordered = sorted(self._totals.items(), key=lambda item: -item[1])
        return {
            name: {"seconds": total, "calls": float(self._calls[name])}
            for name, total in ordered
        }


def profile_call(fn: Callable[[], _T], top: int = 30) -> tuple[_T, dict[str, Any]]:
    """Run ``fn`` under cProfile; returns its result and a JSON-ready summary.

    The summary keeps the ``top`` functions by cumulative time (file, line,
    name, call count, tottime, cumtime) plus the overall wall clock and call
    count — enough to spot a hot-path regression in a diff without shipping
    the full pstats dump.
    """
    profiler = cProfile.Profile()
    started = time.perf_counter()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    wall = time.perf_counter() - started
    stats = pstats.Stats(profiler)
    raw: dict[Any, Any] = getattr(stats, "stats", {})
    entries = sorted(raw.items(), key=lambda item: item[1][3], reverse=True)
    rows: list[dict[str, Any]] = []
    for (filename, lineno, funcname), (_cc, ncalls, tottime, cumtime, _callers) in entries[:top]:
        rows.append(
            {
                "function": f"{Path(filename).name}:{lineno}({funcname})",
                "calls": int(ncalls),
                "tottime_seconds": float(tottime),
                "cumtime_seconds": float(cumtime),
            }
        )
    summary: dict[str, Any] = {
        "wall_seconds": wall,
        "total_calls": int(getattr(stats, "total_calls", 0)),
        "top_by_cumtime": rows,
    }
    return result, summary


def write_profile_json(
    name: str,
    profile: dict[str, Any],
    sections: "SectionTimers | None" = None,
    extra: "dict[str, Any] | None" = None,
) -> Path:
    """Write one profile document (cProfile summary + optional sections)."""
    payload: dict[str, Any] = {"cprofile": profile}
    if sections is not None:
        payload["sections"] = sections.as_dict()
    if extra:
        payload.update(extra)
    return write_json_report(name, payload)
