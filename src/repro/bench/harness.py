"""Experiment harness reproducing the paper's tables and figures.

Every benchmark in ``benchmarks/`` calls into this module.  Two effort
profiles are supported via the ``REPRO_BENCH_PROFILE`` environment variable:

* ``quick`` (default) — small training budgets so the whole suite finishes on
  a laptop CPU in minutes; the strategy *ordering* is still expected to hold.
* ``full`` — larger budgets closer to a converged RL policy.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..config import BQSchedConfig
from ..core import (
    AdaptiveMask,
    BQSched,
    BaseScheduler,
    ClusterSchedulingEnv,
    FIFOScheduler,
    GreedyCostPlacementScheduler,
    LeastOutstandingWorkScheduler,
    LSchedScheduler,
    MCFScheduler,
    RandomScheduler,
    RLSchedulerBase,
    RoundRobinPlacementScheduler,
    SchedulingEnv,
    StrategyEvaluation,
)
from ..core.knowledge import ExternalKnowledge
from ..dbms import Cluster, ConfigurationSpace, DatabaseEngine, DBMSProfile
from ..runtime import ServiceReport
from ..workloads import Workload, make_arrival_process, make_workload

__all__ = [
    "BenchProfile",
    "Scenario",
    "get_profile",
    "evaluate_heuristics",
    "evaluate_placement_baselines",
    "evaluate_rl",
    "evaluate_service",
    "run_strategy_comparison",
]

HEURISTICS = ("Random", "FIFO", "MCF")


@dataclass(frozen=True)
class BenchProfile:
    """Effort profile controlling training budgets and evaluation rounds."""

    name: str
    train_updates: int
    pretrain_updates: int
    history_rounds: int
    evaluation_rounds: int
    num_connections: int

    @classmethod
    def quick(cls) -> "BenchProfile":
        return cls(
            name="quick",
            train_updates=4,
            pretrain_updates=4,
            history_rounds=2,
            evaluation_rounds=3,
            num_connections=8,
        )

    @classmethod
    def full(cls) -> "BenchProfile":
        return cls(
            name="full",
            train_updates=20,
            pretrain_updates=20,
            history_rounds=4,
            evaluation_rounds=5,
            num_connections=12,
        )


def get_profile() -> BenchProfile:
    """Read the effort profile from ``REPRO_BENCH_PROFILE`` (quick / full)."""
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick").lower()
    return BenchProfile.full() if name == "full" else BenchProfile.quick()


@dataclass
class Scenario:
    """A (benchmark, DBMS, scale) experiment cell."""

    benchmark: str
    dbms: str
    data_scale: float = 1.0
    query_scale: float = 1.0
    seed: int = 0
    profile: BenchProfile = field(default_factory=get_profile)

    def build(self) -> tuple[Workload, DatabaseEngine, BQSchedConfig]:
        workload = make_workload(
            self.benchmark, scale_factor=self.data_scale, query_scale=self.query_scale, seed=self.seed
        )
        engine = DatabaseEngine(DBMSProfile.by_name(self.dbms), seed=self.seed)
        config = BQSchedConfig.small(seed=self.seed)
        config.scheduler.num_connections = self.profile.num_connections
        config.scheduler.evaluation_rounds = self.profile.evaluation_rounds
        return workload, engine, config

    @property
    def label(self) -> str:
        return f"{self.benchmark}/{self.dbms} (data {self.data_scale}x, query {self.query_scale}x)"


def _heuristic_env(workload: Workload, engine: DatabaseEngine, config: BQSchedConfig) -> SchedulingEnv:
    batch = workload.batch_query_set()
    config_space = ConfigurationSpace(config.scheduler)
    knowledge = ExternalKnowledge.from_probes(engine, batch, config_space)
    return SchedulingEnv(
        batch=batch,
        backend=engine,
        scheduler_config=config.scheduler,
        config_space=config_space,
        knowledge=knowledge,
        mask=AdaptiveMask.unmasked(len(batch), len(config_space)),
        strategy_name="heuristic",
    )


def evaluate_heuristics(
    workload: Workload,
    engine: DatabaseEngine,
    config: BQSchedConfig,
    rounds: int,
    seed: int = 0,
) -> dict[str, StrategyEvaluation]:
    """Evaluate Random / FIFO / MCF on one scenario."""
    env = _heuristic_env(workload, engine, config)
    schedulers: list[BaseScheduler] = [RandomScheduler(seed=seed), FIFOScheduler(), MCFScheduler()]
    return {scheduler.name: scheduler.evaluate(env, rounds=rounds) for scheduler in schedulers}


def cluster_env(workload: Workload, cluster: Cluster, config: BQSchedConfig) -> ClusterSchedulingEnv:
    """An unmasked placement environment over ``cluster`` (probed knowledge)."""
    batch = workload.batch_query_set()
    config_space = ConfigurationSpace(config.scheduler)
    knowledge = ExternalKnowledge.from_probes(cluster, batch, config_space)
    return ClusterSchedulingEnv(
        batch=batch,
        backend=cluster,
        scheduler_config=config.scheduler,
        config_space=config_space,
        knowledge=knowledge,
        mask=AdaptiveMask.unmasked(len(batch), len(config_space)),
        strategy_name="placement-heuristic",
    )


def evaluate_placement_baselines(
    workload: Workload,
    cluster: Cluster,
    config: BQSchedConfig,
    rounds: int,
) -> dict[str, StrategyEvaluation]:
    """Evaluate the placement heuristics (RR / LOW / greedy-cost) on a fleet."""
    env = cluster_env(workload, cluster, config)
    schedulers: list[BaseScheduler] = [
        RoundRobinPlacementScheduler(),
        LeastOutstandingWorkScheduler(),
        GreedyCostPlacementScheduler(),
    ]
    return {scheduler.name: scheduler.evaluate(env, rounds=rounds) for scheduler in schedulers}


def evaluate_rl(
    workload: Workload,
    engine: DatabaseEngine,
    config: BQSchedConfig,
    scheduler_cls: type[RLSchedulerBase],
    profile: BenchProfile,
    rounds: int,
) -> tuple[StrategyEvaluation, RLSchedulerBase]:
    """Train and evaluate an RL scheduler (BQSched or LSched) on one scenario."""
    scheduler = scheduler_cls(workload, engine, config)
    pretrain = profile.pretrain_updates if scheduler.use_simulator else 0
    scheduler.train(
        num_updates=profile.train_updates,
        pretrain_updates=pretrain,
        history_rounds=profile.history_rounds,
    )
    evaluation = scheduler.evaluate_policy(rounds=rounds)
    evaluation.strategy = scheduler.name
    return evaluation, scheduler


def evaluate_service(
    scheduler: RLSchedulerBase,
    num_tenants: int,
    arrival_process: str = "poisson",
    arrival_rate: float = 2.0,
    burst_size: int = 4,
    num_connections: int | None = None,
    round_id: int = 80_000,
) -> ServiceReport:
    """Serve a (trained) RL scheduler over a multi-tenant streaming round.

    This is the event-driven serving scenario: ``num_tenants`` copies of the
    scheduler's batch share one engine, each arriving as a stream described
    by ``arrival_process`` (``closed`` / ``poisson`` / ``bursty``).
    """
    arrivals = make_arrival_process(arrival_process, rate=arrival_rate, burst_size=burst_size)
    return scheduler.serve(
        num_tenants=num_tenants,
        arrivals=arrivals,
        num_connections=num_connections,
        round_id=round_id,
    )


def run_strategy_comparison(
    scenario: Scenario,
    include_rl: bool = True,
    rl_classes: tuple[type[RLSchedulerBase], ...] = (LSchedScheduler, BQSched),
) -> dict[str, StrategyEvaluation]:
    """Evaluate all five strategies of Table I on one scenario."""
    workload, engine, config = scenario.build()
    rounds = scenario.profile.evaluation_rounds
    results = evaluate_heuristics(workload, engine, config, rounds=rounds, seed=scenario.seed)
    if include_rl:
        for scheduler_cls in rl_classes:
            evaluation, _ = evaluate_rl(workload, engine, config, scheduler_cls, scenario.profile, rounds)
            results[evaluation.strategy] = evaluation
    return results
