"""Numbers reported in the paper's evaluation section (for shape comparison).

The benchmark harness prints these next to the values measured on the
synthetic substrate.  Absolute seconds are not expected to match (the
substrate is a simulator, not the authors' servers); the orderings and rough
improvement factors are what the reproduction checks.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_MAKESPAN",
    "TABLE1_STD",
    "TABLE2_MAKESPAN",
    "TABLE3_SIMULATOR",
    "FIG5_IMPROVEMENT_OVER_FIFO",
    "FIG7_ABLATION_RELATIVE",
    "FIG8_CLUSTERING_IMPROVEMENT",
]

#: Table I — average makespan (seconds), DBMS x benchmark x strategy.
TABLE1_MAKESPAN: dict[str, dict[str, dict[str, float]]] = {
    "DBMS-X": {
        "tpcds": {"Random": 20.71, "FIFO": 20.05, "MCF": 19.01, "LSched": 16.91, "BQSched": 14.39},
        "tpch": {"Random": 6.17, "FIFO": 6.26, "MCF": 5.05, "LSched": 4.64, "BQSched": 3.65},
        "job": {"Random": 9.75, "FIFO": 10.57, "MCF": 8.78, "LSched": 8.50, "BQSched": 7.96},
    },
    "DBMS-Y": {
        "tpcds": {"Random": 20.11, "FIFO": 16.90, "MCF": 15.01, "LSched": 12.03, "BQSched": 10.45},
        "tpch": {"Random": 4.97, "FIFO": 5.91, "MCF": 4.93, "LSched": 3.74, "BQSched": 3.59},
        "job": {"Random": 7.24, "FIFO": 7.14, "MCF": 7.12, "LSched": 6.82, "BQSched": 6.80},
    },
    "DBMS-Z": {
        "tpcds": {"Random": 8.68, "FIFO": 9.04, "MCF": 7.37, "LSched": 7.26, "BQSched": 7.01},
        "tpch": {"Random": 1.07, "FIFO": 1.07, "MCF": 0.90, "LSched": 0.84, "BQSched": 0.76},
        "job": {"Random": 8.49, "FIFO": 8.99, "MCF": 8.19, "LSched": 8.07, "BQSched": 7.83},
    },
}

#: Table I — makespan standard deviation (stability), same indexing.
TABLE1_STD: dict[str, dict[str, dict[str, float]]] = {
    "DBMS-X": {
        "tpcds": {"Random": 1.68, "FIFO": 1.36, "MCF": 1.54, "LSched": 0.57, "BQSched": 0.09},
        "tpch": {"Random": 0.94, "FIFO": 0.06, "MCF": 0.61, "LSched": 0.04, "BQSched": 0.03},
        "job": {"Random": 0.69, "FIFO": 0.21, "MCF": 0.22, "LSched": 0.15, "BQSched": 0.03},
    },
    "DBMS-Y": {
        "tpcds": {"Random": 2.17, "FIFO": 2.60, "MCF": 3.68, "LSched": 2.27, "BQSched": 0.37},
        "tpch": {"Random": 0.41, "FIFO": 0.29, "MCF": 0.22, "LSched": 0.13, "BQSched": 0.12},
        "job": {"Random": 0.32, "FIFO": 0.18, "MCF": 0.09, "LSched": 0.05, "BQSched": 0.05},
    },
    "DBMS-Z": {
        "tpcds": {"Random": 0.84, "FIFO": 0.13, "MCF": 0.10, "LSched": 0.07, "BQSched": 0.06},
        "tpch": {"Random": 0.12, "FIFO": 0.04, "MCF": 0.07, "LSched": 0.02, "BQSched": 0.02},
        "job": {"Random": 0.61, "FIFO": 0.11, "MCF": 0.07, "LSched": 0.07, "BQSched": 0.04},
    },
}

#: Table II — adaptability on TPC-DS with DBMS-X (makespans under perturbation).
TABLE2_MAKESPAN: dict[str, dict[str, dict[str, float]]] = {
    "data": {
        "0.8x": {"Random": 16.26, "FIFO": 15.30, "MCF": 15.41, "LSched": 13.48, "BQSched": 12.88},
        "0.9x": {"Random": 19.48, "FIFO": 17.86, "MCF": 17.59, "LSched": 15.36, "BQSched": 13.95},
        "1.1x": {"Random": 23.79, "FIFO": 25.82, "MCF": 22.28, "LSched": 24.84, "BQSched": 21.81},
        "1.2x": {"Random": 26.59, "FIFO": 28.30, "MCF": 23.95, "LSched": 26.56, "BQSched": 23.69},
    },
    "query": {
        "0.8x": {"Random": 20.66, "FIFO": 20.23, "MCF": 20.59, "LSched": 16.95, "BQSched": 14.34},
        "0.9x": {"Random": 20.65, "FIFO": 19.90, "MCF": 19.36, "LSched": 17.39, "BQSched": 14.67},
        "1.1x": {"Random": 22.20, "FIFO": 20.95, "MCF": 22.39, "LSched": 18.27, "BQSched": 14.88},
        "1.2x": {"Random": 23.92, "FIFO": 23.95, "MCF": 21.51, "LSched": 19.59, "BQSched": 15.59},
    },
}

#: Table III — simulator prediction model ablation (accuracy %, regression MSE).
TABLE3_SIMULATOR: dict[str, dict[str, float]] = {
    "w/o Att": {"accuracy": 0.566, "mse": 0.180},
    "w/o MTL": {"accuracy": 0.586, "mse": 0.102},
    "gamma=0.01": {"accuracy": 0.644, "mse": 0.115},
    "gamma=0.1": {"accuracy": 0.687, "mse": 0.073},
    "gamma=1": {"accuracy": 0.685, "mse": 0.173},
}

#: Figure 5 — BQSched's makespan improvement over FIFO at each scale point.
FIG5_IMPROVEMENT_OVER_FIFO: dict[str, dict[str, float]] = {
    "tpcds_dbmsx_data": {"1x": 0.28, "2x": 0.30, "5x": 0.31, "10x": 0.19},
    "tpcds_dbmsx_query": {"2x": 0.23, "5x": 0.18, "10x": 0.13},
    "tpcds_dbmsz_data": {"50x": 0.55, "100x": 0.57, "200x": 0.61},
    "tpch_dbmsz_data": {"50x": 0.40, "100x": 0.45, "200x": 0.50},
}

#: Figure 7 — relative efficiency of ablated variants vs full BQSched
#: (>1 means the variant's makespan is worse).
FIG7_ABLATION_RELATIVE: dict[str, float] = {
    "w/o attention state": 1.07,
    "w/ PPO": 1.10,
    "w/ PPG": 1.05,
    "w/o adaptive masking": 1.44,
}

#: Figure 8 — improvement of clustering over no clustering at 5x / 10x queries.
FIG8_CLUSTERING_IMPROVEMENT: dict[str, float] = {"5x": 0.13, "10x": 0.09}

#: Figure 6 — training-time ratios reported in the text.
FIG6_TRAINING_COST: dict[str, float] = {
    "bqsched_vs_lsched_time_ratio": 0.10,
    "bqsched_no_sim_vs_lsched_time_ratio": 0.47,
    "pretrain_fraction": 0.06,
    "finetune_fraction": 0.15,
}
__all__.append("FIG6_TRAINING_COST")
