"""Open arrival processes for streaming query workloads.

The paper's experiments are *closed*: the whole batch query set is pending at
time zero.  Production pipelines are rarely that tidy — queries trickle in
from upstream jobs, dashboards and users.  An :class:`ArrivalProcess` turns a
batch query set into an *open* stream by assigning every query an arrival
time; the event-driven runtime (:mod:`repro.runtime`) releases each query
into its tenant's pending set when the clock reaches that time, and the
scheduler keeps deciding over the growing pending set.

Three processes cover the scenarios the related open-stream schedulers train
on: Poisson arrivals (memoryless steady load), bursty arrivals (queries land
in clumps, the hard case for contention), and trace arrivals (replay of a
recorded submission log).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..exceptions import WorkloadError

__all__ = [
    "ArrivalProcess",
    "ClosedArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "TraceArrivals",
    "make_arrival_process",
]


class ArrivalProcess(abc.ABC):
    """Assigns an arrival time to each query of a batch."""

    @abc.abstractmethod
    def times(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``num_queries`` arrival times (seconds from round start)."""

    def _validate(self, num_queries: int) -> None:
        if num_queries < 1:
            raise WorkloadError("an arrival process needs at least one query")


class ClosedArrivals(ArrivalProcess):
    """The paper's closed-batch scenario: everything arrives at time zero."""

    def times(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(num_queries)
        return np.zeros(num_queries, dtype=np.float64)


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate`` queries per second.

    The first query arrives at time zero so a round always has work to start
    on; subsequent inter-arrival gaps are exponential with mean ``1/rate``.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise WorkloadError("arrival rate must be positive")
        self.rate = rate

    def times(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(num_queries)
        gaps = rng.exponential(1.0 / self.rate, size=num_queries)
        gaps[0] = 0.0
        return np.cumsum(gaps)


class BurstyArrivals(ArrivalProcess):
    """Arrivals in bursts of ``burst_size`` queries.

    Burst epochs follow a Poisson process whose rate is scaled so the
    *long-run query rate* still equals ``rate``; every query of a burst lands
    at the same instant.  This is the contention-heavy open scenario: the
    scheduler suddenly has ``burst_size`` new pending queries to order.
    """

    def __init__(self, rate: float, burst_size: int = 4) -> None:
        if rate <= 0:
            raise WorkloadError("arrival rate must be positive")
        if burst_size < 1:
            raise WorkloadError("burst_size must be >= 1")
        self.rate = rate
        self.burst_size = burst_size

    def times(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(num_queries)
        num_bursts = -(-num_queries // self.burst_size)
        gaps = rng.exponential(self.burst_size / self.rate, size=num_bursts)
        gaps[0] = 0.0
        epochs = np.cumsum(gaps)
        return np.repeat(epochs, self.burst_size)[:num_queries]


class TraceArrivals(ArrivalProcess):
    """Replay of recorded arrival times (e.g. from a production submit log)."""

    def __init__(self, trace: Sequence[float]) -> None:
        times = np.asarray(list(trace), dtype=np.float64)
        if times.size == 0:
            raise WorkloadError("arrival trace must not be empty")
        if (times < 0).any():
            raise WorkloadError("arrival times must be >= 0")
        self.trace = times

    def times(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(num_queries)
        if num_queries > self.trace.size:
            raise WorkloadError(
                f"trace has {self.trace.size} arrivals but the batch needs {num_queries}"
            )
        return self.trace[:num_queries].copy()


def make_arrival_process(name: str, rate: float = 2.0, burst_size: int = 4) -> ArrivalProcess:
    """Build an arrival process from its configuration name."""
    name = name.lower()
    if name == "closed":
        return ClosedArrivals()
    if name == "poisson":
        return PoissonArrivals(rate)
    if name == "bursty":
        return BurstyArrivals(rate, burst_size=burst_size)
    raise WorkloadError(f"unknown arrival process {name!r}; expected closed, poisson or bursty")
