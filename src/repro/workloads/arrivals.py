"""Open arrival processes for streaming query workloads.

The paper's experiments are *closed*: the whole batch query set is pending at
time zero.  Production pipelines are rarely that tidy — queries trickle in
from upstream jobs, dashboards and users.  An :class:`ArrivalProcess` turns a
batch query set into an *open* stream by assigning every query an arrival
time; the event-driven runtime (:mod:`repro.runtime`) releases each query
into its tenant's pending set when the clock reaches that time, and the
scheduler keeps deciding over the growing pending set.

Four processes cover the scenarios the related open-stream schedulers train
on: Poisson arrivals (memoryless steady load), bursty arrivals (queries land
in clumps, the hard case for contention), flash-crowd arrivals (a steady
stream with one overload window where the rate multiplies — the admission
control stress test), and trace arrivals (replay of a recorded submission
log).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from ..exceptions import WorkloadError

__all__ = [
    "ArrivalProcess",
    "ClosedArrivals",
    "PoissonArrivals",
    "BurstyArrivals",
    "FlashCrowdArrivals",
    "TraceArrivals",
    "make_arrival_process",
]


class ArrivalProcess(abc.ABC):
    """Assigns an arrival time to each query of a batch."""

    @abc.abstractmethod
    def times(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``num_queries`` arrival times (seconds from round start)."""

    def _validate(self, num_queries: int) -> None:
        if num_queries < 1:
            raise WorkloadError("an arrival process needs at least one query")


class ClosedArrivals(ArrivalProcess):
    """The paper's closed-batch scenario: everything arrives at time zero."""

    def times(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(num_queries)
        return np.zeros(num_queries, dtype=np.float64)


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate`` queries per second.

    The first query arrives at time zero so a round always has work to start
    on; subsequent inter-arrival gaps are exponential with mean ``1/rate``.
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise WorkloadError("arrival rate must be positive")
        self.rate = rate

    def times(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(num_queries)
        gaps = rng.exponential(1.0 / self.rate, size=num_queries)
        gaps[0] = 0.0
        return np.cumsum(gaps)


class BurstyArrivals(ArrivalProcess):
    """Arrivals in bursts of ``burst_size`` queries.

    Burst epochs follow a Poisson process whose rate is scaled so the
    *long-run query rate* still equals ``rate``; every query of a burst lands
    at the same instant.  This is the contention-heavy open scenario: the
    scheduler suddenly has ``burst_size`` new pending queries to order.
    """

    def __init__(self, rate: float, burst_size: int = 4) -> None:
        if rate <= 0:
            raise WorkloadError("arrival rate must be positive")
        if burst_size < 1:
            raise WorkloadError("burst_size must be >= 1")
        self.rate = rate
        self.burst_size = burst_size

    def times(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(num_queries)
        num_bursts = -(-num_queries // self.burst_size)
        gaps = rng.exponential(self.burst_size / self.rate, size=num_bursts)
        gaps[0] = 0.0
        epochs = np.cumsum(gaps)
        return np.repeat(epochs, self.burst_size)[:num_queries]


class FlashCrowdArrivals(ArrivalProcess):
    """A steady stream with one overload window where the rate multiplies.

    Outside ``[burst_start, burst_start + burst_duration)`` queries arrive as
    a Poisson process at ``rate``; inside the window the instantaneous rate
    jumps to ``rate * burst_factor`` (the flash crowd).  Sampling inverts the
    piecewise-linear cumulative intensity of the inhomogeneous Poisson
    process: unit-rate exponential gaps are accumulated and each cumulative
    intensity value is mapped back to wall-clock time through the three
    linear segments (before / inside / after the window).  The first arrival
    is pinned at time zero, like every open process here, so a round always
    has work to start on.

    A ``burst_factor`` of 1 degenerates to :class:`PoissonArrivals` exactly
    (all three segments share one slope); a window that ends before the
    second arrival simply leaves every arrival on the post-window segment.
    This is the admission-control stress scenario: a 100x flash crowd buries
    an uncontrolled service, while a controlled one sheds low-priority work
    and keeps its interactive tier inside the SLO.
    """

    def __init__(
        self,
        rate: float,
        burst_factor: float = 10.0,
        burst_start: float = 0.0,
        burst_duration: float = 1.0,
    ) -> None:
        if rate <= 0:
            raise WorkloadError("arrival rate must be positive")
        if burst_factor < 1:
            raise WorkloadError("burst_factor must be >= 1")
        if burst_start < 0:
            raise WorkloadError("burst_start must be >= 0")
        if burst_duration <= 0:
            raise WorkloadError("burst_duration must be positive")
        self.rate = rate
        self.burst_factor = burst_factor
        self.burst_start = burst_start
        self.burst_duration = burst_duration

    def times(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(num_queries)
        gaps = rng.exponential(1.0, size=num_queries)
        gaps[0] = 0.0
        intensity = np.cumsum(gaps)
        # Cumulative intensity at the window edges: Lambda(burst_start) and
        # Lambda(burst_start + burst_duration).
        at_start = self.rate * self.burst_start
        at_end = at_start + self.rate * self.burst_factor * self.burst_duration
        before = intensity / self.rate
        inside = self.burst_start + (intensity - at_start) / (self.rate * self.burst_factor)
        after = self.burst_start + self.burst_duration + (intensity - at_end) / self.rate
        result: np.ndarray = np.where(
            intensity < at_start, before, np.where(intensity < at_end, inside, after)
        )
        return result


class TraceArrivals(ArrivalProcess):
    """Replay of recorded arrival times (e.g. from a production submit log)."""

    def __init__(self, trace: Sequence[float]) -> None:
        times = np.asarray(list(trace), dtype=np.float64)
        if times.size == 0:
            raise WorkloadError("arrival trace must not be empty")
        if (times < 0).any():
            raise WorkloadError("arrival times must be >= 0")
        self.trace = times

    def times(self, num_queries: int, rng: np.random.Generator) -> np.ndarray:
        self._validate(num_queries)
        if num_queries > self.trace.size:
            raise WorkloadError(
                f"trace has {self.trace.size} arrivals but the batch needs {num_queries}"
            )
        return self.trace[:num_queries].copy()


def make_arrival_process(
    name: str,
    rate: float = 2.0,
    burst_size: int = 4,
    burst_factor: float = 10.0,
    burst_start: float = 0.0,
    burst_duration: float = 1.0,
) -> ArrivalProcess:
    """Build an arrival process from its configuration name."""
    name = name.lower()
    if name == "closed":
        return ClosedArrivals()
    if name == "poisson":
        return PoissonArrivals(rate)
    if name == "bursty":
        return BurstyArrivals(rate, burst_size=burst_size)
    if name in ("flash-crowd", "flash_crowd", "flashcrowd"):
        return FlashCrowdArrivals(
            rate, burst_factor=burst_factor, burst_start=burst_start, burst_duration=burst_duration
        )
    raise WorkloadError(
        f"unknown arrival process {name!r}; expected closed, poisson, bursty or flash-crowd"
    )
