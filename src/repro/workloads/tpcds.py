"""Synthetic TPC-DS workload: 25 tables, 99 query templates.

The real TPC-DS schema has 7 fact tables and 17 dimension tables; the query
set mixes short reporting queries with a handful of very heavy multi-channel
analyses (queries 4, 11, 14, 23, 39, 74, 78 ...).  The synthetic catalogue
reproduces those proportions: fact tables dominate the data volume, template
complexity is heavy-tailed, and roughly a third of the templates are I/O
bound while the rest are CPU bound — the mix that makes concurrent
scheduling worthwhile (Section I of the paper).
"""

from __future__ import annotations

import numpy as np

from ..plans import Catalog, TemplateSpec

__all__ = [
    "TPCDS_TABLES",
    "TPCDS_FACT_TABLES",
    "TPCDS_HEAVY_TEMPLATES",
    "build_tpcds_catalog",
    "build_tpcds_specs",
]

#: Base row counts at scale factor 1 (order-of-magnitude faithful to TPC-DS).
TPCDS_TABLES: dict[str, float] = {
    "store_sales": 2.9e6,
    "catalog_sales": 1.4e6,
    "web_sales": 7.2e5,
    "store_returns": 2.9e5,
    "catalog_returns": 1.4e5,
    "web_returns": 7.2e4,
    "inventory": 1.2e7,
    "store": 12,
    "call_center": 6,
    "catalog_page": 1.2e4,
    "web_site": 30,
    "web_page": 60,
    "warehouse": 5,
    "customer": 1.0e5,
    "customer_address": 5.0e4,
    "customer_demographics": 1.9e6,
    "date_dim": 7.3e4,
    "household_demographics": 7.2e3,
    "item": 1.8e4,
    "income_band": 20,
    "promotion": 300,
    "reason": 35,
    "ship_mode": 20,
    "store_dept": 100,
    "time_dim": 8.6e4,
}

TPCDS_FACT_TABLES: set[str] = {
    "store_sales",
    "catalog_sales",
    "web_sales",
    "store_returns",
    "catalog_returns",
    "web_returns",
    "inventory",
}

#: Templates known to dominate TPC-DS runtime (multi-channel / rollup queries).
TPCDS_HEAVY_TEMPLATES: dict[int, float] = {
    4: 2.6,
    11: 2.2,
    14: 3.0,
    23: 2.8,
    39: 2.0,
    64: 2.2,
    74: 2.1,
    78: 2.0,
    80: 1.8,
    95: 2.0,
}

#: Templates the paper rewrites because their original form is pathological
#: (queries 1, 6, 30, 81); we model the *optimised* versions, i.e. they get
#: no extra complexity multiplier.
TPCDS_OPTIMIZED_TEMPLATES: set[int] = {1, 6, 30, 81}

_NUM_TEMPLATES = 99
_DIMENSION_TABLES = [name for name in TPCDS_TABLES if name not in TPCDS_FACT_TABLES]
_CHANNEL_FACTS = ["store_sales", "catalog_sales", "web_sales"]


def build_tpcds_catalog(seed: int = 0) -> Catalog:
    """Build the TPC-DS catalogue with deterministic per-seed histograms."""
    return Catalog.generate(
        table_names=list(TPCDS_TABLES),
        fact_tables=TPCDS_FACT_TABLES,
        base_rows=TPCDS_TABLES,
        seed=seed,
    )


def build_tpcds_specs(seed: int = 0) -> list[TemplateSpec]:
    """Generate the 99 TPC-DS template specifications.

    Template characteristics are drawn deterministically from ``seed`` so the
    same workload is produced across runs; heavy templates get their fixed
    complexity multipliers from :data:`TPCDS_HEAVY_TEMPLATES`.
    """
    rng = np.random.default_rng((seed, 8501))
    specs: list[TemplateSpec] = []
    for template_id in range(1, _NUM_TEMPLATES + 1):
        # Channel coverage: most templates hit one sales channel, the heavy
        # ones span two or three.
        heavy = TPCDS_HEAVY_TEMPLATES.get(template_id)
        num_facts = 2 if heavy is not None else (2 if rng.random() < 0.15 else 1)
        facts = list(rng.choice(_CHANNEL_FACTS, size=num_facts, replace=False))
        if rng.random() < 0.15:
            facts.append(str(rng.choice(["store_returns", "catalog_returns", "web_returns", "inventory"])))
        num_dims = int(rng.integers(2, 7))
        dims = list(rng.choice(_DIMENSION_TABLES, size=num_dims, replace=False))
        tables = tuple(facts + dims)

        selectivities = []
        for table in tables:
            if table in TPCDS_FACT_TABLES:
                selectivities.append(float(rng.uniform(0.05, 0.6)))
            else:
                selectivities.append(float(rng.uniform(0.001, 0.3)))

        complexity = float(heavy) if heavy is not None else float(rng.lognormal(mean=-0.25, sigma=0.45))
        if template_id in TPCDS_OPTIMIZED_TEMPLATES:
            complexity = min(complexity, 0.8)

        cpu_intensity = float(np.clip(rng.beta(2.2, 2.0), 0.05, 0.95))
        specs.append(
            TemplateSpec(
                template_id=template_id,
                tables=tables,
                selectivities=tuple(selectivities),
                join_count=len(tables) - 1,
                has_aggregate=rng.random() < 0.9,
                has_sort=rng.random() < 0.6,
                has_window=rng.random() < 0.25,
                has_union=heavy is not None or rng.random() < 0.1,
                cpu_intensity=cpu_intensity,
                complexity=complexity,
            )
        )
    return specs
