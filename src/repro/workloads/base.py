"""Core workload abstractions: queries, batch query sets, and workloads.

A :class:`Query` is the unit of scheduling: a physical plan plus the derived
resource profile the DBMS substrate executes.  A :class:`BatchQuerySet` is
the paper's set ``S`` of ``n`` queries that can run concurrently without
dependencies.  A :class:`Workload` owns the catalogue, the template
specifications, and the machinery to rebuild queries under different data and
query scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Sequence

import numpy as np

from ..exceptions import WorkloadError
from ..plans import Catalog, PhysicalPlan, PlanBuilder, TemplateSpec

__all__ = ["Query", "BatchQuerySet", "Workload"]


@dataclass
class Query:
    """A single schedulable query.

    The resource profile (``cpu_work``, ``io_work``, in abstract
    resource-seconds) is derived from the plan once at construction so the
    discrete-event engine does not re-walk plan trees in its inner loop.
    """

    name: str
    query_id: int
    template_id: int
    plan: PhysicalPlan
    cpu_work: float
    io_work: float
    memory_demand_mb: float
    tables: dict[str, float] = field(default_factory=dict)
    parallel_fraction: float = 0.5
    memory_sensitivity: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_work < 0 or self.io_work < 0:
            raise WorkloadError(f"query {self.name} has negative work")
        if self.cpu_work + self.io_work <= 0:
            raise WorkloadError(f"query {self.name} has zero total work")

    @property
    def total_work(self) -> float:
        """Total abstract work (CPU + I/O resource-seconds)."""
        return self.cpu_work + self.io_work

    @property
    def io_fraction(self) -> float:
        """Fraction of the query's work that is I/O."""
        return self.io_work / self.total_work

    @property
    def cpu_fraction(self) -> float:
        """Fraction of the query's work that is CPU."""
        return self.cpu_work / self.total_work

    @property
    def is_io_intensive(self) -> bool:
        """Whether the query is predominantly I/O bound (paper Section IV-A)."""
        return self.io_fraction >= 0.5

    def __repr__(self) -> str:
        return (
            f"Query({self.name}, cpu={self.cpu_work:.2f}, io={self.io_work:.2f}, "
            f"tables={len(self.tables)})"
        )


class BatchQuerySet:
    """The batch query set ``S``: queries indexed ``0 .. n-1``."""

    def __init__(self, queries: Sequence[Query]) -> None:
        if not queries:
            raise WorkloadError("batch query set must not be empty")
        # Re-index without mutating the caller's Query objects: the same query
        # may be a member of several batches (e.g. probing subsets).
        self._queries = [
            query if query.query_id == index else replace(query, query_id=index)
            for index, query in enumerate(queries)
        ]

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __getitem__(self, index: int) -> Query:
        return self._queries[index]

    @property
    def queries(self) -> list[Query]:
        return list(self._queries)

    def total_work(self) -> float:
        """Sum of all queries' abstract work; a lower bound proxy on makespan."""
        return sum(q.total_work for q in self._queries)

    def table_footprint(self) -> dict[str, float]:
        """Aggregate rows scanned per table across the whole batch."""
        footprint: dict[str, float] = {}
        for query in self._queries:
            for table, rows in query.tables.items():
                footprint[table] = footprint.get(table, 0.0) + rows
        return footprint

    def subset(self, indices: Sequence[int]) -> "BatchQuerySet":
        """Return a new batch containing only the queries at ``indices``."""
        return BatchQuerySet([self._queries[i] for i in indices])

    def sorted_by_cost(self, descending: bool = True) -> list[Query]:
        """Queries ordered by total work (the MCF heuristic's ordering)."""
        return sorted(self._queries, key=lambda q: q.total_work, reverse=descending)


class Workload:
    """A benchmark instance: catalogue + template specs + generated queries."""

    #: Default normalisation constant mapping plan work units to
    #: resource-seconds so that a median 1x query takes on the order of a
    #: second of work; per-benchmark factories override it.
    WORK_NORMALIZER = 2.5e5

    def __init__(
        self,
        name: str,
        catalog: Catalog,
        specs: Sequence[TemplateSpec],
        seed: int = 0,
        data_scale: float = 1.0,
        query_scale: float = 1.0,
        work_normalizer: float | None = None,
    ) -> None:
        if data_scale <= 0 or query_scale <= 0:
            raise WorkloadError("data_scale and query_scale must be positive")
        self.name = name
        self.base_catalog = catalog
        self.specs = list(specs)
        self.seed = seed
        self.data_scale = data_scale
        self.query_scale = query_scale
        self.work_normalizer = work_normalizer if work_normalizer is not None else self.WORK_NORMALIZER
        if self.work_normalizer <= 0:
            raise WorkloadError("work_normalizer must be positive")
        self.catalog = catalog.scaled(data_scale) if data_scale != 1.0 else catalog
        self._queries = self._build_queries()

    # ------------------------------------------------------------------ #
    # Query construction
    # ------------------------------------------------------------------ #
    def _build_queries(self) -> list[Query]:
        builder = PlanBuilder(self.catalog, seed=self.seed)
        specs = self._scaled_specs()
        queries: list[Query] = []
        for index, (spec, variant) in enumerate(specs):
            plan = builder.build(spec)
            suffix = "" if variant == 0 else f"_v{variant}"
            queries.append(self._query_from_plan(f"{self.name}_q{spec.template_id}{suffix}", index, spec, plan))
        return queries

    def _scaled_specs(self) -> list[tuple[TemplateSpec, int]]:
        """Expand template specs according to ``query_scale``.

        For integer scales >= 1 every template is instantiated ``scale``
        times with perturbed selectivities (the paper's "2x/5x/10x queries").
        Fractional scales below 1 keep the first ``scale * n`` templates
        (the paper's 0.8x/0.9x adaptability variants); fractional parts above
        an integer duplicate a prefix of the templates.
        """
        rng = np.random.default_rng((self.seed, 7919))
        expanded: list[tuple[TemplateSpec, int]] = []
        whole = int(np.floor(self.query_scale))
        fraction = self.query_scale - whole
        for variant in range(max(whole, 1) if whole >= 1 else 1):
            for spec in self.specs:
                expanded.append((self._perturb_spec(spec, variant, rng), variant))
        if whole == 0:
            keep = max(1, int(round(len(self.specs) * self.query_scale)))
            return expanded[:keep]
        if fraction > 1e-9:
            extra = int(round(len(self.specs) * fraction))
            for spec in self.specs[:extra]:
                expanded.append((self._perturb_spec(spec, whole, rng), whole))
        return expanded

    def _perturb_spec(self, spec: TemplateSpec, variant: int, rng: np.random.Generator) -> TemplateSpec:
        if variant == 0:
            return spec
        jitter = rng.uniform(0.8, 1.2)
        selectivities = tuple(float(np.clip(s * rng.uniform(0.7, 1.3), 1e-4, 1.0)) for s in spec.selectivities)
        return TemplateSpec(
            template_id=spec.template_id,
            tables=spec.tables,
            selectivities=selectivities,
            join_count=spec.join_count,
            has_aggregate=spec.has_aggregate,
            has_sort=spec.has_sort,
            has_window=spec.has_window,
            has_union=spec.has_union,
            cpu_intensity=spec.cpu_intensity,
            complexity=spec.complexity * float(jitter),
        )

    def _query_from_plan(self, name: str, index: int, spec: TemplateSpec, plan: PhysicalPlan) -> Query:
        cpu_work = plan.total_cpu_work() / self.work_normalizer
        io_work = plan.total_io_work() / self.work_normalizer
        memory_mb = min(800.0, 16.0 + 8.0 * (cpu_work + io_work))
        return Query(
            name=name,
            query_id=index,
            template_id=spec.template_id,
            plan=plan,
            cpu_work=cpu_work,
            io_work=io_work,
            memory_demand_mb=memory_mb,
            tables=plan.tables(),
            parallel_fraction=plan.parallel_fraction(),
            memory_sensitivity=plan.memory_sensitivity(),
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def num_queries(self) -> int:
        return len(self._queries)

    def batch_query_set(self) -> BatchQuerySet:
        """Return the batch query set ``S`` for this workload."""
        return BatchQuerySet(self._queries)

    def with_data_scale(self, data_scale: float) -> "Workload":
        """Return a new workload at a different data scale factor."""
        return Workload(
            name=self.name,
            catalog=self.base_catalog,
            specs=self.specs,
            seed=self.seed,
            data_scale=data_scale,
            query_scale=self.query_scale,
            work_normalizer=self.work_normalizer,
        )

    def with_query_scale(self, query_scale: float) -> "Workload":
        """Return a new workload at a different query scale factor."""
        return Workload(
            name=self.name,
            catalog=self.base_catalog,
            specs=self.specs,
            seed=self.seed,
            data_scale=self.data_scale,
            query_scale=query_scale,
            work_normalizer=self.work_normalizer,
        )

    def with_seed(self, seed: int) -> "Workload":
        """Return a new workload re-generated from a different seed."""
        return Workload(
            name=self.name,
            catalog=self.base_catalog,
            specs=self.specs,
            seed=seed,
            data_scale=self.data_scale,
            query_scale=self.query_scale,
            work_normalizer=self.work_normalizer,
        )

    def __repr__(self) -> str:
        return (
            f"Workload({self.name}, queries={self.num_queries}, "
            f"data_scale={self.data_scale}, query_scale={self.query_scale})"
        )
