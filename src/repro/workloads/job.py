"""Synthetic JOB (Join Order Benchmark) workload over the IMDb schema.

JOB has 113 queries drawn from 33 templates on the IMDb dataset.  Following
the paper we build the batch query set from the first ("a") variant of each
template — 33 queries.  JOB queries are join-heavy with selective predicates
and no aggregation pipelines, which limits scheduling head-room (Table I
shows only ~14 % improvement over FIFO there), so the synthetic templates
use narrow complexity spreads and high join counts.
"""

from __future__ import annotations

import numpy as np

from ..plans import Catalog, TemplateSpec

__all__ = ["JOB_TABLES", "JOB_FACT_TABLES", "build_job_catalog", "build_job_specs", "NUM_JOB_TEMPLATES"]

JOB_TABLES: dict[str, float] = {
    "title": 2.5e6,
    "cast_info": 3.6e7,
    "movie_info": 1.5e7,
    "movie_info_idx": 1.4e6,
    "movie_keyword": 4.5e6,
    "movie_companies": 2.6e6,
    "movie_link": 3.0e4,
    "name": 4.2e6,
    "char_name": 3.1e6,
    "company_name": 2.3e5,
    "keyword": 1.3e5,
    "aka_name": 9.0e5,
    "aka_title": 3.6e5,
    "person_info": 3.0e6,
    "info_type": 113,
    "kind_type": 7,
    "company_type": 4,
    "link_type": 18,
    "role_type": 12,
    "comp_cast_type": 4,
    "complete_cast": 1.4e5,
}

JOB_FACT_TABLES: set[str] = {"cast_info", "movie_info", "movie_keyword", "movie_companies"}

NUM_JOB_TEMPLATES = 33

_CORE_TABLES = ["title", "cast_info", "movie_info", "movie_keyword", "movie_companies"]
_AUX_TABLES = [name for name in JOB_TABLES if name not in _CORE_TABLES]


def build_job_catalog(seed: int = 0) -> Catalog:
    """Build the IMDb catalogue used by JOB."""
    return Catalog.generate(
        table_names=list(JOB_TABLES),
        fact_tables=JOB_FACT_TABLES,
        base_rows=JOB_TABLES,
        seed=seed + 31,
    )


def build_job_specs(seed: int = 0) -> list[TemplateSpec]:
    """Generate the 33 JOB template specifications (variants ``1a`` … ``33a``)."""
    rng = np.random.default_rng((seed, 3307))
    specs: list[TemplateSpec] = []
    for template_id in range(1, NUM_JOB_TEMPLATES + 1):
        num_core = int(rng.integers(2, 4))
        core = list(rng.choice(_CORE_TABLES, size=num_core, replace=False))
        if "title" not in core:
            core.insert(0, "title")
        num_aux = int(rng.integers(2, 6))
        aux = list(rng.choice(_AUX_TABLES, size=num_aux, replace=False))
        tables = tuple(core + aux)
        selectivities = []
        for table in tables:
            if table in JOB_FACT_TABLES:
                selectivities.append(float(rng.uniform(0.01, 0.2)))
            elif table == "title":
                selectivities.append(float(rng.uniform(0.02, 0.3)))
            else:
                selectivities.append(float(rng.uniform(0.001, 0.1)))
        specs.append(
            TemplateSpec(
                template_id=template_id,
                tables=tables,
                selectivities=tuple(selectivities),
                join_count=len(tables) - 1,
                has_aggregate=True,
                has_sort=False,
                has_window=False,
                has_union=False,
                cpu_intensity=float(np.clip(rng.beta(3.0, 2.0), 0.2, 0.9)),
                complexity=float(rng.uniform(0.5, 1.4)),
            )
        )
    return specs
