"""Synthetic TPC-H workload: 8 tables, 22 query templates.

TPC-H is a smaller, more uniform star schema than TPC-DS; its 22 templates
join ``lineitem``/``orders`` with a few dimensions and are mostly scan- and
aggregation-heavy.  Template 1, 9, 18 and 21 dominate the runtime, which the
synthetic complexity multipliers reproduce.
"""

from __future__ import annotations

import numpy as np

from ..plans import Catalog, TemplateSpec

__all__ = ["TPCH_TABLES", "TPCH_FACT_TABLES", "build_tpch_catalog", "build_tpch_specs"]

TPCH_TABLES: dict[str, float] = {
    "lineitem": 6.0e6,
    "orders": 1.5e6,
    "partsupp": 8.0e5,
    "part": 2.0e5,
    "customer": 1.5e5,
    "supplier": 1.0e4,
    "nation": 25,
    "region": 5,
}

TPCH_FACT_TABLES: set[str] = {"lineitem", "orders", "partsupp"}

#: Complexity multipliers for the notoriously heavy TPC-H templates.
_TPCH_HEAVY: dict[int, float] = {1: 2.0, 9: 2.5, 13: 1.6, 18: 2.2, 21: 2.4}

#: The tables each of the 22 templates touches (faithful to the spec's joins).
_TPCH_TEMPLATE_TABLES: dict[int, tuple[str, ...]] = {
    1: ("lineitem",),
    2: ("partsupp", "part", "supplier", "nation", "region"),
    3: ("lineitem", "orders", "customer"),
    4: ("lineitem", "orders"),
    5: ("lineitem", "orders", "customer", "supplier", "nation", "region"),
    6: ("lineitem",),
    7: ("lineitem", "orders", "customer", "supplier", "nation"),
    8: ("lineitem", "orders", "customer", "part", "supplier", "nation", "region"),
    9: ("lineitem", "orders", "partsupp", "part", "supplier", "nation"),
    10: ("lineitem", "orders", "customer", "nation"),
    11: ("partsupp", "supplier", "nation"),
    12: ("lineitem", "orders"),
    13: ("orders", "customer"),
    14: ("lineitem", "part"),
    15: ("lineitem", "supplier"),
    16: ("partsupp", "part", "supplier"),
    17: ("lineitem", "part"),
    18: ("lineitem", "orders", "customer"),
    19: ("lineitem", "part"),
    20: ("lineitem", "partsupp", "part", "supplier", "nation"),
    21: ("lineitem", "orders", "supplier", "nation"),
    22: ("orders", "customer"),
}

#: Rough CPU-vs-I/O intensity per template (aggregation heavy => CPU bound).
_TPCH_CPU_INTENSITY: dict[int, float] = {
    1: 0.75, 2: 0.45, 3: 0.5, 4: 0.35, 5: 0.55, 6: 0.2, 7: 0.55, 8: 0.6,
    9: 0.7, 10: 0.5, 11: 0.5, 12: 0.3, 13: 0.65, 14: 0.35, 15: 0.45,
    16: 0.55, 17: 0.6, 18: 0.7, 19: 0.4, 20: 0.5, 21: 0.65, 22: 0.45,
}


def build_tpch_catalog(seed: int = 0) -> Catalog:
    """Build the TPC-H catalogue."""
    return Catalog.generate(
        table_names=list(TPCH_TABLES),
        fact_tables=TPCH_FACT_TABLES,
        base_rows=TPCH_TABLES,
        seed=seed + 17,
    )


def build_tpch_specs(seed: int = 0) -> list[TemplateSpec]:
    """Generate the 22 TPC-H template specifications."""
    rng = np.random.default_rng((seed, 2203))
    specs: list[TemplateSpec] = []
    for template_id in range(1, 23):
        tables = _TPCH_TEMPLATE_TABLES[template_id]
        selectivities = []
        for table in tables:
            if table in TPCH_FACT_TABLES:
                selectivities.append(float(rng.uniform(0.1, 0.7)))
            else:
                selectivities.append(float(rng.uniform(0.01, 0.4)))
        complexity = _TPCH_HEAVY.get(template_id, float(rng.uniform(0.35, 1.0)))
        specs.append(
            TemplateSpec(
                template_id=template_id,
                tables=tables,
                selectivities=tuple(selectivities),
                join_count=len(tables) - 1,
                has_aggregate=template_id not in (12, 22) or True,
                has_sort=template_id in (1, 2, 3, 5, 9, 10, 13, 16, 18, 21),
                has_window=False,
                has_union=False,
                cpu_intensity=_TPCH_CPU_INTENSITY[template_id],
                complexity=complexity,
            )
        )
    return specs
