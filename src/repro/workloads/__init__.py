"""Synthetic benchmark workloads (TPC-DS, TPC-H, JOB) and batch query sets."""

from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    ClosedArrivals,
    FlashCrowdArrivals,
    PoissonArrivals,
    TraceArrivals,
    make_arrival_process,
)
from .base import BatchQuerySet, Query, Workload
from .generator import BENCHMARKS, make_workload, perturb_workload
from .job import JOB_TABLES, NUM_JOB_TEMPLATES, build_job_catalog, build_job_specs
from .tpcds import (
    TPCDS_FACT_TABLES,
    TPCDS_HEAVY_TEMPLATES,
    TPCDS_TABLES,
    build_tpcds_catalog,
    build_tpcds_specs,
)
from .tpch import TPCH_TABLES, build_tpch_catalog, build_tpch_specs

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "ClosedArrivals",
    "FlashCrowdArrivals",
    "PoissonArrivals",
    "TraceArrivals",
    "make_arrival_process",
    "BatchQuerySet",
    "Query",
    "Workload",
    "BENCHMARKS",
    "make_workload",
    "perturb_workload",
    "TPCDS_TABLES",
    "TPCDS_FACT_TABLES",
    "TPCDS_HEAVY_TEMPLATES",
    "build_tpcds_catalog",
    "build_tpcds_specs",
    "TPCH_TABLES",
    "build_tpch_catalog",
    "build_tpch_specs",
    "JOB_TABLES",
    "NUM_JOB_TEMPLATES",
    "build_job_catalog",
    "build_job_specs",
]
