"""Workload factory and perturbation helpers.

``make_workload`` is the public entry point that builds one of the three
synthetic benchmarks at a given data/query scale.  ``perturb_workload``
produces the ±10 / ±20 % data and query variations used by the paper's
adaptability experiment (Table II).
"""

from __future__ import annotations

from ..exceptions import WorkloadError
from .base import Workload
from .job import build_job_catalog, build_job_specs
from .tpcds import build_tpcds_catalog, build_tpcds_specs
from .tpch import build_tpch_catalog, build_tpch_specs

__all__ = ["make_workload", "perturb_workload", "BENCHMARKS"]

BENCHMARKS = ("tpcds", "tpch", "job")

#: Per-benchmark calibration of plan work units to resource-seconds, chosen so
#: that FIFO makespans at scale factor 1 land in the same range the paper
#: reports (TPC-DS ~20 s, TPC-H ~6 s, JOB ~10 s on DBMS-X).
_WORK_NORMALIZERS = {"tpcds": 2.0e6, "tpch": 4.0e6, "job": 1.2e7}


def make_workload(
    benchmark: str,
    scale_factor: float = 1.0,
    query_scale: float = 1.0,
    seed: int = 0,
) -> Workload:
    """Build a synthetic benchmark workload.

    Parameters
    ----------
    benchmark:
        One of ``"tpcds"``, ``"tpch"``, ``"job"``.
    scale_factor:
        Data scale factor (the paper uses 1–200 for TPC-DS/TPC-H).
    query_scale:
        Query-set scale (1x–10x duplicates templates with perturbed
        selectivities; values below 1 keep a prefix of the templates).
    seed:
        Seed controlling catalogue histograms, plan shapes, and template
        perturbations.
    """
    benchmark = benchmark.lower()
    if benchmark not in BENCHMARKS:
        raise WorkloadError(f"unknown benchmark {benchmark!r}; expected one of {BENCHMARKS}")
    if benchmark == "tpcds":
        catalog, specs = build_tpcds_catalog(seed), build_tpcds_specs(seed)
    elif benchmark == "tpch":
        catalog, specs = build_tpch_catalog(seed), build_tpch_specs(seed)
    else:
        catalog, specs = build_job_catalog(seed), build_job_specs(seed)
    return Workload(
        name=benchmark,
        catalog=catalog,
        specs=specs,
        seed=seed,
        data_scale=scale_factor,
        query_scale=query_scale,
        work_normalizer=_WORK_NORMALIZERS[benchmark],
    )


def perturb_workload(
    workload: Workload,
    data_factor: float = 1.0,
    query_factor: float = 1.0,
) -> Workload:
    """Return a perturbed copy of ``workload`` for adaptability experiments.

    ``data_factor`` rescales the underlying data (0.8x–1.2x in Table II);
    ``query_factor`` drops or duplicates a fraction of the query set.
    """
    if data_factor <= 0 or query_factor <= 0:
        raise WorkloadError("perturbation factors must be positive")
    perturbed = workload
    if data_factor != 1.0:
        perturbed = perturbed.with_data_scale(workload.data_scale * data_factor)
    if query_factor != 1.0:
        perturbed = perturbed.with_query_scale(workload.query_scale * query_factor)
    return perturbed
