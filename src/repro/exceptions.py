"""Exception hierarchy for the BQSched reproduction."""

from __future__ import annotations

__all__ = [
    "BQSchedError",
    "ConfigurationError",
    "WorkloadError",
    "SimulationError",
    "SchedulingError",
]


class BQSchedError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(BQSchedError):
    """An invalid configuration value was supplied."""


class WorkloadError(BQSchedError):
    """A workload or batch query set could not be built or is inconsistent."""


class SimulationError(BQSchedError):
    """The DBMS substrate or learned simulator reached an invalid state."""


class SchedulingError(BQSchedError):
    """A scheduler produced or was asked to execute an invalid plan."""
