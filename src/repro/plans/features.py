"""Plan-node featurisation consumed by the QueryFormer encoder.

For every node the featuriser produces a fixed-width vector containing the
operator one-hot, a table one-hot (over the workload's catalogue), predicate
histogram features, log-scaled cardinality, and operator resource weights.
For the whole plan it additionally produces the structural metadata used by
tree-bias attention: per-node heights and the pairwise tree-distance matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .operators import NUM_OPERATORS, OPERATOR_PROFILES
from .plan import PhysicalPlan, PlanNode
from .statistics import Catalog, HISTOGRAM_BINS

__all__ = ["PlanFeatures", "PlanFeaturizer"]


@dataclass(frozen=True)
class PlanFeatures:
    """Featurised plan: per-node matrix + structural metadata.

    Attributes
    ----------
    node_features:
        ``(num_nodes, feature_dim)`` array.
    heights:
        ``(num_nodes,)`` integer depths used for the height encoding.
    distances:
        ``(num_nodes, num_nodes)`` tree distances used for tree-bias attention.
    """

    node_features: np.ndarray
    heights: np.ndarray
    distances: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.node_features.shape[0]

    @property
    def feature_dim(self) -> int:
        return self.node_features.shape[1]


class PlanFeaturizer:
    """Turns :class:`PhysicalPlan` trees into :class:`PlanFeatures`."""

    #: number of scalar features appended after the one-hot blocks
    _NUM_SCALARS = 6

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._table_names = catalog.table_names()
        self._num_tables = len(self._table_names)

    @property
    def feature_dim(self) -> int:
        """Width of each node feature vector."""
        return NUM_OPERATORS + self._num_tables + HISTOGRAM_BINS + self._NUM_SCALARS

    def featurize(self, plan: PhysicalPlan) -> PlanFeatures:
        """Featurise every node of ``plan``."""
        features = np.zeros((plan.num_nodes, self.feature_dim), dtype=np.float64)
        heights = np.zeros(plan.num_nodes, dtype=np.int64)
        for node in plan.nodes():
            features[node.node_id] = self._node_vector(node)
            heights[node.node_id] = plan.depth_of(node.node_id)
        return PlanFeatures(node_features=features, heights=heights, distances=plan.tree_distances())

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _node_vector(self, node: PlanNode) -> np.ndarray:
        vector = np.zeros(self.feature_dim, dtype=np.float64)
        # Operator one-hot.
        vector[node.operator.index] = 1.0
        offset = NUM_OPERATORS
        # Table one-hot (scans only).
        if node.table is not None and node.table in self.catalog:
            vector[offset + self.catalog.table_index(node.table)] = 1.0
        offset += self._num_tables
        # Predicate histogram features (sum over predicates, like QueryFormer's
        # per-predicate encoding pooled at the node level).
        if node.predicates and node.table is not None and node.table in self.catalog:
            stats = self.catalog.table(node.table)
            pooled = np.zeros(HISTOGRAM_BINS)
            for predicate in node.predicates:
                pooled += stats.column(predicate.column).selectivity_features(predicate.selectivity)
            vector[offset : offset + HISTOGRAM_BINS] = pooled / len(node.predicates)
        offset += HISTOGRAM_BINS
        # Scalar features: log cardinality, resource weights, predicate stats.
        profile = OPERATOR_PROFILES[node.operator]
        selectivity = float(np.mean([p.selectivity for p in node.predicates])) if node.predicates else 1.0
        uses_index = float(any(p.uses_index for p in node.predicates))
        vector[offset : offset + self._NUM_SCALARS] = [
            np.log1p(node.estimated_rows) / 20.0,
            profile.cpu_per_row,
            profile.io_per_row,
            profile.memory_per_row,
            selectivity,
            uses_index,
        ]
        return vector
