"""Physical plan substrate: operators, plan trees, synthetic plan builder, features."""

from .operators import (
    JOIN_OPERATORS,
    NUM_OPERATORS,
    OPERATOR_PROFILES,
    Operator,
    OperatorProfile,
    SCAN_OPERATORS,
)
from .plan import PhysicalPlan, PlanNode, Predicate
from .statistics import Catalog, ColumnStats, HISTOGRAM_BINS, TableStats
from .builder import PlanBuilder, TemplateSpec
from .features import PlanFeatures, PlanFeaturizer

__all__ = [
    "Operator",
    "OperatorProfile",
    "OPERATOR_PROFILES",
    "NUM_OPERATORS",
    "SCAN_OPERATORS",
    "JOIN_OPERATORS",
    "PhysicalPlan",
    "PlanNode",
    "Predicate",
    "Catalog",
    "ColumnStats",
    "TableStats",
    "HISTOGRAM_BINS",
    "PlanBuilder",
    "TemplateSpec",
    "PlanFeatures",
    "PlanFeaturizer",
]
