"""Physical-plan operator catalogue.

Each operator carries a coarse resource signature (relative CPU vs. I/O
weight per processed row) that the DBMS substrate uses to turn a plan tree
into CPU work and I/O work.  The signatures follow the usual intuition:
scans are I/O heavy, sorts/aggregations and hash builds are CPU heavy,
nested-loop joins are CPU heavy with poor scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Operator", "OperatorProfile", "OPERATOR_PROFILES", "NUM_OPERATORS"]


class Operator(str, Enum):
    """Physical operators recognised by the plan builder and featuriser."""

    SEQ_SCAN = "seq_scan"
    INDEX_SCAN = "index_scan"
    BITMAP_SCAN = "bitmap_scan"
    FILTER = "filter"
    PROJECT = "project"
    HASH_JOIN = "hash_join"
    MERGE_JOIN = "merge_join"
    NESTED_LOOP = "nested_loop"
    SORT = "sort"
    AGGREGATE = "aggregate"
    HASH_AGGREGATE = "hash_aggregate"
    GROUP_BY = "group_by"
    WINDOW = "window"
    LIMIT = "limit"
    MATERIALIZE = "materialize"
    UNION = "union"
    CTE_SCAN = "cte_scan"
    GATHER = "gather"

    @property
    def index(self) -> int:
        """Stable integer id used for one-hot featurisation."""
        return _OPERATOR_ORDER[self]


_OPERATOR_ORDER = {op: i for i, op in enumerate(Operator)}
NUM_OPERATORS = len(_OPERATOR_ORDER)


@dataclass(frozen=True)
class OperatorProfile:
    """Resource signature of an operator.

    Attributes
    ----------
    cpu_per_row:
        Relative CPU work contributed per input row.
    io_per_row:
        Relative I/O work contributed per input row (only scans and
        materialisation touch storage).
    memory_per_row:
        Relative working-memory demand per row; operators with large values
        benefit from the ``memory`` running parameter.
    parallel_fraction:
        Fraction of the operator's work that can be spread across parallel
        workers (Amdahl-style).
    """

    cpu_per_row: float
    io_per_row: float
    memory_per_row: float
    parallel_fraction: float


OPERATOR_PROFILES: dict[Operator, OperatorProfile] = {
    Operator.SEQ_SCAN: OperatorProfile(0.2, 1.0, 0.0, 0.9),
    Operator.INDEX_SCAN: OperatorProfile(0.3, 0.45, 0.0, 0.5),
    Operator.BITMAP_SCAN: OperatorProfile(0.35, 0.6, 0.05, 0.6),
    Operator.FILTER: OperatorProfile(0.3, 0.0, 0.0, 0.9),
    Operator.PROJECT: OperatorProfile(0.15, 0.0, 0.0, 0.9),
    Operator.HASH_JOIN: OperatorProfile(0.9, 0.05, 0.6, 0.8),
    Operator.MERGE_JOIN: OperatorProfile(0.7, 0.05, 0.3, 0.6),
    Operator.NESTED_LOOP: OperatorProfile(1.4, 0.05, 0.1, 0.3),
    Operator.SORT: OperatorProfile(1.0, 0.1, 0.8, 0.7),
    Operator.AGGREGATE: OperatorProfile(0.8, 0.0, 0.3, 0.8),
    Operator.HASH_AGGREGATE: OperatorProfile(0.9, 0.0, 0.6, 0.8),
    Operator.GROUP_BY: OperatorProfile(0.85, 0.0, 0.4, 0.8),
    Operator.WINDOW: OperatorProfile(1.1, 0.0, 0.5, 0.5),
    Operator.LIMIT: OperatorProfile(0.05, 0.0, 0.0, 0.2),
    Operator.MATERIALIZE: OperatorProfile(0.2, 0.5, 0.7, 0.4),
    Operator.UNION: OperatorProfile(0.3, 0.0, 0.2, 0.7),
    Operator.CTE_SCAN: OperatorProfile(0.25, 0.3, 0.3, 0.5),
    Operator.GATHER: OperatorProfile(0.1, 0.0, 0.0, 0.0),
}

SCAN_OPERATORS = frozenset({Operator.SEQ_SCAN, Operator.INDEX_SCAN, Operator.BITMAP_SCAN, Operator.CTE_SCAN})
JOIN_OPERATORS = frozenset({Operator.HASH_JOIN, Operator.MERGE_JOIN, Operator.NESTED_LOOP})
__all__ += ["SCAN_OPERATORS", "JOIN_OPERATORS"]
