"""Table statistics: the database catalogue visible to a non-intrusive scheduler.

QueryFormer injects database statistics (histograms and samples) into the
predicate encoding so the representation generalises across data-scale
changes.  This module provides the synthetic equivalent: every table carries
a row count, a set of columns, and an equi-width histogram per column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import WorkloadError

__all__ = ["ColumnStats", "TableStats", "Catalog", "HISTOGRAM_BINS"]

HISTOGRAM_BINS = 8


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for a single column: an equi-width histogram over [0, 1]."""

    name: str
    histogram: tuple[float, ...]
    distinct_fraction: float = 0.1

    def __post_init__(self) -> None:
        if len(self.histogram) != HISTOGRAM_BINS:
            raise WorkloadError(f"histogram must have {HISTOGRAM_BINS} bins, got {len(self.histogram)}")
        total = sum(self.histogram)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise WorkloadError(f"histogram must sum to 1, got {total}")

    def selectivity_features(self, selectivity: float) -> np.ndarray:
        """Encode a predicate's selectivity against this column's histogram.

        Returns the histogram masked to the estimated covered prefix of the
        value domain, which is what QueryFormer's predicate encoder consumes.
        """
        hist = np.asarray(self.histogram)
        cumulative = np.cumsum(hist)
        covered = (cumulative <= selectivity + 1e-9).astype(np.float64)
        return hist * covered


@dataclass
class TableStats:
    """Statistics for one table."""

    name: str
    row_count: float
    columns: tuple[ColumnStats, ...]
    is_fact: bool = False

    def __post_init__(self) -> None:
        if self.row_count <= 0:
            raise WorkloadError(f"row_count must be positive for {self.name}")
        if not self.columns:
            raise WorkloadError(f"table {self.name} needs at least one column")

    def column(self, index: int) -> ColumnStats:
        return self.columns[index % len(self.columns)]

    def scaled(self, factor: float) -> "TableStats":
        """Return a copy with row counts scaled by ``factor``.

        Dimension tables scale sub-linearly (as in TPC-DS, where customer and
        date dimensions grow far slower than the fact tables).
        """
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        exponent = 1.0 if self.is_fact else 0.4
        return TableStats(
            name=self.name,
            row_count=self.row_count * factor**exponent,
            columns=self.columns,
            is_fact=self.is_fact,
        )


class Catalog:
    """A named collection of :class:`TableStats` with deterministic generation."""

    def __init__(self, tables: dict[str, TableStats]) -> None:
        if not tables:
            raise WorkloadError("catalog needs at least one table")
        self._tables = dict(tables)

    @classmethod
    def generate(
        cls,
        table_names: "list[str]",
        fact_tables: "set[str]",
        base_rows: dict[str, float],
        seed: int,
        columns_per_table: int = 6,
    ) -> "Catalog":
        """Build a catalogue with random but seed-deterministic histograms."""
        rng = np.random.default_rng(seed)
        tables: dict[str, TableStats] = {}
        for name in table_names:
            columns = []
            for col_index in range(columns_per_table):
                raw = rng.dirichlet(np.ones(HISTOGRAM_BINS) * 0.8)
                columns.append(
                    ColumnStats(
                        name=f"{name}_c{col_index}",
                        histogram=tuple(float(v) for v in raw / raw.sum()),
                        distinct_fraction=float(rng.uniform(0.01, 0.5)),
                    )
                )
            tables[name] = TableStats(
                name=name,
                row_count=float(base_rows.get(name, 1e5)),
                columns=tuple(columns),
                is_fact=name in fact_tables,
            )
        return cls(tables)

    def table(self, name: str) -> TableStats:
        if name not in self._tables:
            raise WorkloadError(f"unknown table {name!r}")
        return self._tables[name]

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def table_index(self, name: str) -> int:
        """Stable integer id of a table, used for one-hot featurisation."""
        return self.table_names().index(name)

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def scaled(self, factor: float) -> "Catalog":
        """Return a catalogue with all tables scaled by ``factor``."""
        return Catalog({name: stats.scaled(factor) for name, stats in self._tables.items()})

    def total_rows(self) -> float:
        return sum(stats.row_count for stats in self._tables.values())
