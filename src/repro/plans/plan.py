"""Physical plan trees.

A :class:`PhysicalPlan` is the non-intrusive scheduler's only view of a
query's internals: the paper obtains it from ``EXPLAIN`` output, we obtain it
from the synthetic plan builder.  The tree exposes everything QueryFormer
needs (operators, tables, predicates, joins, cardinalities, structure) and
everything the DBMS substrate needs (per-node CPU / I/O / memory work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..exceptions import WorkloadError
from .operators import JOIN_OPERATORS, OPERATOR_PROFILES, Operator, SCAN_OPERATORS

__all__ = ["Predicate", "PlanNode", "PhysicalPlan"]


@dataclass(frozen=True)
class Predicate:
    """A simplified scan/join predicate.

    ``column`` is an integer column id within the table, ``selectivity`` the
    estimated fraction of rows passing the predicate, and ``uses_index``
    whether an index supports it (index reuse is one source of sharing
    between queries touching the same table).
    """

    column: int
    selectivity: float
    uses_index: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise WorkloadError(f"predicate selectivity must be in (0, 1], got {self.selectivity}")


@dataclass
class PlanNode:
    """One operator node in a physical plan tree."""

    operator: Operator
    children: list["PlanNode"] = field(default_factory=list)
    table: str | None = None
    predicates: tuple[Predicate, ...] = ()
    estimated_rows: float = 1.0
    node_id: int = -1

    def __post_init__(self) -> None:
        if self.estimated_rows <= 0:
            raise WorkloadError(f"estimated_rows must be positive, got {self.estimated_rows}")
        if self.operator in SCAN_OPERATORS and self.table is None:
            raise WorkloadError(f"scan operator {self.operator} requires a table")

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_scan(self) -> bool:
        return self.operator in SCAN_OPERATORS

    @property
    def is_join(self) -> bool:
        return self.operator in JOIN_OPERATORS

    def cpu_work(self) -> float:
        """CPU work contributed by this node (profile weight x cardinality)."""
        return OPERATOR_PROFILES[self.operator].cpu_per_row * self.estimated_rows

    def io_work(self) -> float:
        """I/O work contributed by this node."""
        return OPERATOR_PROFILES[self.operator].io_per_row * self.estimated_rows

    def memory_demand(self) -> float:
        """Working-memory demand of this node."""
        return OPERATOR_PROFILES[self.operator].memory_per_row * self.estimated_rows


class PhysicalPlan:
    """An immutable physical plan tree with cached structural metadata."""

    def __init__(self, root: PlanNode) -> None:
        self.root = root
        self._nodes: list[PlanNode] = []
        self._parents: dict[int, int] = {}
        self._heights: dict[int, int] = {}
        self._assign_ids()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _assign_ids(self) -> None:
        """Number nodes in pre-order and record parent / height metadata."""
        stack: list[tuple[PlanNode, int, int]] = [(self.root, -1, 0)]
        while stack:
            node, parent_id, depth = stack.pop()
            node.node_id = len(self._nodes)
            self._nodes.append(node)
            if parent_id >= 0:
                self._parents[node.node_id] = parent_id
            self._heights[node.node_id] = depth
            for child in reversed(node.children):
                stack.append((child, node.node_id, depth + 1))

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def height(self) -> int:
        """Maximum node depth (root has depth 0)."""
        return max(self._heights.values())

    def nodes(self) -> Iterator[PlanNode]:
        """Iterate nodes in pre-order."""
        return iter(self._nodes)

    def node(self, node_id: int) -> PlanNode:
        return self._nodes[node_id]

    def parent_of(self, node_id: int) -> int | None:
        """Return the parent node id, or ``None`` for the root."""
        return self._parents.get(node_id)

    def depth_of(self, node_id: int) -> int:
        return self._heights[node_id]

    def adjacency(self) -> np.ndarray:
        """Dense symmetric adjacency matrix (parent-child edges)."""
        matrix = np.zeros((self.num_nodes, self.num_nodes), dtype=np.float64)
        for child_id, parent_id in self._parents.items():
            matrix[child_id, parent_id] = 1.0
            matrix[parent_id, child_id] = 1.0
        return matrix

    def tree_distances(self) -> np.ndarray:
        """All-pairs shortest-path distances along tree edges (BFS per node)."""
        n = self.num_nodes
        adjacency_lists: list[list[int]] = [[] for _ in range(n)]
        for child_id, parent_id in self._parents.items():
            adjacency_lists[child_id].append(parent_id)
            adjacency_lists[parent_id].append(child_id)
        distances = np.full((n, n), np.inf)
        for start in range(n):
            distances[start, start] = 0.0
            frontier = [start]
            depth = 0
            seen = {start}
            while frontier:
                depth += 1
                next_frontier = []
                for node_id in frontier:
                    for neighbour in adjacency_lists[node_id]:
                        if neighbour not in seen:
                            seen.add(neighbour)
                            distances[start, neighbour] = depth
                            next_frontier.append(neighbour)
                frontier = next_frontier
        return distances

    # ------------------------------------------------------------------ #
    # Semantics used by the DBMS substrate and featuriser
    # ------------------------------------------------------------------ #
    def tables(self) -> dict[str, float]:
        """Tables accessed by the plan mapped to the rows scanned from each."""
        usage: dict[str, float] = {}
        for node in self._nodes:
            if node.is_scan and node.table is not None:
                usage[node.table] = usage.get(node.table, 0.0) + node.estimated_rows
        return usage

    def total_cpu_work(self) -> float:
        return sum(node.cpu_work() for node in self._nodes)

    def total_io_work(self) -> float:
        return sum(node.io_work() for node in self._nodes)

    def total_memory_demand(self) -> float:
        return sum(node.memory_demand() for node in self._nodes)

    def parallel_fraction(self) -> float:
        """Work-weighted fraction of the plan that parallel workers can speed up."""
        total = 0.0
        parallel = 0.0
        for node in self._nodes:
            work = node.cpu_work() + node.io_work()
            total += work
            parallel += work * OPERATOR_PROFILES[node.operator].parallel_fraction
        return parallel / total if total > 0 else 0.0

    def memory_sensitivity(self) -> float:
        """Fraction of total work in memory-hungry operators (sorts, hashes)."""
        total = self.total_cpu_work() + self.total_io_work()
        if total <= 0:
            return 0.0
        hungry = sum(
            node.cpu_work()
            for node in self._nodes
            if OPERATOR_PROFILES[node.operator].memory_per_row >= 0.5
        )
        return min(1.0, hungry / total)

    def num_joins(self) -> int:
        return sum(1 for node in self._nodes if node.is_join)

    def num_scans(self) -> int:
        return sum(1 for node in self._nodes if node.is_scan)

    def operator_counts(self) -> dict[Operator, int]:
        counts: dict[Operator, int] = {}
        for node in self._nodes:
            counts[node.operator] = counts.get(node.operator, 0) + 1
        return counts

    def to_dict(self) -> dict:
        """Serialise the plan to a nested dictionary (for logs / debugging)."""

        def encode(node: PlanNode) -> dict:
            return {
                "operator": node.operator.value,
                "table": node.table,
                "rows": node.estimated_rows,
                "predicates": [
                    {"column": p.column, "selectivity": p.selectivity, "uses_index": p.uses_index}
                    for p in node.predicates
                ],
                "children": [encode(child) for child in node.children],
            }

        return encode(self.root)

    def __repr__(self) -> str:
        return (
            f"PhysicalPlan(nodes={self.num_nodes}, height={self.height}, "
            f"joins={self.num_joins()}, scans={self.num_scans()})"
        )
