"""Synthetic physical-plan builder.

Real TPC-DS / TPC-H / JOB plans are produced by a DBMS optimiser from SQL
text.  This builder plays that role for the synthetic workloads: given a
*template specification* (which tables the query touches, how many joins,
whether it aggregates/sorts/windows, and its predicate selectivities) it
constructs a deterministic plan tree whose shape and cardinalities follow the
usual left-deep join pipelines that optimisers emit for star-schema queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import WorkloadError
from .operators import Operator
from .plan import PhysicalPlan, PlanNode, Predicate
from .statistics import Catalog

__all__ = ["TemplateSpec", "PlanBuilder"]


@dataclass(frozen=True)
class TemplateSpec:
    """Declarative description of a query template.

    Attributes
    ----------
    template_id:
        Template number within its benchmark (e.g. TPC-DS query 14).
    tables:
        Tables scanned by the query, fact table(s) first.
    join_count:
        Number of binary joins; must be ``len(tables) - 1`` or smaller
        (remaining tables become correlated/CTE scans).
    selectivities:
        Scan selectivity per table, aligned with ``tables``.
    has_aggregate / has_sort / has_window / has_union:
        Shape flags controlling which pipeline operators are appended above
        the join tree.
    cpu_intensity:
        0 → purely I/O bound, 1 → purely CPU bound; skews operator choice.
    complexity:
        Relative size multiplier of the query (heavy TPC-DS templates such as
        query 14 or 23 get values well above 1).
    """

    template_id: int
    tables: tuple[str, ...]
    selectivities: tuple[float, ...]
    join_count: int
    has_aggregate: bool = True
    has_sort: bool = False
    has_window: bool = False
    has_union: bool = False
    cpu_intensity: float = 0.5
    complexity: float = 1.0

    def __post_init__(self) -> None:
        if not self.tables:
            raise WorkloadError("template needs at least one table")
        if len(self.selectivities) != len(self.tables):
            raise WorkloadError("selectivities must align with tables")
        if self.join_count > len(self.tables) - 1:
            raise WorkloadError("join_count cannot exceed len(tables) - 1")
        if not 0.0 <= self.cpu_intensity <= 1.0:
            raise WorkloadError("cpu_intensity must be in [0, 1]")
        if self.complexity <= 0:
            raise WorkloadError("complexity must be positive")


class PlanBuilder:
    """Builds :class:`PhysicalPlan` trees from :class:`TemplateSpec` objects."""

    def __init__(self, catalog: Catalog, seed: int = 0) -> None:
        self.catalog = catalog
        self._seed = seed

    def build(self, spec: TemplateSpec) -> PhysicalPlan:
        """Construct the plan for ``spec`` deterministically."""
        rng = np.random.default_rng((self._seed, spec.template_id))
        scans = [self._build_scan(spec, index, rng) for index in range(len(spec.tables))]

        # Left-deep join pipeline over the first join_count + 1 scans.
        current = scans[0]
        current_rows = scans[0].estimated_rows
        for join_index in range(spec.join_count):
            right = scans[join_index + 1]
            join_op = self._choose_join(spec, rng)
            # Output cardinality shrinks towards the dimension side, as in a
            # typical star-schema foreign-key join.
            out_rows = max(1.0, current_rows * min(1.0, 1.2 * right.estimated_rows / max(right.estimated_rows, 1.0)) * float(rng.uniform(0.3, 0.9)))
            current = PlanNode(operator=join_op, children=[current, right], estimated_rows=out_rows)
            current_rows = out_rows

        # Remaining scans (if any) attach through CTE/materialise nodes,
        # mimicking WITH-clause reuse in the heavier TPC-DS templates.
        for scan in scans[spec.join_count + 1 :]:
            cte = PlanNode(operator=Operator.MATERIALIZE, children=[scan], estimated_rows=scan.estimated_rows)
            out_rows = max(1.0, current_rows * float(rng.uniform(0.5, 1.0)))
            current = PlanNode(operator=Operator.HASH_JOIN, children=[current, cte], estimated_rows=out_rows)
            current_rows = out_rows

        current = self._add_pipeline(spec, current, current_rows, rng)
        return PhysicalPlan(current)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _build_scan(self, spec: TemplateSpec, index: int, rng: np.random.Generator) -> PlanNode:
        table_name = spec.tables[index]
        stats = self.catalog.table(table_name)
        selectivity = spec.selectivities[index]
        uses_index = selectivity < 0.05 and rng.random() < 0.7
        operator = Operator.INDEX_SCAN if uses_index else Operator.SEQ_SCAN
        scanned_rows = max(1.0, stats.row_count * spec.complexity * (selectivity if uses_index else 1.0))
        output_rows = max(1.0, stats.row_count * spec.complexity * selectivity)
        predicate = Predicate(
            column=int(rng.integers(0, len(stats.columns))),
            selectivity=selectivity,
            uses_index=uses_index,
        )
        scan = PlanNode(
            operator=operator,
            table=table_name,
            predicates=(predicate,),
            estimated_rows=scanned_rows,
        )
        if selectivity < 1.0 and not uses_index:
            return PlanNode(operator=Operator.FILTER, children=[scan], predicates=(predicate,), estimated_rows=output_rows)
        return scan

    def _choose_join(self, spec: TemplateSpec, rng: np.random.Generator) -> Operator:
        # CPU-intensive templates favour hash joins and the occasional
        # nested-loop; I/O-intensive ones favour merge joins over sorted scans.
        roll = rng.random()
        if roll < 0.15 + 0.25 * spec.cpu_intensity:
            return Operator.NESTED_LOOP if roll < 0.05 * spec.cpu_intensity else Operator.HASH_JOIN
        if roll < 0.75:
            return Operator.HASH_JOIN
        return Operator.MERGE_JOIN

    def _add_pipeline(
        self,
        spec: TemplateSpec,
        current: PlanNode,
        current_rows: float,
        rng: np.random.Generator,
    ) -> PlanNode:
        """Append aggregation / window / sort / union operators above the joins."""
        if spec.has_union:
            mirror = PlanNode(
                operator=Operator.CTE_SCAN,
                table=spec.tables[0],
                estimated_rows=max(1.0, current_rows * float(rng.uniform(0.4, 0.8))),
            )
            current = PlanNode(
                operator=Operator.UNION,
                children=[current, mirror],
                estimated_rows=current_rows + mirror.estimated_rows,
            )
            current_rows = current.estimated_rows
        if spec.has_window:
            current = PlanNode(operator=Operator.WINDOW, children=[current], estimated_rows=current_rows)
        if spec.has_aggregate:
            agg_op = Operator.HASH_AGGREGATE if spec.cpu_intensity > 0.4 else Operator.AGGREGATE
            grouped_rows = max(1.0, current_rows * float(rng.uniform(0.001, 0.05)))
            current = PlanNode(operator=agg_op, children=[current], estimated_rows=grouped_rows)
            current_rows = grouped_rows
        if spec.has_sort:
            current = PlanNode(operator=Operator.SORT, children=[current], estimated_rows=current_rows)
        current = PlanNode(operator=Operator.LIMIT, children=[current], estimated_rows=min(100.0, current_rows))
        return current
