"""Central-finite-difference gradcheck of every ``repro.nn`` layer.

Each test expresses a scalar loss through the autograd tape, backpropagates
once, and verifies every parameter (and, where interesting, input) gradient
against :func:`gradcheck.numeric_gradient`.  Boundary cases the fused
kernels also have to get right are covered explicitly: masked softmax with
``-inf``-style masked-out entries and batch-norm in training mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from gradcheck import assert_gradients_close, numeric_gradient, stateless
from repro.nn import (
    Activation,
    AttentionBlock,
    AttentionEncoder,
    BatchNorm,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    MultiHeadAttention,
    Sequential,
    Tensor,
    cross_entropy,
    entropy,
    huber_loss,
    kl_divergence,
    masked_log_softmax,
    mse_loss,
    nll_loss,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


def check_module(module, loss_fn, eps=1e-6, atol=1e-6, rtol=1e-4):
    """Gradcheck every parameter of ``module`` against ``loss_fn``."""
    module.zero_grad()
    loss_fn().backward()
    checked = 0
    for name, param in module.named_parameters():
        analytic = param.grad if param.grad is not None else np.zeros_like(param.data)
        numeric = numeric_gradient(lambda: float(loss_fn().data), param.data, eps=eps)
        assert_gradients_close(analytic, numeric, atol=atol, rtol=rtol, label=name)
        checked += 1
    assert checked > 0


def check_input(loss_from_input, x, eps=1e-6, atol=1e-6, rtol=1e-4):
    """Gradcheck the loss w.r.t. an input array."""
    tensor = Tensor(x, requires_grad=True)
    loss_from_input(tensor).backward()
    numeric = numeric_gradient(lambda: float(loss_from_input(Tensor(x)).data), x, eps=eps)
    assert_gradients_close(tensor.grad, numeric, atol=atol, rtol=rtol, label="input")


class TestLayerGradcheck:
    def test_linear(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(5, 4))
        check_module(layer, lambda: (layer(Tensor(x)) ** 2).sum())
        check_input(lambda t: (layer(t) ** 2).sum(), x)

    def test_linear_without_bias(self, rng):
        layer = Linear(3, 2, rng, bias=False)
        x = rng.normal(size=(4, 3))
        check_module(layer, lambda: layer(Tensor(x)).tanh().sum())

    def test_activation_layers(self, rng):
        x = rng.normal(size=(3, 4))
        for name in ("relu", "tanh", "sigmoid", "identity"):
            layer = Activation(name)
            check_input(lambda t: (layer(t) * layer(t)).sum(), x + 0.1)

    def test_mlp_each_activation(self, rng):
        for activation in ("relu", "tanh", "sigmoid"):
            mlp = MLP([4, 6, 2], rng, activation=activation)
            x = rng.normal(size=(3, 4))
            check_module(mlp, lambda: (mlp(Tensor(x)) ** 2).sum())

    def test_mlp_final_activation(self, rng):
        mlp = MLP([3, 5, 2], rng, activation="tanh", final_activation=True)
        x = rng.normal(size=(2, 3))
        check_module(mlp, lambda: mlp(Tensor(x)).sum())

    def test_sequential(self, rng):
        seq = Sequential(Linear(3, 4, rng), Activation("relu"), Linear(4, 2, rng))
        x = rng.normal(size=(3, 3))
        check_module(seq, lambda: (seq(Tensor(x)) ** 2).sum())

    def test_embedding(self, rng):
        table = Embedding(6, 4, rng)
        ids = np.array([0, 3, 3, 5])
        check_module(table, lambda: (table(ids) ** 2).sum())

    def test_layer_norm(self, rng):
        norm = LayerNorm(5)
        norm.gamma.data[:] = rng.normal(1.0, 0.2, size=5)
        norm.beta.data[:] = rng.normal(size=5)
        x = rng.normal(2.0, 1.5, size=(4, 5))
        check_module(norm, lambda: (norm(Tensor(x)) ** 2).sum())
        check_input(lambda t: (norm(t) ** 2).sum(), x)

    def test_layer_norm_3d(self, rng):
        norm = LayerNorm(4)
        x = rng.normal(size=(2, 3, 4))
        check_module(norm, lambda: (norm(Tensor(x)) ** 2).sum())
        check_input(lambda t: (norm(t) ** 2).sum(), x)

    def test_batch_norm_train_mode_2d(self, rng):
        norm = BatchNorm(4)
        norm.gamma.data[:] = rng.normal(1.0, 0.2, size=4)
        norm.beta.data[:] = rng.normal(size=4)
        x = rng.normal(1.0, 2.0, size=(6, 4))

        def loss():
            with stateless(norm):
                return (norm(Tensor(x)) ** 2).sum()

        check_module(norm, loss)

        tensor = Tensor(x, requires_grad=True)
        with stateless(norm):
            (norm(tensor) ** 2).sum().backward()

        def input_loss():
            with stateless(norm):
                return float((norm(Tensor(x)) ** 2).sum().data)

        numeric = numeric_gradient(input_loss, x)
        assert_gradients_close(tensor.grad, numeric, label="batchnorm input")

    def test_batch_norm_train_mode_3d(self, rng):
        norm = BatchNorm(3)
        x = rng.normal(size=(2, 4, 3))

        def loss():
            with stateless(norm):
                return (norm(Tensor(x)) ** 2).sum()

        check_module(norm, loss)

    def test_batch_norm_eval_mode(self, rng):
        norm = BatchNorm(3)
        norm.running_mean = rng.normal(size=3)
        norm.running_var = rng.uniform(0.5, 2.0, size=3)
        norm.eval()
        x = rng.normal(size=(5, 3))
        check_module(norm, lambda: (norm(Tensor(x)) ** 2).sum())
        check_input(lambda t: (norm(t) ** 2).sum(), x)

    def test_multi_head_attention(self, rng):
        attention = MultiHeadAttention(model_dim=6, num_heads=2, rng=rng)
        x = rng.normal(size=(2, 3, 6))
        check_module(attention, lambda: (attention(Tensor(x)) ** 2).sum(), atol=5e-6)
        check_input(lambda t: (attention(t) ** 2).sum(), x, atol=5e-6)

    def test_attention_block_layer_norm(self, rng):
        block = AttentionBlock(model_dim=6, num_heads=2, rng=rng, norm="layer")
        x = rng.normal(size=(2, 3, 6))
        check_module(block, lambda: (block(Tensor(x)) ** 2).sum(), atol=5e-6)

    def test_attention_block_batch_norm(self, rng):
        block = AttentionBlock(model_dim=4, num_heads=2, rng=rng, norm="batch")
        x = rng.normal(size=(2, 3, 4))

        def loss():
            with stateless(block):
                return (block(Tensor(x)) ** 2).sum()

        check_module(block, loss, atol=5e-6)

    def test_attention_encoder(self, rng):
        encoder = AttentionEncoder(model_dim=4, num_heads=2, num_layers=2, rng=rng, norm="layer")
        x = rng.normal(size=(1, 3, 4))
        check_module(encoder, lambda: (encoder(Tensor(x)) ** 2).sum(), atol=5e-6)


class TestFunctionalGradcheck:
    def test_masked_log_softmax_interior(self, rng):
        logits = rng.normal(size=(3, 5))
        mask = np.ones((3, 5), dtype=bool)
        check_input(lambda t: (masked_log_softmax(t, mask) ** 2).sum(), logits)

    def test_masked_log_softmax_masked_boundary(self, rng):
        """Masked-out entries sit at the -1e8 'minus infinity' boundary.

        Their log-probabilities are astronomically negative, so the loss
        reads only surviving entries; masked logits must get zero gradient
        through the shared normaliser.
        """
        logits = rng.normal(size=(3, 5))
        mask = np.ones((3, 5), dtype=bool)
        mask[0, 1] = mask[1, 3] = mask[1, 4] = mask[2, 0] = False

        def loss(t):
            log_probs = masked_log_softmax(t, mask)
            picked = (log_probs * Tensor(mask.astype(float))).sum()
            return picked * -1.0

        check_input(loss, logits)
        tensor = Tensor(logits, requires_grad=True)
        loss(tensor).backward()
        assert np.all(tensor.grad[~mask] == 0.0)

    def test_losses(self, rng):
        logits = rng.normal(size=5)
        target = rng.normal(size=5)
        check_input(lambda t: cross_entropy(t, 2), logits)
        check_input(lambda t: mse_loss(t, Tensor(target)), logits)
        check_input(lambda t: huber_loss(t, Tensor(target), delta=0.5), logits)
        check_input(lambda t: entropy(t.log_softmax()) * -1.0, logits)
        check_input(lambda t: nll_loss(t.log_softmax().reshape(1, 5), np.array([3])), logits)

    def test_kl_divergence(self, rng):
        old = Tensor(rng.normal(size=(2, 4))).log_softmax().data
        new_logits = rng.normal(size=(2, 4))
        check_input(lambda t: kl_divergence(old, t.log_softmax()), new_logits)
