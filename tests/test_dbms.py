"""Tests for the DBMS substrate: profiles, params, buffer, engine, logs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SchedulerConfig
from repro.dbms import (
    BufferPool,
    ConfigurationSpace,
    DBMSProfile,
    ExecutionLog,
    QueryExecutionRecord,
    RoundLog,
    RunningParameters,
)
from repro.exceptions import ConfigurationError, SchedulingError, SimulationError


class TestProfiles:
    def test_canonical_profiles_exist(self):
        for name in ("x", "y", "z"):
            profile = DBMSProfile.by_name(name)
            assert profile.cpu_capacity > 0

    def test_by_name_accepts_full_names(self):
        assert DBMSProfile.by_name("DBMS-Z").name == "DBMS-Z"

    def test_by_name_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            DBMSProfile.by_name("dbms-q")

    def test_dbms_z_is_fastest_and_smoothed(self):
        x, z = DBMSProfile.dbms_x(), DBMSProfile.dbms_z()
        assert z.speed > x.speed
        assert z.contention_smoothing > x.contention_smoothing

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            DBMSProfile(
                name="bad", cpu_capacity=0, io_capacity=1, memory_capacity_mb=1, buffer_pool_rows=1,
                sharing_strength=0.1, contention_smoothing=0.1, speed=1, noise=0.1, default_connections=1,
            )


class TestRunningParameters:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunningParameters(workers=0)
        with pytest.raises(ConfigurationError):
            RunningParameters(memory_mb=0)

    def test_str(self):
        assert str(RunningParameters(2, 256)) == "2w/256MB"

    def test_configuration_space_enumeration(self):
        space = ConfigurationSpace(SchedulerConfig(worker_options=(1, 2), memory_options=(64, 256)))
        assert len(space) == 4
        assert space.default == RunningParameters(1, 64)
        assert space.max_resources == RunningParameters(2, 256)
        assert space.index_of(RunningParameters(2, 64)) == 2

    def test_configuration_space_unknown_config(self):
        space = ConfigurationSpace(SchedulerConfig())
        with pytest.raises(ConfigurationError):
            space.index_of(RunningParameters(16, 4096))

    def test_closest_to_respects_allowed(self):
        space = ConfigurationSpace(SchedulerConfig(worker_options=(1, 2), memory_options=(64, 256)))
        closest = space.closest_to(RunningParameters(2, 256), allowed=[0, 1])
        assert closest == RunningParameters(1, 256)


class TestBufferPool:
    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            BufferPool(0)

    def test_cached_fraction_grows_with_touch(self):
        pool = BufferPool(1000)
        assert pool.cached_fraction("t", 100) == 0.0
        pool.touch("t", 50, now=1.0)
        assert pool.cached_fraction("t", 100) == pytest.approx(0.5)

    def test_eviction_respects_capacity(self):
        pool = BufferPool(100)
        pool.touch("a", 80, now=1.0)
        pool.touch("b", 80, now=2.0)
        assert pool.used_rows <= 100 + 1e-9
        # the older table was evicted first
        assert pool.cached_fraction("b", 80) > pool.cached_fraction("a", 80)

    def test_negative_touch_rejected(self):
        with pytest.raises(SimulationError):
            BufferPool(10).touch("t", -1, now=0.0)

    def test_clear(self):
        pool = BufferPool(100)
        pool.touch("t", 10, now=0.0)
        pool.clear()
        assert pool.used_rows == 0.0


class TestExecutionSession:
    def test_submit_and_advance_complete_batch(self, tpch_batch, engine_x):
        session = engine_x.new_session(tpch_batch, num_connections=4, round_id=0)
        for query in list(tpch_batch)[:4]:
            session.submit(query.query_id, RunningParameters(1, 64))
        assert not session.has_idle_connection
        event = session.advance()
        assert event.finish_time > 0
        assert session.has_idle_connection

    def test_submit_rejects_non_pending(self, tpch_batch, engine_x):
        session = engine_x.new_session(tpch_batch, num_connections=2)
        session.submit(0, RunningParameters(1, 64))
        with pytest.raises(SchedulingError):
            session.submit(0, RunningParameters(1, 64))

    def test_submit_rejects_without_idle_connection(self, tpch_batch, engine_x):
        session = engine_x.new_session(tpch_batch, num_connections=1)
        session.submit(0, RunningParameters(1, 64))
        with pytest.raises(SchedulingError):
            session.submit(1, RunningParameters(1, 64))

    def test_advance_requires_running_query(self, tpch_batch, engine_x):
        session = engine_x.new_session(tpch_batch, num_connections=1)
        with pytest.raises(SimulationError):
            session.advance()

    def test_finish_times_monotone(self, tpch_batch, engine_x):
        order = [q.query_id for q in tpch_batch]
        log = engine_x.execute_order(tpch_batch, order, RunningParameters(1, 64), num_connections=4)
        finishes = [r.finish_time for r in sorted(log, key=lambda r: r.finish_time)]
        assert all(b >= a for a, b in zip(finishes, finishes[1:]))
        assert len(log) == len(tpch_batch)

    def test_execute_order_validates_permutation(self, tpch_batch, engine_x):
        with pytest.raises(SchedulingError):
            engine_x.execute_order(tpch_batch, [0, 1, 2], RunningParameters(1, 64))

    def test_rounds_are_reproducible_per_round_id(self, tpch_batch, engine_x):
        order = [q.query_id for q in tpch_batch]
        log_a = engine_x.execute_order(tpch_batch, order, RunningParameters(1, 64), num_connections=4, round_id=7)
        log_b = engine_x.execute_order(tpch_batch, order, RunningParameters(1, 64), num_connections=4, round_id=7)
        assert log_a.makespan == pytest.approx(log_b.makespan)

    def test_noise_differs_across_rounds(self, tpch_batch, engine_x):
        order = [q.query_id for q in tpch_batch]
        makespans = {
            engine_x.execute_order(tpch_batch, order, RunningParameters(1, 64), num_connections=4, round_id=r).makespan
            for r in range(3)
        }
        assert len(makespans) == 3

    def test_more_connections_do_not_slow_things_down_dramatically(self, tpch_batch, engine_x):
        order = [q.query_id for q in tpch_batch]
        narrow = engine_x.execute_order(tpch_batch, order, RunningParameters(1, 64), num_connections=1, round_id=0)
        wide = engine_x.execute_order(tpch_batch, order, RunningParameters(1, 64), num_connections=8, round_id=0)
        assert wide.makespan < narrow.makespan

    def test_isolated_probe_parallelism_speedup(self, tpch_batch, engine_x):
        query = max(tpch_batch, key=lambda q: q.cpu_work)
        single = engine_x.estimate_isolated_time(query, RunningParameters(1, 256))
        parallel = engine_x.estimate_isolated_time(query, RunningParameters(2, 256))
        assert parallel < single

    def test_isolated_probe_memory_speedup(self, tpch_batch, engine_x):
        query = max(tpch_batch, key=lambda q: q.memory_sensitivity * q.total_work)
        small_memory = engine_x.estimate_isolated_time(query, RunningParameters(1, 64))
        big_memory = engine_x.estimate_isolated_time(query, RunningParameters(1, 256))
        assert big_memory <= small_memory

    def test_isolated_probe_is_deterministic(self, tpch_batch, engine_x):
        query = tpch_batch[0]
        a = engine_x.estimate_isolated_time(query, RunningParameters(1, 64))
        b = engine_x.estimate_isolated_time(query, RunningParameters(1, 64))
        assert a == pytest.approx(b)

    def test_contention_slows_concurrent_execution_on_average(self, tpch_batch, engine_x):
        # On average, queries under heavy concurrency take longer than in
        # isolation (individual queries may still speed up via data sharing).
        isolated = {
            q.query_id: engine_x.estimate_isolated_time(q, RunningParameters(1, 64)) for q in tpch_batch
        }
        order = [q.query_id for q in tpch_batch]
        log = engine_x.execute_order(
            tpch_batch, order, RunningParameters(1, 64), num_connections=len(tpch_batch), round_id=0
        )
        slowdowns = [r.execution_time / isolated[r.query_id] for r in log]
        assert np.mean(slowdowns) > 1.0

    def test_dbms_z_is_faster_than_x(self, tpch_batch, engine_x, engine_z):
        order = [q.query_id for q in tpch_batch]
        x_makespan = engine_x.execute_order(tpch_batch, order, RunningParameters(1, 64), num_connections=6, round_id=0).makespan
        z_makespan = engine_z.execute_order(tpch_batch, order, RunningParameters(1, 64), num_connections=6, round_id=0).makespan
        assert z_makespan < x_makespan

    def test_collect_logs_round_count(self, tpch_batch, engine_x):
        orders = [[q.query_id for q in tpch_batch] for _ in range(3)]
        log = engine_x.collect_logs(tpch_batch, orders, RunningParameters(1, 64), num_connections=4)
        assert len(log) == 3
        assert len(log.all_records()) == 3 * len(tpch_batch)


class TestLogs:
    def _record(self, query_id, start, end, connection=0, params=RunningParameters(1, 64)):
        return QueryExecutionRecord(
            query_id=query_id, query_name=f"q{query_id}", template_id=query_id,
            connection=connection, parameters=params, submit_time=start, finish_time=end,
        )

    def test_record_validation(self):
        with pytest.raises(ValueError):
            self._record(0, 5.0, 1.0)

    def test_overlap_computation(self):
        a = self._record(0, 0.0, 10.0)
        b = self._record(1, 5.0, 15.0)
        c = self._record(2, 12.0, 20.0)
        assert a.overlap_with(b) == pytest.approx(5.0)
        assert b.overlap_with(a) == pytest.approx(5.0)
        assert a.overlap_with(c) == 0.0

    def test_round_log_makespan(self):
        round_log = RoundLog(round_id=0)
        round_log.add(self._record(0, 0.0, 4.0))
        round_log.add(self._record(1, 1.0, 9.0))
        assert round_log.makespan == pytest.approx(9.0)

    def test_concurrency_snapshots_targets(self):
        round_log = RoundLog(round_id=0)
        round_log.add(self._record(0, 0.0, 10.0))
        round_log.add(self._record(1, 2.0, 6.0, connection=1))
        snapshots = round_log.concurrency_snapshots()
        # snapshot at t=2 sees both queries running; query 1 finishes first
        last = snapshots[-1]
        assert set(last.running_query_ids) == {0, 1}
        assert last.running_query_ids[last.earliest_index] == 1
        assert last.earliest_remaining == pytest.approx(4.0)

    def test_execution_log_aggregations(self):
        log = ExecutionLog()
        for round_id in range(2):
            round_log = RoundLog(round_id=round_id)
            round_log.add(self._record(0, 0.0, 4.0 + round_id))
            round_log.add(self._record(1, 1.0, 3.0, connection=1, params=RunningParameters(2, 64)))
            log.add_round(round_log)
        averages = log.average_execution_times()
        assert averages[0] == pytest.approx(4.5)
        by_config = log.execution_times_by_configuration()
        assert RunningParameters(2, 64) in by_config[1]
        overlaps = log.pairwise_overlaps()
        assert (0, 1) in overlaps
        assert log.makespans() == [pytest.approx(4.0), pytest.approx(5.0)]

    def test_execution_log_extend(self):
        log_a, log_b = ExecutionLog(), ExecutionLog()
        round_log = RoundLog(round_id=0)
        round_log.add(self._record(0, 0.0, 1.0))
        log_b.add_round(round_log)
        log_a.extend(log_b)
        assert len(log_a) == 1
