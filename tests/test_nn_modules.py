"""Tests for layers, attention, losses, optimisers and serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Activation,
    Adam,
    AttentionBlock,
    AttentionEncoder,
    BatchNorm,
    Checkpoint,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    MultiHeadAttention,
    SGD,
    Sequential,
    Tensor,
    clip_grad_norm,
    cross_entropy,
    entropy,
    huber_loss,
    kl_divergence,
    load_module,
    masked_log_softmax,
    mse_loss,
    nll_loss,
    one_hot,
    save_module,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestLayers:
    def test_linear_shape(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_linear_without_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 12

    def test_mlp_shapes_and_depth(self, rng):
        mlp = MLP([4, 8, 8, 2], rng)
        out = mlp(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 2)
        assert len(list(mlp.parameters())) == 6  # three Linear layers, weight + bias each

    def test_mlp_rejects_single_width(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng)

    def test_mlp_final_activation_bounds_output(self, rng):
        mlp = MLP([3, 4], rng, activation="tanh", final_activation=True)
        out = mlp(Tensor(np.full((2, 3), 100.0)))
        assert np.all(np.abs(out.data) <= 1.0)

    def test_activation_unknown_name(self):
        with pytest.raises(ValueError):
            Activation("swish")

    def test_sequential_iterates_in_order(self, rng):
        seq = Sequential(Linear(2, 2, rng), Activation("relu"))
        assert len(seq) == 2
        out = seq(Tensor(np.ones((1, 2))))
        assert out.shape == (1, 2)

    def test_layernorm_normalises_last_dim(self):
        norm = LayerNorm(6)
        out = norm(Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(4, 6))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_batchnorm_train_and_eval_modes(self):
        norm = BatchNorm(3)
        data = np.random.default_rng(0).normal(2.0, 1.5, size=(16, 3))
        out = norm(Tensor(data))
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-7)
        norm.eval()
        single = norm(Tensor(data[:1]))
        assert single.shape == (1, 3)

    def test_embedding_lookup_and_bounds(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([0, 3, 9]))
        assert out.shape == (3, 4)
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_state_dict_roundtrip(self, rng):
        mlp = MLP([3, 4, 2], rng)
        state = mlp.state_dict()
        other = MLP([3, 4, 2], np.random.default_rng(99))
        other.load_state_dict(state)
        x = Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(mlp(x).data, other(x).data)

    def test_load_state_dict_rejects_mismatch(self, rng):
        mlp = MLP([3, 4, 2], rng)
        with pytest.raises(KeyError):
            mlp.load_state_dict({"bogus": np.zeros(3)})

    def test_named_parameters_are_qualified(self, rng):
        mlp = MLP([2, 2], rng)
        names = [name for name, _ in mlp.named_parameters()]
        assert all("." in name for name in names)

    def test_zero_grad_clears_all(self, rng):
        mlp = MLP([2, 2], rng)
        mlp(Tensor(np.ones((1, 2)))).sum().backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestAttention:
    def test_mha_output_shape(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        out = mha(Tensor(np.random.default_rng(0).normal(size=(5, 8))))
        assert out.shape == (5, 8)

    def test_mha_rejects_bad_head_count(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2, rng)

    def test_mha_bias_shifts_attention(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        x = Tensor(np.random.default_rng(1).normal(size=(4, 8)))
        bias = np.full((4, 4), 0.0)
        bias[:, 0] = 10.0  # force everyone to attend to token 0
        weights = mha.attention_weights(x, bias=bias)
        assert weights.shape == (2, 4, 4)
        assert np.all(weights[:, :, 0] > 0.9)

    def test_mha_bias_shape_validation(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        with pytest.raises(ValueError):
            mha(Tensor(np.zeros((4, 8))), bias=np.zeros((3, 3)))

    def test_attention_block_norm_options(self, rng):
        for norm in ("batch", "layer"):
            block = AttentionBlock(8, 2, rng, norm=norm)
            out = block(Tensor(np.random.default_rng(0).normal(size=(6, 8))))
            assert out.shape == (6, 8)
        with pytest.raises(ValueError):
            AttentionBlock(8, 2, rng, norm="instance")

    def test_attention_encoder_stacks_layers(self, rng):
        encoder = AttentionEncoder(8, 2, 3, rng)
        out = encoder(Tensor(np.random.default_rng(0).normal(size=(4, 8))))
        assert out.shape == (4, 8)

    def test_attention_gradients_flow(self, rng):
        encoder = AttentionEncoder(8, 2, 1, rng)
        out = encoder(Tensor(np.random.default_rng(0).normal(size=(4, 8))))
        out.sum().backward()
        grads = [p.grad for p in encoder.parameters() if p.grad is not None]
        assert grads and any(np.abs(g).max() > 0 for g in grads)


class TestLosses:
    def test_mse_and_huber_zero_at_target(self):
        pred = Tensor([1.0, 2.0])
        assert mse_loss(pred, np.array([1.0, 2.0])).item() == pytest.approx(0.0)
        assert huber_loss(pred, np.array([1.0, 2.0])).item() == pytest.approx(0.0)

    def test_huber_is_linear_in_tail(self):
        pred = Tensor([10.0])
        assert huber_loss(pred, np.array([0.0]), delta=1.0).item() == pytest.approx(9.5)

    def test_cross_entropy_prefers_correct_class(self):
        logits = Tensor([10.0, 0.0, 0.0])
        assert cross_entropy(logits, 0).item() < cross_entropy(logits, 1).item()

    def test_nll_matches_cross_entropy(self):
        logits = Tensor([[1.0, 2.0, 0.5]])
        ce = cross_entropy(logits, np.array([1]))
        nll = nll_loss(logits.log_softmax(axis=-1), np.array([1]))
        assert ce.item() == pytest.approx(nll.item())

    def test_kl_divergence_zero_for_identical(self):
        log_p = Tensor(np.log(np.array([0.2, 0.3, 0.5])))
        assert kl_divergence(log_p.data, log_p).item() == pytest.approx(0.0, abs=1e-9)

    def test_kl_divergence_positive_for_different(self):
        old = np.log(np.array([0.9, 0.05, 0.05]))
        new = Tensor(np.log(np.array([0.1, 0.45, 0.45])))
        assert kl_divergence(old, new).item() > 0.5

    def test_entropy_maximised_by_uniform(self):
        uniform = Tensor(np.log(np.full(4, 0.25)))
        peaked = Tensor(np.log(np.array([0.97, 0.01, 0.01, 0.01])))
        assert entropy(uniform).item() > entropy(peaked).item()

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_masked_log_softmax_masks_entries(self):
        logits = Tensor([0.0, 0.0, 5.0])
        mask = np.array([True, True, False])
        log_probs = masked_log_softmax(logits, mask)
        probs = np.exp(log_probs.data)
        assert probs[2] < 1e-6
        assert probs[:2].sum() == pytest.approx(1.0, abs=1e-6)

    def test_masked_log_softmax_requires_one_valid(self):
        with pytest.raises(ValueError):
            masked_log_softmax(Tensor([1.0, 2.0]), np.array([False, False]))

    def test_masked_log_softmax_shape_check(self):
        with pytest.raises(ValueError):
            masked_log_softmax(Tensor([1.0, 2.0]), np.array([True]))


class TestOptimizers:
    def _fit_line(self, optimizer_cls, **kwargs) -> float:
        rng = np.random.default_rng(0)
        layer = Linear(1, 1, rng)
        optimizer = optimizer_cls(layer.parameters(), **kwargs)
        xs = np.linspace(-1, 1, 16).reshape(-1, 1)
        ys = 3.0 * xs + 0.5
        loss_value = np.inf
        for _ in range(200):
            prediction = layer(Tensor(xs))
            loss = mse_loss(prediction, ys)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            loss_value = loss.item()
        return loss_value

    def test_sgd_converges_on_linear_regression(self):
        assert self._fit_line(SGD, lr=0.1, momentum=0.9) < 1e-3

    def test_adam_converges_on_linear_regression(self):
        assert self._fit_line(Adam, lr=0.05) < 1e-3

    def test_optimizer_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_optimizer_rejects_bad_lr(self, rng):
        with pytest.raises(ValueError):
            SGD(Linear(1, 1, rng).parameters(), lr=0.0)

    def test_clip_grad_norm_scales_down(self, rng):
        layer = Linear(4, 4, rng)
        out = layer(Tensor(np.full((8, 4), 10.0)))
        (out * out).sum().backward()
        norm_before = clip_grad_norm(layer.parameters(), max_norm=1.0)
        assert norm_before > 1.0
        total = np.sqrt(sum(float((p.grad**2).sum()) for p in layer.parameters()))
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_clip_grad_norm_handles_missing_grads(self, rng):
        layer = Linear(2, 2, rng)
        assert clip_grad_norm(layer.parameters(), 1.0) == 0.0


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path, rng):
        mlp = MLP([3, 5, 2], rng)
        path = save_module(mlp, tmp_path / "model.npz", metadata={"tag": "test"})
        other = MLP([3, 5, 2], np.random.default_rng(7))
        metadata = load_module(other, path)
        assert metadata == {"tag": "test"}
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(mlp(x).data, other(x).data)

    def test_checkpoint_restore(self, rng):
        mlp = MLP([2, 2], rng)
        checkpoint = Checkpoint(mlp, score=1.23, tag="best")
        for param in mlp.parameters():
            param.data = param.data + 10.0
        checkpoint.restore(mlp)
        x = Tensor(np.ones((1, 2)))
        fresh = MLP([2, 2], np.random.default_rng(0))
        np.testing.assert_allclose(mlp(x).data, fresh(x).data)
        assert "best" in repr(checkpoint)
